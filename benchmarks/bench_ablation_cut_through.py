"""Ablation: cut-through vs store-and-forward in the NIC pipeline.

DESIGN.md calls out the NIC's cut-through pipeline (wire transmission
chases the DMA fill; receive DMA chases the wire) as the design choice
behind Figure 8's 94 %-at-one-page anchor.  This ablation rebuilds the
cluster with store-and-forward stages and shows the anchor collapses:
each packet then pays fill + wire + receive serially, so a single page
reaches a far smaller fraction of the (also lower) streaming peak.
"""

from __future__ import annotations

from repro import ClusterConfig, Sender, ShrimpCluster
from repro.bench import Row, measure_message, measure_peak_bandwidth, print_table
from repro.bench.report import fmt_pct

PAGE = 4096


def build(cut_through: bool):
    cluster = ShrimpCluster(
                  config=ClusterConfig(
                      num_nodes=2,
                      mem_size=1 << 21,
                      cut_through=cut_through,
                  ),
              )
    rx = cluster.node(1).create_process("rx")
    buf = cluster.node(1).kernel.syscalls.alloc(rx, 1 << 18)
    channel = cluster.create_channel(0, 1, rx, buf, 1 << 18)
    tx = cluster.node(0).create_process("tx")
    return cluster, Sender(cluster, tx, channel)


def anchors(sender):
    peak = measure_peak_bandwidth(sender)
    at_512 = measure_message(sender, 512).bytes_per_cycle / peak
    at_page = measure_message(sender, PAGE).bytes_per_cycle / peak
    return peak, at_512, at_page


def test_cut_through_ablation(benchmark):
    def run():
        _, ct_sender = build(cut_through=True)
        _, sf_sender = build(cut_through=False)
        return anchors(ct_sender), anchors(sf_sender)

    (ct_peak, ct_512, ct_page), (sf_peak, sf_512, sf_page) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [
        Row("4 KB anchor, cut-through", "~94% (Figure 8)", fmt_pct(ct_page),
            0.88 <= ct_page <= 0.97),
        Row("4 KB anchor, store-and-forward", "collapses", fmt_pct(sf_page),
            sf_page < ct_page - 0.10),
        Row("512 B anchor, cut-through", "> 50%", fmt_pct(ct_512),
            ct_512 > 0.50),
        Row("512 B anchor, store-and-forward", "degrades", fmt_pct(sf_512),
            sf_512 < ct_512),
        Row("streaming peak ratio (SF / CT)", "< 1 (extra stage serialised)",
            f"{sf_peak / ct_peak:.2f}", sf_peak <= ct_peak + 1e-9),
    ]
    print_table(
        "ABLATION: cut-through vs store-and-forward NIC pipeline",
        rows,
        notes=[
            "the real SHRIMP board streamed packets through its FIFOs; "
            "without that, a single page pays fill + wire + rx serially "
            "and Figure 8's shape cannot be reproduced",
        ],
    )
    assert all(r.ok for r in rows)
