"""Ablation: the two I3 content-consistency strategies (section 6).

The paper's primary strategy write-protects proxy pages of clean memory
("this STORE will cause an access fault unless vmem_page is already
dirty"); the alternative "is to maintain dirty bits on all of the proxy
pages, and to change the kernel so that it considers vmem_page dirty if
either vmem_page or PROXY(vmem_page) is dirty.  This approach is
conceptually simpler, but requires more changes to the paging code."

Both must produce identical data and identical backing-store safety; the
difference is *where the cost lands*: the write-protect strategy pays an
extra page fault on the first proxy write after every clean, the
proxy-dirty strategy pays none.
"""

from __future__ import annotations

from repro import Machine, MachineConfig
from repro.bench import Row, print_table
from repro.bench.workloads import make_payload
from repro.devices import SinkDevice
from repro.kernel.vm_manager import I3_PROXY_DIRTY, I3_WRITE_PROTECT
from repro.userlib import DeviceRef, MemoryRef, UdmaUser

PAGE = 4096
ROUNDS = 12


def run_strategy(strategy: str):
    """Device-to-memory transfers interleaved with page cleaning."""
    machine = Machine(
                  config=MachineConfig(mem_size=1 << 20, i3_strategy=strategy),
              )
    sink = SinkDevice("sink", size=1 << 16)
    machine.attach_device(sink)
    p = machine.create_process("app")
    buf = machine.kernel.syscalls.alloc(p, PAGE)
    grant = machine.kernel.syscalls.grant_device_proxy(p, "sink")
    udma = UdmaUser(machine, p)
    machine.cpu.store(buf, 0)  # resident

    for round_no in range(ROUNDS):
        payload = make_payload(256, seed=round_no + 1)
        sink.poke(0, payload)
        # Device -> memory: the STORE names PROXY(buf) as destination,
        # which is exactly the I3-guarded write.
        udma.transfer(DeviceRef(grant), MemoryRef(buf), 256)
        machine.run_until_idle()
        assert machine.cpu.read_bytes(buf, 256) == payload
        # The pager cleans the page between transfers.
        machine.kernel.vm.clean_page(p, buf // PAGE)

    vm = machine.kernel.vm
    return {
        "faults": vm.faults_handled,
        "proxy_faults": vm.proxy_faults,
        "cleans": vm.cleans,
        "swap_writes": machine.kernel.backing.writes,
        "data": machine.cpu.read_bytes(buf, 256),
    }


def test_i3_strategy_ablation(benchmark):
    wp, pd = benchmark.pedantic(
        lambda: (run_strategy(I3_WRITE_PROTECT), run_strategy(I3_PROXY_DIRTY)),
        rounds=1,
        iterations=1,
    )
    rows = [
        Row("data correctness, both strategies", "identical",
            "identical" if wp["data"] == pd["data"] else "DIFFER",
            wp["data"] == pd["data"]),
        Row("every clean wrote backing store", f"{ROUNDS} writes",
            f"wp={wp['swap_writes']} pd={pd['swap_writes']}",
            wp["swap_writes"] == pd["swap_writes"] == ROUNDS),
        Row("proxy write faults, write-protect", "1 per clean cycle",
            str(wp["proxy_faults"]), wp["proxy_faults"] >= ROUNDS),
        Row("proxy write faults, proxy-dirty", "far fewer",
            str(pd["proxy_faults"]), pd["proxy_faults"] < wp["proxy_faults"] / 2),
        Row("total faults favour proxy-dirty", "yes",
            f"wp={wp['faults']} pd={pd['faults']}",
            pd["faults"] < wp["faults"]),
    ]
    print_table(
        "ABLATION: I3 write-protect vs proxy-dirty strategies (section 6)",
        rows,
        notes=[
            "the alternative strategy trades page faults for paging-code "
            "complexity, exactly the trade the paper describes",
        ],
    )
    assert all(r.ok for r in rows)
