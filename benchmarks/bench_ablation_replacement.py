"""Ablation: page-replacement policies under the UDMA paging machinery.

The VM substrate supports FIFO, exact LRU and the clock algorithm
(DESIGN.md lists the pluggable policy as a design choice).  The paper's
only requirement is I4-safety -- any policy must skip hardware-active
pages -- but the policies differ in fault behaviour.  A looping working
set larger than memory is FIFO/LRU's classic pathological case; clock's
second-chance bit makes it behave LRU-like on mixed access patterns.
"""

from __future__ import annotations

from repro import Machine, MachineConfig
from repro.bench import Row, print_table

PAGE = 4096


HOT, COLD, FRAMES = 4, 16, 16


def run_policy(policy: str):
    """A hot set re-touched every round + a cold looping sweep.

    The reserved (bounce) frames shrink usable memory to ``FRAMES``
    frames, below the HOT+COLD working set, so the sweep forces capacity
    evictions on every round.
    """
    machine = Machine(
                  config=MachineConfig(
                      mem_size=32 * PAGE,
                      replacement_policy=policy,
                      bounce_frames=32 - FRAMES,
                  ),
              )
    p = machine.create_process("app")
    hot = machine.kernel.syscalls.alloc(p, HOT * PAGE)
    cold = machine.kernel.syscalls.alloc(p, COLD * PAGE)

    faults_at_start = machine.kernel.vm.faults_handled
    for round_no in range(6):
        for i in range(HOT):  # the hot set, touched often
            machine.cpu.store(hot + i * PAGE, round_no)
        for i in range(COLD):  # the cold sweep
            machine.cpu.store(cold + i * PAGE, round_no)
            for j in range(HOT):  # keep the hot set warm mid-sweep
                machine.cpu.load(hot + j * PAGE)
    return machine.kernel.vm.faults_handled - faults_at_start


def test_replacement_policy_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: {policy: run_policy(policy) for policy in ("fifo", "lru", "clock")},
        rounds=1,
        iterations=1,
    )
    floor = HOT + COLD  # compulsory faults: every page faults once
    rows = [
        Row("compulsory fault floor", str(floor), str(min(results.values())),
            min(results.values()) >= floor),
        Row("capacity faults occur (working set > memory)", "> floor",
            str(max(results.values())), max(results.values()) > floor),
        Row("FIFO faults", "highest (no recency)", str(results["fifo"]),
            results["fifo"] >= results["lru"]),
        Row("LRU faults", "protects the hot set", str(results["lru"]),
            results["lru"] <= results["fifo"]),
        Row("clock faults", "close to LRU", str(results["clock"]),
            results["clock"] <= results["fifo"]),
    ]
    print_table(
        "ABLATION: replacement policies under paging pressure",
        rows,
        notes=[
            "all three are I4-safe (see tests/kernel/test_invariants.py); "
            "this ablation only compares fault behaviour",
        ],
    )
    assert all(r.ok for r in rows)
