"""Ablation: automatic update vs deliberate update (section 9).

The final SHRIMP design kept both transfer strategies.  Automatic update
snoops ordinary stores off the memory bus and propagates them word by
word to a fixed remote page -- zero initiation cost, but one packet per
store and a fixed source->destination mapping.  Deliberate update (the
UDMA path this paper is about) pays one initiation per page but moves
data in bursts and chooses its destination per transfer.

Expected shape: automatic update wins for *sparse single-word updates*
(shared-variable style), deliberate update wins decisively for *blocks*.
"""

from __future__ import annotations

from repro import ClusterConfig, Sender, ShrimpCluster
from repro.bench import Row, print_table
from repro.bench.workloads import make_payload

PAGE = 4096


def build():
    cluster = ShrimpCluster(
                  config=ClusterConfig(num_nodes=2, mem_size=1 << 21),
              )
    src = cluster.node(0).create_process("writer")
    dst = cluster.node(1).create_process("mirror")

    auto_src = cluster.node(0).kernel.syscalls.alloc(src, PAGE)
    auto_dst = cluster.node(1).kernel.syscalls.alloc(dst, PAGE)
    cluster.bind_automatic_update(0, src, auto_src, 1, dst, auto_dst, PAGE)

    delib_dst = cluster.node(1).kernel.syscalls.alloc(dst, PAGE)
    channel = cluster.create_channel(0, 1, dst, delib_dst, PAGE)
    sender = Sender(cluster, src, channel)
    return cluster, src, auto_src, sender


def automatic_cycles(cluster, src, auto_src, words):
    """Scattered single-word updates through the snooper."""
    node = cluster.node(0)
    node.kernel.scheduler.switch_to(src)
    start = cluster.now
    for i in range(words):
        node.cpu.store(auto_src + (i * 64) % PAGE, 0xA000 + i)
    cluster.run_until_idle()
    return cluster.now - start


def deliberate_cycles(cluster, sender, nbytes):
    """One deliberate-update message of ``nbytes``."""
    sender._ensure_current()
    sender.machine.cpu.write_bytes(sender.buffer, make_payload(nbytes))
    start = cluster.now
    sender.send_buffer(nbytes)
    cluster.run_until_idle()
    return cluster.now - start


def test_automatic_vs_deliberate(benchmark):
    def run():
        cluster, src, auto_src, sender = build()
        one_word_auto = automatic_cycles(cluster, src, auto_src, 1)
        one_word_delib = deliberate_cycles(cluster, sender, 4)
        page_auto = automatic_cycles(cluster, src, auto_src, PAGE // 64)
        page_auto_per_byte = page_auto / (PAGE // 64 * 4)
        page_delib = deliberate_cycles(cluster, sender, PAGE)
        return (one_word_auto, one_word_delib,
                page_auto_per_byte, page_delib / PAGE)

    one_auto, one_delib, auto_per_byte, delib_per_byte = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [
        Row("single-word update, automatic", "no initiation cost",
            f"{one_auto} cycles", one_auto < one_delib),
        Row("single-word update, deliberate", "pays the initiation",
            f"{one_delib} cycles", one_delib > one_auto),
        Row("bulk cycles/byte, automatic", "poor (packet per store)",
            f"{auto_per_byte:.1f}", auto_per_byte > 2 * delib_per_byte),
        Row("bulk cycles/byte, deliberate", "burst efficiency",
            f"{delib_per_byte:.1f}", delib_per_byte < auto_per_byte),
        Row("deliberate bulk advantage", "large",
            f"{auto_per_byte / delib_per_byte:.1f}x per byte",
            auto_per_byte / delib_per_byte > 2),
    ]
    print_table(
        "ABLATION: automatic update vs deliberate update (section 9)",
        rows,
        notes=[
            "automatic update 'relies upon fixed mappings between source "
            "and destination pages'; deliberate update is the protected, "
            "user-initiated UDMA path this paper contributes",
        ],
    )
    assert all(r.ok for r in rows)
