"""Supplementary: collective-operation scaling over the mesh channels.

No paper figure covers collectives; these are structural checks of the
library layer built on deliberate update:

* a broadcast costs the root N-1 sends, so its time grows roughly
  linearly in group size on one NIC (sends serialise on the root's wire);
* a barrier's two token laps cost ~2N small messages;
* per-operation kernel involvement is zero after setup.
"""

from __future__ import annotations

from repro import ClusterConfig, ShrimpCluster
from repro.bench import Row, print_table
from repro.bench.workloads import make_payload
from repro.userlib import CollectiveGroup

PAGE = 4096


def build_group(nodes):
    cluster = ShrimpCluster(
                  config=ClusterConfig(num_nodes=nodes, mem_size=1 << 21),
              )
    procs = [cluster.node(i).create_process(f"r{i}") for i in range(nodes)]
    return cluster, CollectiveGroup(cluster, procs, slot_bytes=PAGE)


def timed_broadcast(cluster, group, nbytes):
    data = make_payload(nbytes)
    start = cluster.now
    group.broadcast(0, data)
    return cluster.now - start


def timed_barrier(cluster, group):
    start = cluster.now
    group.barrier()
    return cluster.now - start


def test_collective_scaling(benchmark):
    def run():
        out = {}
        for nodes in (2, 3, 4):
            cluster, group = build_group(nodes)
            timed_broadcast(cluster, group, 1024)  # warm mappings
            out[nodes] = (
                cluster,
                timed_broadcast(cluster, group, 1024),
                timed_barrier(cluster, group),
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    bcast = {n: v[1] for n, v in results.items()}
    barrier = {n: v[2] for n, v in results.items()}
    cluster4 = results[4][0]
    kernel_dma = sum(
        cluster4.node(i).kernel.syscalls.dma_calls for i in range(4)
    )

    per_peer_2_to_4 = (bcast[4] - bcast[2]) / 2  # added cost per extra peer
    rows = [
        Row("broadcast grows with group size", "monotone",
            f"{bcast[2]} < {bcast[3]} < {bcast[4]}",
            bcast[2] < bcast[3] < bcast[4]),
        Row("added cost per extra peer", "~one send (root serialises)",
            f"{per_peer_2_to_4:.0f} cycles",
            0 < per_peer_2_to_4 < bcast[2]),
        Row("barrier grows with group size", "monotone",
            f"{barrier[2]} < {barrier[4]}", barrier[2] < barrier[4]),
        Row("kernel DMA calls during collectives", "0",
            str(kernel_dma), kernel_dma == 0),
    ]
    print_table(
        "COLLECTIVES (supplementary): scaling of the library layer",
        rows,
        notes=["no paper target; structural checks of the mesh-channel "
               "collectives built on deliberate update"],
    )
    assert all(r.ok for r in rows)
