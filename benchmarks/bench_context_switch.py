"""CTX -- I1 atomicity: the context-switch Inval and its consequences.

Paper targets:

* "The context-switch code does this with a single STORE instruction" --
  the I1 hook adds exactly one uncached store per UDMA device;
* "the UDMA device is stateless with respect to a context switch.  Once
  started, a UDMA transfer continues regardless of whether the process
  that started it is de-scheduled";
* the interrupted process "can deduce what happened and re-try its
  operation" -- the retry costs one extra initiation, nothing more;
* "our approach is simpler [than restartable atomic sequences] ... this
  does not hurt our performance since we require the application to check
  for other errors in any case" (section 9).
"""

from __future__ import annotations

from repro import Machine, MachineConfig
from repro.bench import Row, print_table
from repro.bench.workloads import make_payload
from repro.userlib.udma import DeviceRef, MemoryRef

from benchmarks.conftest import SinkRig

PAGE = 4096


def switch_cost(machine, a, b):
    """Cycles of one context switch on this machine."""
    current = machine.kernel.current
    target = b if current is a else a
    before = machine.clock.now
    machine.kernel.scheduler.switch_to(target)
    return machine.clock.now - before


def test_context_switch_inval_cost(benchmark):
    def run():
        # A machine with a UDMA device vs a scheduler with none attached.
        rig = SinkRig()
        machine = rig.machine
        a = rig.process
        b = machine.create_process("b")
        with_udma = switch_cost(machine, a, b)
        # Rebuild the scheduler cost without the hook by subtracting the
        # documented single store: measure a controller-free scheduler.
        bare = Machine(config=MachineConfig(mem_size=1 << 20))
        bare.kernel.scheduler.udma_controllers.clear()
        pa = bare.create_process("a")
        pb = bare.create_process("b")
        without_udma = switch_cost(bare, pa, pb)
        return rig, with_udma, without_udma

    rig, with_udma, without_udma = benchmark.pedantic(run, rounds=1, iterations=1)
    costs = rig.costs
    delta = with_udma - without_udma

    rows = [
        Row("I1 hook cost per switch", "a single STORE",
            f"{delta} cycles", delta == costs.io_ref_cycles),
        Row("hook as % of a context switch", "small",
            f"{delta / with_udma * 100:.0f}%", delta / with_udma < 0.25),
    ]
    print_table("CTX: context-switch Inval cost (I1)", rows)
    assert all(r.ok for r in rows)


def test_interrupted_initiation_retry_cost(benchmark):
    def run():
        rig = SinkRig()
        machine = rig.machine
        other = machine.create_process("other")
        machine.cpu.write_bytes(rig.buffer, make_payload(256))

        # Uninterrupted initiation cost.
        before = machine.cpu.charged_cycles
        rig.udma.transfer(MemoryRef(rig.buffer), DeviceRef(rig.grant), 256)
        clean_cost = machine.cpu.charged_cycles - before
        machine.run_until_idle()

        # Interrupted: STORE, preempt (Inval), resume, LOAD fails, retry.
        before = machine.cpu.charged_cycles
        machine.cpu.store(rig.grant, 256)                 # first half
        machine.kernel.scheduler.switch_to(other)          # preempted
        machine.kernel.scheduler.switch_to(rig.process)    # resumed
        status = rig.udma.poll(machine.layout.proxy(rig.buffer))  # the LOAD
        assert not status.started and status.should_retry
        stats = rig.udma.transfer(MemoryRef(rig.buffer), DeviceRef(rig.grant), 256)
        interrupted_cost = machine.cpu.charged_cycles - before
        machine.run_until_idle()
        return rig, clean_cost, interrupted_cost, stats

    rig, clean, interrupted, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    penalty = interrupted - clean
    # The wasted work: one STORE + one failed LOAD (plus loop overhead).
    two_refs = 2 * rig.costs.io_ref_cycles

    rows = [
        Row("retry penalty after preemption", "~ one wasted pair",
            f"{penalty} cycles", penalty <= 3 * two_refs),
        Row("transfer still succeeded", "yes (user retries)",
            "yes" if stats.pieces == 1 else "no", stats.pieces == 1),
        Row("data intact", "yes", "checked",
            rig.sink.peek(0, 256) == make_payload(256)),
    ]
    print_table("CTX: cost of an initiation interrupted by a switch", rows)
    assert all(r.ok for r in rows)


def test_transfer_statelessness_across_switches(benchmark):
    def run():
        rig = SinkRig()
        machine = rig.machine
        other = machine.create_process("other")
        data = make_payload(PAGE)
        machine.cpu.write_bytes(rig.buffer, data)
        machine.cpu.store(rig.grant, PAGE)
        machine.cpu.fence()
        machine.cpu.load(machine.layout.proxy(rig.buffer))  # started
        # Deschedule the initiator immediately; switch back and forth.
        for _ in range(4):
            machine.kernel.scheduler.yield_next()
        machine.run_until_idle()
        return rig, data

    rig, data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        Row("in-flight transfer survives de-scheduling", "yes", "checked",
            rig.sink.peek(0, PAGE) == data),
    ]
    print_table("CTX: UDMA is stateless across context switches", rows)
    assert all(r.ok for r in rows)
