"""Validation: the analytic DMA engine equals the word-stepping engine.

The big reproduction benches run the engine in analytic mode (one
completion event) for speed.  This bench validates that shortcut: the
word-stepping engine -- which moves real data burst by burst -- produces
the *same end-to-end cycle counts* for the same workload, and its extra
fidelity only shows up in mid-transfer observability (progress, partial
data on abort), which the unit tests cover.
"""

from __future__ import annotations

from repro.bench import Row, print_table
from repro.bench.workloads import make_payload
from repro.devices import SinkDevice
from repro.userlib import DeviceRef, MemoryRef, UdmaUser
from repro.config import MachineConfig

from benchmarks.conftest import SinkRig


def run_workload(burst_bytes: int):
    from repro import Machine

    machine = Machine(
                  config=MachineConfig(
                      mem_size=1 << 20,
                      dma_burst_bytes=burst_bytes,
                  ),
              )
    sink = SinkDevice("sink", size=1 << 16)
    machine.attach_device(sink)
    p = machine.create_process("app")
    buf = machine.kernel.syscalls.alloc(p, 1 << 14)
    grant = machine.kernel.syscalls.grant_device_proxy(p, "sink")
    udma = UdmaUser(machine, p)
    for i, size in enumerate((64, 512, 4096, 12000)):
        data = make_payload(size, seed=i + 1)
        machine.cpu.write_bytes(buf, data)
        udma.transfer(MemoryRef(buf), DeviceRef(grant + (i << 14) % (1 << 16)), size)
        machine.run_until_idle()
    return machine.clock.now, machine.cpu.charged_cycles, sink.peek(0, 64)


def test_fidelity_mode_equivalence(benchmark):
    (a_end, a_cpu, a_data), (s_end, s_cpu, s_data) = benchmark.pedantic(
        lambda: (run_workload(0), run_workload(64)),
        rounds=1,
        iterations=1,
    )
    rows = [
        Row("end-to-end cycles (analytic)", "equal", str(a_end), None),
        Row("end-to-end cycles (stepping, 64 B bursts)", "equal", str(s_end),
            a_end == s_end),
        Row("CPU busy-wait cycles", "stepping >= analytic",
            f"{a_cpu} vs {s_cpu}", s_cpu >= a_cpu),
        Row("data movement", "identical", "checked", a_data == s_data),
    ]
    print_table(
        "FIDELITY: analytic vs word-stepping DMA engine",
        rows,
        notes=[
            "the analytic mode used by the reproduction benches is a pure "
            "performance optimisation; end-to-end timing is identical",
            "the spinning CPU polls once per hardware event, so the "
            "stepping engine's burst events attract more (harmless) "
            "status loads while waiting -- total time is unchanged",
        ],
    )
    assert all(r.ok in (True, None) for r in rows)
