"""FIG8 -- Figure 8: deliberate-update bandwidth vs message size.

Paper targets (all as % of the maximum measured bandwidth):

* the curve rises rapidly ("the rapid rise in this curve highlights the
  low cost of initiating UDMA transfers");
* "the bandwidth exceeds 50% of the maximum measured at a message size of
  only 512 bytes";
* "the largest single UDMA transfer is a page of 4 Kbytes, which achieves
  94% of the maximum bandwidth";
* "the slight dip in the curve after that point reflects the cost of
  initiating and starting a second UDMA transfer";
* "the maximum is sustained for messages exceeding 8 Kbytes in size".
"""

from __future__ import annotations

from repro.bench import (
    Row,
    bandwidth_curve,
    fig8_sizes,
    measure_peak_bandwidth,
    print_table,
)
from repro.bench.report import fmt_pct


def run_fig8(rig):
    """Measure the full Figure 8 series; returns (peak, curve)."""
    peak = measure_peak_bandwidth(rig.sender)
    curve = bandwidth_curve(rig.sender, fig8_sizes())
    return peak, curve


def test_fig8_bandwidth_curve(cluster_rig, benchmark):
    peak, curve = benchmark.pedantic(
        lambda: run_fig8(cluster_rig), rounds=1, iterations=1
    )
    pct = {size: bw / peak for size, bw in curve}
    costs = cluster_rig.costs

    print()
    print("Figure 8 series: % of peak vs message size "
          f"(peak = {costs.bytes_per_second(peak) / 1e6:.1f} MB/s simulated)")
    for size, bw in curve:
        bar = "#" * int(bw / peak * 50)
        print(f"  {size:6d} B  {bw / peak * 100:5.1f}%  {bar}")

    rows = [
        Row("% of peak at 512 B", "> 50%", fmt_pct(pct[512]), pct[512] > 0.50),
        Row("% of peak at 4 KB (one page)", "~94%", fmt_pct(pct[4096]),
            0.88 <= pct[4096] <= 0.97),
        Row("dip just past 4 KB", "slight dip", fmt_pct(pct[4096 + 64]),
            pct[4096 + 64] < pct[4096]),
        Row("recovered by 6 KB", "rising again", fmt_pct(pct[6144]),
            pct[6144] > pct[4096 + 64]),
        Row("% of peak at 8 KB", "~max sustained", fmt_pct(pct[8192]),
            pct[8192] > 0.95),
        Row("% of peak at 16 KB", "~max sustained", fmt_pct(pct[16384]),
            pct[16384] > 0.97),
        Row("monotone rise below 4 KB", "yes", "checked",
            all(pct[a] < pct[b] for a, b in
                zip(fig8_sizes()[:10], fig8_sizes()[1:11]))),
    ]
    print_table(
        "FIG8: deliberate-update UDMA bandwidth (Figure 8)",
        rows,
        notes=[
            "absolute MB/s is a simulator artefact; the paper's claims are "
            "about the normalised curve shape",
        ],
    )
    assert all(r.ok for r in rows)
