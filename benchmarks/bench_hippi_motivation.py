"""HIPPI -- the section-1 motivation numbers on a HIPPI/Paragon-like node.

Paper targets:

* "the overhead of sending a piece of data over a 100 MByte/sec HIPPI
  channel on the Paragon multicomputer is more than 350 microseconds";
* "with a data block size of 1 Kbyte, the transfer rate achieved is only
  2.7 MByte/sec, which is less than 2% of the raw hardware bandwidth";
* "achieving a transfer rate of 80 MBytes/sec requires the data block
  size to be larger than 64 KBytes".
"""

from __future__ import annotations

from repro.bench import Row, hippi_block_sizes, print_table
from repro.bench.report import fmt_mbs, fmt_us
from repro.bench.workloads import make_payload
from repro.params import hippi_paragon

from benchmarks.conftest import SinkRig

PAGE = 4096


def build_hippi_rig():
    return SinkRig(
        costs=hippi_paragon(),
        mem_size=1 << 22,
        sink_bytes=1 << 20,
        buffer_bytes=1 << 19,
    )


def measure_block_rate(rig, nbytes):
    """Effective MB/s for kernel-DMA sends of ``nbytes`` blocks."""
    machine = rig.machine
    machine.cpu.write_bytes(rig.buffer, make_payload(min(nbytes, 1 << 16)))
    start = machine.clock.now
    machine.kernel.syscalls.dma(
        rig.process, "sink", 0, rig.buffer, nbytes, to_device=True
    )
    cycles = machine.clock.now - start
    return nbytes / cycles * rig.costs.cpu_hz  # bytes/second


def run_sweep(rig):
    return [(size, measure_block_rate(rig, size)) for size in hippi_block_sizes()]


def test_hippi_motivation(benchmark):
    rig = build_hippi_rig()
    curve = benchmark.pedantic(lambda: run_sweep(rig), rounds=1, iterations=1)
    costs = rig.costs
    raw = costs.bytes_per_second(costs.dma_bytes_per_cycle)
    rate = dict(curve)

    # Software overhead of one small send (subtract the wire time).
    one_k_cycles = 1024 / (rate[1024] / costs.cpu_hz)
    overhead_us = costs.cycles_to_us(one_k_cycles - 1024 / costs.dma_bytes_per_cycle)

    print()
    print(f"Block-size sweep on a {raw / 1e6:.0f} MB/s channel:")
    for size, bps in curve:
        print(f"  {size:7d} B  {bps / 1e6:7.2f} MB/s  ({bps / raw * 100:5.1f}% of raw)")

    crossover = next((s for s, bps in curve if bps >= 80e6), None)
    rows = [
        Row("raw channel bandwidth", "100 MB/s", fmt_mbs(raw),
            95e6 <= raw <= 105e6),
        Row("software overhead per send", "> 350 us", fmt_us(overhead_us),
            overhead_us > 350),
        Row("rate at 1 KB blocks", "~2.7 MB/s", fmt_mbs(rate[1024]),
            2.2e6 <= rate[1024] <= 3.3e6),
        Row("1 KB rate as % of raw", "< 2% (paper's own 2.7/100 = 2.7%)",
            f"{rate[1024] / raw * 100:.2f}%", rate[1024] / raw < 0.03),
        Row("80 MB/s at 64 KB blocks?", "no (needs larger)",
            fmt_mbs(rate[65536]), rate[65536] < 80e6),
        Row("block size reaching 80 MB/s", "> 64 KB",
            f"{crossover} B" if crossover else "not reached",
            crossover is None or crossover > 65536),
        Row("80 MB/s eventually reachable", "yes", "yes" if crossover else "no",
            crossover is not None),
    ]
    print_table(
        "HIPPI: traditional-DMA motivation numbers (section 1)",
        rows,
        notes=[
            "the kernel path on this preset costs ~350 us of fixed software "
            "overhead, dominating fine-grained transfers exactly as the "
            "paper argues",
            "the paper's '<2%' and '2.7 MB/s of 100 MB/s' are mutually "
            "inconsistent by rounding; we reproduce the 2.7 MB/s figure",
        ],
    )
    assert all(r.ok for r in rows)
