"""Host-throughput benchmarks: how fast the *simulator itself* runs.

Every other bench in this directory measures **simulated** time (cycles on
the modelled 60 MHz node).  This module measures **host** time: simulated
bytes moved per wall-clock second of the Python process, and clock events
fired per second.  It is the instrument behind ``run_bench.py`` and the
committed ``BENCH_core.json`` trajectory file that future PRs regress
against (see ``docs/PERFORMANCE.md``).

Four scenarios cover the hot paths the zero-copy data plane and the
translation fast path optimise:

* ``udma_send`` -- the single-node UDMA send path (initiate, DMA fill,
  completion polling) into a sink device;
* ``cluster_pingpong`` -- the 2-node deliberate-update round trip: UDMA
  fill, packetise, wire, route, receive-DMA into remote physical memory;
* ``stepping_dma`` -- the word-stepping engine, where per-burst events
  dominate and event-queue overhead is the bottleneck;
* ``translate_storm`` -- a multi-page working set hammered with word
  loads and page-run buffer I/O, with periodic context switches to force
  translation-cache refills (the CPU's software-TLB worst case).

CPU-bound scenarios also report the translation fast path's hit rate
(``xlat%``), so a change that silently degrades the cache shows up even
when raw MB/s noise hides it.

The scenarios hold *simulated* behaviour fixed (same cycle counts before
and after any host-side optimisation) so MB/s numbers are comparable
across commits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro import (
    ClusterConfig,
    Machine,
    MachineConfig,
    ObsConfig,
    ShrimpCluster,
)
from repro.bench.workloads import make_payload
from repro.devices import SinkDevice
from repro.dma.engine import DmaEngine, MemoryEndpoint
from repro.snapshot import fork as snapshot_fork
from repro.userlib import DeviceRef, MemoryRef, Sender, UdmaUser


@dataclass
class HostResult:
    """One scenario's host-side throughput measurement."""

    scenario: str
    sim_bytes: int
    sim_cycles: int
    messages: int
    host_seconds: float
    events_fired: int
    xlat_hits: int = 0
    xlat_misses: int = 0

    @property
    def mb_per_s(self) -> float:
        """Simulated payload bytes moved per host second, in MB/s."""
        return self.sim_bytes / self.host_seconds / 1e6 if self.host_seconds else 0.0

    @property
    def events_per_s(self) -> float:
        """Clock events fired per host second."""
        return self.events_fired / self.host_seconds if self.host_seconds else 0.0

    @property
    def messages_per_s(self) -> float:
        return self.messages / self.host_seconds if self.host_seconds else 0.0

    @property
    def xlat_hit_rate(self) -> float:
        """Translation fast-path hit rate over the timed window (0..1)."""
        total = self.xlat_hits + self.xlat_misses
        return self.xlat_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "sim_bytes": self.sim_bytes,
            "sim_cycles": self.sim_cycles,
            "messages": self.messages,
            "host_seconds": round(self.host_seconds, 6),
            "events_fired": self.events_fired,
            "mb_per_s": round(self.mb_per_s, 3),
            "events_per_s": round(self.events_per_s, 1),
            "messages_per_s": round(self.messages_per_s, 1),
            "xlat_hits": self.xlat_hits,
            "xlat_misses": self.xlat_misses,
            "xlat_hit_rate": round(self.xlat_hit_rate, 4),
        }


def _events_fired(clock) -> int:
    """Events fired so far (0 on clocks without the counter)."""
    return getattr(clock, "events_fired", 0)


def _xlat_counters(*cpus) -> "tuple[int, int]":
    """Summed (hits, misses) of the CPUs' translation fast path.

    Zero on trees whose CPU predates the cache, so the harness stays
    runnable for before/after comparison.
    """
    hits = sum(getattr(cpu, "xlat_hits", 0) for cpu in cpus)
    misses = sum(getattr(cpu, "xlat_misses", 0) for cpu in cpus)
    return hits, misses


# ------------------------------------------------- warm-start templates
@dataclass
class _WarmContext:
    """A fully-constructed scenario world, ready for its timed loop.

    ``root`` is the object whose ``_reattach_after_restore`` hook rebinds
    sampled metrics after a fork; ``handles`` carries the scenario's
    working references (processes, buffers, senders, engines) so a fork
    of the context keeps them pointing into the forked world, never back
    at the template.
    """

    root: object
    handles: Dict[str, object] = field(default_factory=dict)

    def _reattach_after_restore(self) -> None:
        hook = getattr(self.root, "_reattach_after_restore", None)
        if hook is not None:
            hook()


#: (scenario, setup-kwargs) -> template context; populated on first use
#: under --warm-start, then only ever forked -- never mutated.
_TEMPLATE_CACHE: Dict[tuple, _WarmContext] = {}


def _warm(
    scenario: str,
    key: tuple,
    build: Callable[[], _WarmContext],
    warm_start: bool,
) -> _WarmContext:
    """Build a scenario world, via the fork template cache when asked.

    With ``warm_start`` the first call per (scenario, key) pays full
    construction; every later call gets ``repro.snapshot.fork`` of the
    cached template instead of rebuilding machines from scratch.
    Restore-equivalence (``tests/snapshot/``) guarantees the fork's timed
    loop is simulated bit-identically to a freshly built world's, so
    warm-started MB/s numbers gate against the same baselines.
    """
    if not warm_start:
        return build()
    cache_key = (scenario,) + key
    template = _TEMPLATE_CACHE.get(cache_key)
    if template is None:
        template = build()
        _TEMPLATE_CACHE[cache_key] = template
    return snapshot_fork(template)


# ------------------------------------------------------------- scenarios
def _udma_send_setup(msg_bytes: int, obs: Optional[ObsConfig]) -> _WarmContext:
    machine = Machine(config=MachineConfig(mem_size=1 << 21, obs=obs))
    sink = SinkDevice("sink", size=1 << 16)
    machine.attach_device(sink)
    process = machine.create_process("bench")
    buf = machine.kernel.syscalls.alloc(process, msg_bytes)
    grant = machine.kernel.syscalls.grant_device_proxy(process, "sink")
    udma = UdmaUser(machine, process)
    machine.cpu.write_bytes(buf, make_payload(msg_bytes))
    machine.run_until_idle()
    return _WarmContext(
        root=machine, handles={"udma": udma, "buf": buf, "grant": grant}
    )


def bench_udma_send(
    messages: int = 400,
    msg_bytes: int = 4096,
    obs: Optional[ObsConfig] = None,
    warm_start: bool = False,
) -> HostResult:
    """Single-node UDMA sends of ``msg_bytes`` into a sink device.

    The send buffer is filled once outside the timed window; the loop is
    pure UDMA initiation + DMA + completion polling -- the critical path
    of the paper's section 8.  ``obs`` selects the observability plane
    configuration, so the same scenario doubles as the obs-overhead A/B
    instrument (see :func:`run_obs_overhead`).  ``warm_start`` forks the
    constructed machine from a template instead of rebuilding it.
    """
    ctx = _warm(
        "udma_send",
        (msg_bytes, repr(obs)),
        lambda: _udma_send_setup(msg_bytes, obs),
        warm_start,
    )
    machine = ctx.root
    udma = ctx.handles["udma"]
    buf = ctx.handles["buf"]
    grant = ctx.handles["grant"]

    start_cycles = machine.now
    start_events = _events_fired(machine.clock)
    hits0, misses0 = _xlat_counters(machine.cpu)
    t0 = time.perf_counter()
    for _ in range(messages):
        udma.transfer(MemoryRef(buf), DeviceRef(grant), msg_bytes)
        machine.run_until_idle()
    elapsed = time.perf_counter() - t0
    hits1, misses1 = _xlat_counters(machine.cpu)
    return HostResult(
        scenario="udma_send",
        sim_bytes=messages * msg_bytes,
        sim_cycles=machine.now - start_cycles,
        messages=messages,
        host_seconds=elapsed,
        events_fired=_events_fired(machine.clock) - start_events,
        xlat_hits=hits1 - hits0,
        xlat_misses=misses1 - misses0,
    )


def _cluster_pingpong_setup(
    msg_bytes: int, obs: Optional[ObsConfig]
) -> _WarmContext:
    cluster = ShrimpCluster(
                  config=ClusterConfig(num_nodes=2, mem_size=1 << 21, obs=obs),
              )
    procs = [cluster.node(i).create_process(f"p{i}") for i in range(2)]
    bufs = [
        cluster.node(i).kernel.syscalls.alloc(procs[i], msg_bytes)
        for i in range(2)
    ]
    ch01 = cluster.create_channel(0, 1, procs[1], bufs[1], msg_bytes)
    ch10 = cluster.create_channel(1, 0, procs[0], bufs[0], msg_bytes)
    senders = [
        Sender(cluster, procs[0], ch01),
        Sender(cluster, procs[1], ch10),
    ]
    for sender in senders:
        sender._ensure_current()
        sender.machine.cpu.write_bytes(sender.buffer, make_payload(msg_bytes))
    cluster.run_until_idle()
    return _WarmContext(root=cluster, handles={"senders": senders})


def bench_cluster_pingpong(
    rounds: int = 200,
    msg_bytes: int = 4096,
    obs: Optional[ObsConfig] = None,
    warm_start: bool = False,
) -> HostResult:
    """2-node deliberate-update ping-pong over the routing backplane.

    Each round is one message node0 -> node1 and one message back, each
    drained to remote-memory delivery (the full Figure 6 pipeline).  The
    payload buffers are filled once outside the timed window.
    """
    ctx = _warm(
        "cluster_pingpong",
        (msg_bytes, repr(obs)),
        lambda: _cluster_pingpong_setup(msg_bytes, obs),
        warm_start,
    )
    cluster = ctx.root
    senders = ctx.handles["senders"]

    cpus = [cluster.node(i).cpu for i in range(2)]
    start_cycles = cluster.now
    start_events = _events_fired(cluster.clock)
    hits0, misses0 = _xlat_counters(*cpus)
    t0 = time.perf_counter()
    for _ in range(rounds):
        senders[0].send_buffer(msg_bytes)
        cluster.run_until_idle()
        senders[1].send_buffer(msg_bytes)
        cluster.run_until_idle()
    elapsed = time.perf_counter() - t0
    hits1, misses1 = _xlat_counters(*cpus)
    return HostResult(
        scenario="cluster_pingpong",
        sim_bytes=2 * rounds * msg_bytes,
        sim_cycles=cluster.now - start_cycles,
        messages=2 * rounds,
        host_seconds=elapsed,
        events_fired=_events_fired(cluster.clock) - start_events,
        xlat_hits=hits1 - hits0,
        xlat_misses=misses1 - misses0,
    )


def _stepping_dma_setup(
    nbytes: int, burst_bytes: int, bursts_per_event: int
) -> _WarmContext:
    machine = Machine(config=MachineConfig(mem_size=1 << 21))
    clock = machine.clock
    try:
        engine = DmaEngine(
            clock,
            machine.costs,
            name="bench-step",
            burst_bytes=burst_bytes,
            bursts_per_event=bursts_per_event,
        )
    except TypeError:  # pre-chunking engine: one event per burst
        engine = DmaEngine(
            clock, machine.costs, name="bench-step", burst_bytes=burst_bytes
        )
    machine.physmem.write(0, make_payload(nbytes))
    return _WarmContext(root=machine, handles={"engine": engine})


def bench_stepping_dma(
    transfers: int = 40,
    nbytes: int = 1 << 16,
    burst_bytes: int = 64,
    bursts_per_event: int = 8,
    warm_start: bool = False,
) -> HostResult:
    """Word-stepping memory-to-memory DMA, where events are the cost.

    ``bursts_per_event`` batches burst events on engines that support
    chunked stepping; older engines fall back to one event per burst, so
    the scenario stays runnable for before/after comparison.
    """
    ctx = _warm(
        "stepping_dma",
        (nbytes, burst_bytes, bursts_per_event),
        lambda: _stepping_dma_setup(nbytes, burst_bytes, bursts_per_event),
        warm_start,
    )
    machine = ctx.root
    engine = ctx.handles["engine"]
    clock = machine.clock
    physmem = machine.physmem
    src_paddr, dst_paddr = 0, nbytes

    start_cycles = clock.now
    start_events = _events_fired(clock)
    t0 = time.perf_counter()
    for _ in range(transfers):
        engine.start(
            MemoryEndpoint(physmem, src_paddr),
            MemoryEndpoint(physmem, dst_paddr),
            nbytes,
        )
        clock.run_until_idle()
    elapsed = time.perf_counter() - t0
    assert physmem.read(dst_paddr, nbytes) == physmem.read(src_paddr, nbytes)
    return HostResult(
        scenario="stepping_dma",
        sim_bytes=transfers * nbytes,
        sim_cycles=clock.now - start_cycles,
        messages=transfers,
        host_seconds=elapsed,
        events_fired=_events_fired(clock) - start_events,
    )


def _translate_storm_setup(pages: int) -> _WarmContext:
    machine = Machine(config=MachineConfig(mem_size=1 << 22))
    nbytes = pages * machine.costs.page_size
    storm = machine.create_process("storm")
    other = machine.create_process("other")
    machine.kernel.scheduler.switch_to(storm)
    buf = machine.kernel.syscalls.alloc(storm, nbytes)
    machine.cpu.write_bytes(buf, make_payload(nbytes))
    machine.run_until_idle()
    return _WarmContext(
        root=machine, handles={"storm": storm, "other": other, "buf": buf}
    )


def bench_translate_storm(
    iterations: int = 120, pages: int = 64, warm_start: bool = False
) -> HostResult:
    """Translation-heavy CPU work: the software-TLB's stress case.

    Each iteration walks a ``pages``-page working set with one word LOAD
    per page (pure translation traffic), then streams the whole buffer
    through ``read_into`` and ``write_bytes`` (one translation per page
    run).  Every eighth iteration context-switches away and back, which
    bumps the TLB generation and forces the CPU's translation cache to
    re-validate via full MMU walks -- so the measured hit rate reflects
    shootdown-correct caching, not an unrealistic 100%.
    """
    ctx = _warm(
        "translate_storm",
        (pages,),
        lambda: _translate_storm_setup(pages),
        warm_start,
    )
    machine = ctx.root
    storm, other, buf = (
        ctx.handles["storm"], ctx.handles["other"], ctx.handles["buf"]
    )
    page_size = machine.costs.page_size
    nbytes = pages * page_size
    scheduler = machine.kernel.scheduler
    cpu = machine.cpu

    scratch = bytearray(nbytes)
    start_cycles = machine.now
    start_events = _events_fired(machine.clock)
    start_instructions = cpu.instructions
    hits0, misses0 = _xlat_counters(cpu)
    t0 = time.perf_counter()
    for i in range(iterations):
        for offset in range(0, nbytes, page_size):
            cpu.load(buf + offset)
        cpu.read_into(buf, scratch)
        cpu.write_bytes(buf, scratch)
        if i % 8 == 7:
            scheduler.switch_to(other)
            scheduler.switch_to(storm)
    elapsed = time.perf_counter() - t0
    hits1, misses1 = _xlat_counters(cpu)
    return HostResult(
        scenario="translate_storm",
        sim_bytes=iterations * 2 * nbytes,
        sim_cycles=machine.now - start_cycles,
        messages=iterations,
        host_seconds=elapsed,
        # Pure CPU work never schedules a clock event, so the event
        # column would read 0; the simulator's unit of work here is the
        # retired instruction, and that is what events/s must reflect.
        events_fired=(
            _events_fired(machine.clock) - start_events
            + cpu.instructions - start_instructions
        ),
        xlat_hits=hits1 - hits0,
        xlat_misses=misses1 - misses0,
    )


def bench_cluster_mesh_64(messages: int = 16, shards: int = 1) -> HostResult:
    """A 64-node 8x8 mesh of self-driving senders on the sharded kernel.

    Every node streams ``messages`` deliberate-update sends around the
    node ring under the conservative-PDES engine (``repro.sharding``).
    Construction of the 64 machines happens *outside* the timed window;
    what is measured is pure event execution -- the metric that the
    shard-scaling sweep (``run_bench.py --shards N``) must scale.
    """
    from repro.sharding import ClusterSpec, InProcessEngine

    spec = ClusterSpec(num_nodes=64, messages_per_node=messages)
    engine = InProcessEngine(spec, num_shards=shards)
    t0 = time.perf_counter()
    result = engine.run()
    elapsed = time.perf_counter() - t0
    return HostResult(
        scenario="cluster_mesh_64",
        sim_bytes=result.sent * spec.msg_bytes,
        sim_cycles=result.now,
        messages=result.sent,
        host_seconds=elapsed,
        events_fired=result.events_fired,
        xlat_hits=result.xlat_hits,
        xlat_misses=result.xlat_misses,
    )


def bench_cluster_mesh_worker(messages: int = 16, shards: int = 1) -> HostResult:
    """The same 64-node mesh on the multi-process worker engine.

    The timed window starts when every worker has built its shard and
    ends when the relay drains (``WorkerEngine.timed_seconds``), so the
    scaling sweep compares execution, not process spawning.  Not in
    :data:`SCENARIOS` -- worker timings depend on the host's core count,
    so they must not gate the regression check.
    """
    from repro.sharding import ClusterSpec, WorkerEngine

    spec = ClusterSpec(num_nodes=64, messages_per_node=messages)
    engine = WorkerEngine(spec, num_shards=shards)
    result = engine.run()
    assert engine.timed_seconds is not None
    return HostResult(
        scenario=f"cluster_mesh_64@{shards}shard",
        sim_bytes=result.sent * spec.msg_bytes,
        sim_cycles=result.now,
        messages=result.sent,
        host_seconds=engine.timed_seconds,
        events_fired=result.events_fired,
        xlat_hits=result.xlat_hits,
        xlat_misses=result.xlat_misses,
    )


def run_scaling_sweep(
    max_shards: int = 8, quick: bool = False, repeats: int = 3
) -> "Dict[int, HostResult]":
    """Worker-engine events/s at 1/2/4/.../``max_shards`` shards.

    Single-schedule, best-of-N per point; every point simulates the
    identical workload (the determinism contract), so events/s is
    directly comparable across shard counts.
    """
    messages = 4 if quick else 16
    counts = [c for c in (1, 2, 4, 8, 16) if c <= max_shards]
    if max_shards not in counts:
        counts.append(max_shards)
    results: "Dict[int, HostResult]" = {}
    for shards in counts:
        best: Optional[HostResult] = None
        for _ in range(max(1, repeats)):
            result = bench_cluster_mesh_worker(
                messages=messages, shards=shards
            )
            if best is None or result.host_seconds < best.host_seconds:
                best = result
        assert best is not None
        results[shards] = best
    return results


def format_scaling(results: "Dict[int, HostResult]") -> str:
    """The scaling table appended to the bench report."""
    lines = [
        "shard scaling (cluster_mesh_64, worker engine):",
        f"{'shards':>7} {'events/s':>12} {'host s':>9} {'speedup':>8}",
    ]
    base = results.get(1)
    for shards in sorted(results):
        r = results[shards]
        speedup = (
            r.events_per_s / base.events_per_s
            if base is not None and base.events_per_s
            else 0.0
        )
        lines.append(
            f"{shards:>7} {r.events_per_s:>12.0f} "
            f"{r.host_seconds:>9.3f} {speedup:>7.2f}x"
        )
    return "\n".join(lines)


def bench_reliable_pingpong(
    rounds: int = 100,
    msg_bytes: int = 4096,
    reliability: bool = False,
    drop_every: int = 0,
) -> HostResult:
    """Ping-pong with the ack/retransmit transport in the loop.

    Deliberately NOT registered in :data:`SCENARIOS`: the transport is an
    opt-in feature, so it must not perturb the ``BENCH_core.json``
    regression gate.  Run via ``run_bench.py --reliability-overhead``.

    ``drop_every`` > 0 installs a deterministic counting injector that
    drops every Nth routed packet (data and ACKs alike -- both must
    heal), forcing the full encode/decode wire path plus retransmission
    timeouts.  ``drop_every=100`` is the "1% loss" point.
    """
    cluster = ShrimpCluster(
                  config=ClusterConfig(
                      num_nodes=2,
                      mem_size=1 << 21,
                      reliability=reliability,
                  ),
              )
    if drop_every > 0:
        routed = {"n": 0}

        def drop_nth(wire):
            routed["n"] += 1
            return None if routed["n"] % drop_every == 0 else wire

        cluster.interconnect.fault_injector = drop_nth
    procs = [cluster.node(i).create_process(f"p{i}") for i in range(2)]
    bufs = [
        cluster.node(i).kernel.syscalls.alloc(procs[i], msg_bytes)
        for i in range(2)
    ]
    ch01 = cluster.create_channel(0, 1, procs[1], bufs[1], msg_bytes)
    ch10 = cluster.create_channel(1, 0, procs[0], bufs[0], msg_bytes)
    senders = [
        Sender(cluster, procs[0], ch01),
        Sender(cluster, procs[1], ch10),
    ]
    for sender in senders:
        sender._ensure_current()
        sender.machine.cpu.write_bytes(sender.buffer, make_payload(msg_bytes))
    cluster.run_until_idle()

    start_cycles = cluster.now
    start_events = _events_fired(cluster.clock)
    t0 = time.perf_counter()
    for _ in range(rounds):
        senders[0].send_buffer(msg_bytes)
        cluster.run_until_idle()
        senders[1].send_buffer(msg_bytes)
        cluster.run_until_idle()
    elapsed = time.perf_counter() - t0
    label = "reliable_pingpong" if reliability else "pingpong_unreliable"
    if drop_every:
        label += f"_loss{100 // drop_every}pct"
    return HostResult(
        scenario=label,
        sim_bytes=2 * rounds * msg_bytes,
        sim_cycles=cluster.now - start_cycles,
        messages=2 * rounds,
        host_seconds=elapsed,
        events_fired=_events_fired(cluster.clock) - start_events,
    )


# --------------------------------------------------------------- running
#: scenario name -> (full kwargs, quick kwargs)
SCENARIOS: Dict[str, "ScenarioSpec"] = {}


@dataclass
class ScenarioSpec:
    name: str
    fn: Callable[..., HostResult]
    full: Dict[str, int] = field(default_factory=dict)
    quick: Dict[str, int] = field(default_factory=dict)
    #: supports warm_start= (fork-based template cache); the sharded mesh
    #: builds its worlds inside the engine, so it stays cold
    warm: bool = True


def _register(name, fn, full, quick, warm=True):
    SCENARIOS[name] = ScenarioSpec(name, fn, full, quick, warm)


# Quick workloads stay CI-cheap (< ~100 ms total) but are sized so each
# timed region is ~10 ms+ -- shorter regions make MB/s too noisy for the
# --check regression gate.
_register("udma_send", bench_udma_send,
          {"messages": 400}, {"messages": 200})
_register("cluster_pingpong", bench_cluster_pingpong,
          {"rounds": 200}, {"rounds": 100})
_register("stepping_dma", bench_stepping_dma,
          {"transfers": 40}, {"transfers": 15})
_register("translate_storm", bench_translate_storm,
          {"iterations": 120}, {"iterations": 40})
_register("cluster_mesh_64", bench_cluster_mesh_64,
          {"messages": 16}, {"messages": 4}, warm=False)


def run_all(
    quick: bool = False, repeats: int = 3, warm_start: bool = False
) -> Dict[str, HostResult]:
    """Run every scenario ``repeats`` times; keep the fastest host time.

    Best-of-N damps scheduler noise; simulated results are identical
    across repeats (the simulator is deterministic).  ``warm_start``
    builds each scenario's world once and forks it per repeat
    (``repro.snapshot.fork``), cutting sweep wall-clock without changing
    any simulated number -- restore-equivalence makes the forked repeats
    bit-identical to cold ones.
    """
    results: Dict[str, HostResult] = {}
    for spec in SCENARIOS.values():
        kwargs = dict(spec.quick if quick else spec.full)
        if warm_start and spec.warm:
            kwargs["warm_start"] = True
        best: Optional[HostResult] = None
        for _ in range(max(1, repeats)):
            result = spec.fn(**kwargs)
            if best is None or result.host_seconds < best.host_seconds:
                best = result
        assert best is not None
        results[spec.name] = best
    return results


# ------------------------------------------------- observability overhead
#: obs-overhead A/B modes: label -> ObsConfig handed to the scenario.
#: ``baseline`` disables the whole plane, ``metrics`` is the library
#: default (registry bound, spans off), ``spans`` turns everything on.
OBS_MODES: Dict[str, Optional[ObsConfig]] = {
    "baseline": ObsConfig(metrics=False, spans=False),
    "metrics": None,
    "spans": ObsConfig(metrics=True, spans=True),
}


def run_obs_overhead(
    quick: bool = False, repeats: int = 5
) -> Dict[str, HostResult]:
    """A/B the observability plane's host cost on the ``udma_send`` path.

    Runs the same workload under every :data:`OBS_MODES` configuration,
    interleaving the modes within each repeat so host-scheduler drift
    hits all modes equally, and keeps the fastest run per mode.  The
    metrics registry samples live counters only at snapshot time and the
    span tracker is never constructed when disabled, so ``metrics`` is
    expected to land within noise of ``baseline`` (CI gates it at 2%).
    """
    kwargs = dict(SCENARIOS["udma_send"].quick if quick else SCENARIOS["udma_send"].full)
    best: Dict[str, HostResult] = {}
    for _ in range(max(1, repeats)):
        for mode, config in OBS_MODES.items():
            result = bench_udma_send(obs=config, **kwargs)
            if mode not in best or result.host_seconds < best[mode].host_seconds:
                best[mode] = result
    return best


# ------------------------------------------------- reliability overhead
#: reliability A/B modes: label -> bench_reliable_pingpong kwargs.
#: ``off`` is today's default (paper-faithful, lossless backplane);
#: ``on-0%`` prices sequencing + cumulative ACK traffic alone;
#: ``on-1%`` adds one dropped packet per hundred routed, so timeouts,
#: backoff, and retransmissions are in the measured loop.
RELIABILITY_MODES: Dict[str, Dict[str, int]] = {
    "off": {"reliability": False, "drop_every": 0},
    "on-0%": {"reliability": True, "drop_every": 0},
    "on-1%": {"reliability": True, "drop_every": 100},
}


def run_reliability_overhead(
    quick: bool = False, repeats: int = 3
) -> Dict[str, HostResult]:
    """A/B the reliable transport's host cost on the ping-pong path.

    Interleaves the modes within each repeat (like
    :func:`run_obs_overhead`) and keeps the fastest run per mode.  The
    ``off`` mode is the reference: it must match plain
    ``cluster_pingpong`` behaviour, since a disabled transport is a
    single ``is None`` branch per packet.
    """
    rounds = 50 if quick else 100
    best: Dict[str, HostResult] = {}
    for _ in range(max(1, repeats)):
        for mode, kwargs in RELIABILITY_MODES.items():
            result = bench_reliable_pingpong(rounds=rounds, **kwargs)
            if mode not in best or result.host_seconds < best[mode].host_seconds:
                best[mode] = result
    return best


def format_reliability_overhead(results: Dict[str, HostResult]) -> str:
    base = results.get("off")
    lines = [
        f"{'reliability':<12} {'MB/s (host)':>12} {'sim cycles':>12} "
        f"{'host s':>8} {'vs off':>10}"
    ]
    for mode, r in results.items():
        if base is not None and base.mb_per_s and mode != "off":
            delta = f"{100.0 * (r.mb_per_s / base.mb_per_s - 1.0):>+9.1f}%"
        else:
            delta = f"{'-':>10}"
        lines.append(
            f"{mode:<12} {r.mb_per_s:>12.2f} {r.sim_cycles:>12} "
            f"{r.host_seconds:>8.3f} {delta}"
        )
    return "\n".join(lines)


def transfer_latency_profile(
    messages: int = 50, msg_bytes: int = 4096
) -> Dict[str, float]:
    """Per-transfer latency histogram from a small metered workload.

    Returns the ``udma.transfer_cycles`` histogram value dict
    (count/sum/min/max/p50/p99, in simulated cycles) after ``messages``
    sends -- the number ``docs/PERFORMANCE.md`` quotes.
    """
    machine = Machine(config=MachineConfig(mem_size=1 << 21))
    sink = SinkDevice("sink", size=1 << 16)
    machine.attach_device(sink)
    process = machine.create_process("latency")
    buf = machine.kernel.syscalls.alloc(process, msg_bytes)
    grant = machine.kernel.syscalls.grant_device_proxy(process, "sink")
    udma = UdmaUser(machine, process)
    machine.cpu.write_bytes(buf, make_payload(msg_bytes))
    machine.run_until_idle()
    for _ in range(messages):
        udma.transfer(MemoryRef(buf), DeviceRef(grant), msg_bytes)
        machine.run_until_idle()
    return machine.metrics()["udma"]["transfer_cycles"]


def format_obs_overhead(results: Dict[str, HostResult]) -> str:
    base = results.get("baseline")
    lines = [f"{'obs mode':<10} {'MB/s (host)':>12} {'host s':>8} {'vs baseline':>12}"]
    for mode, r in results.items():
        if base is not None and base.mb_per_s and mode != "baseline":
            delta = f"{100.0 * (r.mb_per_s / base.mb_per_s - 1.0):>+11.1f}%"
        else:
            delta = f"{'-':>12}"
        lines.append(
            f"{mode:<10} {r.mb_per_s:>12.2f} {r.host_seconds:>8.3f} {delta}"
        )
    return "\n".join(lines)


def format_results(results: Dict[str, HostResult]) -> str:
    lines = [
        f"{'scenario':<18} {'MB/s (host)':>12} {'events/s':>12} "
        f"{'msgs/s':>10} {'host s':>8} {'xlat%':>7}"
    ]
    for name, r in results.items():
        if r.xlat_hits or r.xlat_misses:
            xlat = f"{100.0 * r.xlat_hit_rate:>6.1f}%"
        else:
            xlat = f"{'-':>7}"  # scenario exercises no CPU translation
        lines.append(
            f"{name:<18} {r.mb_per_s:>12.2f} {r.events_per_s:>12.0f} "
            f"{r.messages_per_s:>10.1f} {r.host_seconds:>8.3f} {xlat}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual use; run_bench.py is the CLI
    print(format_results(run_all(quick=True, repeats=1)))
