"""INIT -- initiation overhead: UDMA's two references vs the kernel path.

Paper targets:

* "The time for a user process to initiate a DMA transfer is about 2.8
  microseconds, which includes the time to perform the two-instruction
  initiation sequence and check data alignment" (section 8);
* "a UDMA transfer can be started with two user-level memory references
  [and] does not require a system call" (section 1);
* "Starting a DMA transaction usually takes hundreds or thousands of CPU
  instructions" for the traditional path (section 2);
* "a single instruction suffices to check for completion" (section 10).
"""

from __future__ import annotations

from repro.bench import Row, print_table
from repro.bench.report import fmt_us
from repro.bench.workloads import make_payload
from repro.protection import BACKEND_NAMES, backend_class
from repro.userlib.udma import DeviceRef, MemoryRef

from benchmarks.conftest import SinkRig

PAGE = 4096


def measure_udma_initiation(rig):
    """Charged CPU cycles for one full initiation (align check + pair)."""
    machine = rig.machine
    machine.cpu.write_bytes(rig.buffer, make_payload(64))
    # Warm the mappings so no demand-paging fault lands inside the window.
    rig.udma.initiate(rig.grant, machine.layout.proxy(rig.buffer), 4)
    machine.run_until_idle()
    before_cycles = machine.cpu.charged_cycles
    before_loads = machine.cpu.loads + machine.cpu.stores
    machine.cpu.execute(machine.costs.udma_align_check_cycles)
    status = rig.udma.initiate(rig.grant, machine.layout.proxy(rig.buffer), 64)
    cycles = machine.cpu.charged_cycles - before_cycles
    refs = machine.cpu.loads + machine.cpu.stores - before_loads
    assert status.started
    machine.run_until_idle()
    # Completion check: a single LOAD.
    before_refs = machine.cpu.loads
    rig.udma.poll(machine.layout.proxy(rig.buffer))
    poll_refs = machine.cpu.loads - before_refs
    return cycles, refs, poll_refs


def measure_backend_initiation(rig):
    """Clock and CPU cost of one two-instruction send under a backend.

    The CPU-charged cycles are the user's two references plus the
    alignment check -- identical for every backend.  The *clock* also
    absorbs the backend's initiation check (a device-side stall while
    the capability table or handler validates the LOAD), so the
    difference between the two is the protection scheme's toll.
    """
    machine = rig.machine
    machine.cpu.write_bytes(rig.buffer, make_payload(64))
    rig.udma.initiate(rig.grant, machine.layout.proxy(rig.buffer), 4)
    machine.run_until_idle()
    before_clock = machine.clock.now
    before_cpu = machine.cpu.charged_cycles
    machine.cpu.execute(machine.costs.udma_align_check_cycles)
    status = rig.udma.initiate(rig.grant, machine.layout.proxy(rig.buffer), 64)
    clock_cycles = machine.clock.now - before_clock
    cpu_cycles = machine.cpu.charged_cycles - before_cpu
    assert status.started
    machine.run_until_idle()
    return clock_cycles, cpu_cycles


def measure_traditional(rig, nbytes=PAGE, bounce=False):
    """Total and overhead cycles for one kernel-initiated DMA."""
    import math

    machine = rig.machine
    machine.cpu.write_bytes(rig.buffer, make_payload(nbytes))
    start = machine.clock.now
    machine.kernel.syscalls.dma(
        rig.process, "sink", 0, rig.buffer, nbytes, to_device=True, bounce=bounce
    )
    total = machine.clock.now - start
    pure = machine.costs.dma_start_cycles + math.ceil(
        nbytes / machine.costs.dma_bytes_per_cycle
    )
    return total, total - pure


def test_initiation_overhead(sink_rig, benchmark):
    rig = sink_rig
    costs = rig.costs
    (udma_cycles, udma_refs, poll_refs), (_, trad_overhead) = benchmark.pedantic(
        lambda: (measure_udma_initiation(rig), measure_traditional(rig)),
        rounds=1,
        iterations=1,
    )
    _, bounce_overhead = measure_traditional(rig, bounce=True)
    udma_us = costs.cycles_to_us(udma_cycles)
    ratio = trad_overhead / udma_cycles

    rows = [
        Row("UDMA initiation time", "~2.8 us", fmt_us(udma_us),
            2.4 <= udma_us <= 3.2),
        Row("UDMA proxy references per initiation", "2", str(udma_refs),
            udma_refs == 2),
        Row("completion check", "1 instruction", f"{poll_refs} load",
            poll_refs == 1),
        Row("traditional DMA overhead (1 page)", "hundreds-thousands of instrs",
            f"{trad_overhead} cycles", 500 <= trad_overhead <= 10_000),
        Row("bounce-buffer variant overhead", "adds a copy",
            f"{bounce_overhead} cycles", bounce_overhead > trad_overhead * 0.8),
        Row("traditional / UDMA overhead ratio", ">> 1x", f"{ratio:.0f}x",
            ratio >= 5),
    ]
    print_table(
        "INIT: initiation cost, UDMA vs traditional DMA",
        rows,
        notes=[
            "UDMA cycles include the user-level alignment check (as in the "
            "paper's 2.8 us figure)",
            f"traditional path at {costs.cycles_to_us(trad_overhead):.1f} us "
            "simulated: syscall + translate + pin + descriptor + interrupt "
            "+ unpin + reschedule",
        ],
    )
    assert all(r.ok for r in rows)


def test_backend_initiation_cost(benchmark):
    """Per-protection-backend cost of the two-instruction send.

    The proxy scheme's check rides the MMU translation, so it adds zero
    cycles -- the paper's 2.8 us stands.  The capability-table and
    validated-handler alternatives buy the same protection *outcome* for
    a per-initiation toll, which this table prices.  The CPU-charged
    cycles must not move: the check is a device-side stall, not user
    instructions.
    """
    def run():
        return {
            name: measure_backend_initiation(SinkRig(protection=name))
            for name in BACKEND_NAMES
        }

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    costs = SinkRig().costs
    proxy_clock, proxy_cpu = measured["proxy"]
    rows = [
        Row("proxy two-instruction send", "~2.8 us",
            fmt_us(costs.cycles_to_us(proxy_clock)),
            2.4 <= costs.cycles_to_us(proxy_clock) <= 3.2),
        Row("proxy protection toll", "0 cycles (MMU does it)",
            f"{proxy_clock - proxy_cpu} cycles",
            proxy_clock == proxy_cpu),
    ]
    for name in BACKEND_NAMES[1:]:
        clock_cycles, cpu_cycles = measured[name]
        expected_toll = backend_class(name).initiation_check_cycles
        toll = clock_cycles - proxy_clock
        rows.append(
            Row(f"{name} two-instruction send",
                f"+{expected_toll} cycles vs proxy",
                f"{fmt_us(costs.cycles_to_us(clock_cycles))} (+{toll})",
                toll == expected_toll)
        )
        rows.append(
            Row(f"{name} CPU-charged cycles", "same as proxy",
                f"{cpu_cycles}", cpu_cycles == proxy_cpu)
        )
    print_table(
        "INIT-B: two-instruction send cost per protection backend",
        rows,
        notes=[
            "same grants, same fault kinds, same memory outcome on every "
            "backend (enforced by tests/protection); only the initiation "
            "toll differs",
        ],
    )
    assert all(r.ok for r in rows)
