"""Supplementary: small-message latency decomposition.

The paper reports initiation cost and bandwidth, not end-to-end latency;
this bench is *supplementary* (marked as such in EXPERIMENTS.md).  It
checks the structural properties the architecture implies:

* small-message one-way latency is dominated by fixed per-message costs
  (initiation + DMA start + header + check), not by payload time;
* latency grows linearly with routing distance at ``hop_cycles`` per hop;
* the latency floor is consistent with the cost model's components.
"""

from __future__ import annotations

from repro import ClusterConfig, Sender, ShrimpCluster
from repro.bench import Row, make_payload, print_table
from repro.bench.report import fmt_us

PAGE = 4096


def one_way_cycles(cluster, sender, nbytes):
    sender._ensure_current()
    sender.machine.cpu.write_bytes(sender.buffer, make_payload(nbytes))
    nic = cluster.nic(sender.channel.dst_node)
    start = cluster.now
    sender.send_buffer(nbytes)
    cluster.run_until_idle()
    return nic.last_delivery_done - start


def build_pair(distance):
    cluster = ShrimpCluster(
                  config=ClusterConfig(
                      num_nodes=distance + 1,
                      mem_size=1 << 20,
                  ),
              )
    rx = cluster.node(distance).create_process("rx")
    buf = cluster.node(distance).kernel.syscalls.alloc(rx, 2 * PAGE)
    channel = cluster.create_channel(0, distance, rx, buf, 2 * PAGE)
    tx = cluster.node(0).create_process("tx")
    return cluster, Sender(cluster, tx, channel)


def test_small_message_latency(benchmark):
    def run():
        cluster, sender = build_pair(distance=1)
        one_way_cycles(cluster, sender, 4)  # warm mappings and TLB
        lat_4 = one_way_cycles(cluster, sender, 4)
        lat_64 = one_way_cycles(cluster, sender, 64)
        lat_1k = one_way_cycles(cluster, sender, 1024)
        far_cluster, far_sender = build_pair(distance=3)
        one_way_cycles(far_cluster, far_sender, 4)  # warm
        lat_far = one_way_cycles(far_cluster, far_sender, 4)
        return cluster.costs, lat_4, lat_64, lat_1k, lat_far

    costs, lat_4, lat_64, lat_1k, lat_far = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    # Floor: the serial components (header building overlaps the fill in
    # the cut-through pipeline, so it is not included).
    fixed_floor = (
        costs.udma_initiation_cycles
        + costs.dma_start_cycles
        + costs.hop_cycles
        + costs.rx_check_cycles
    )
    hop_delta = (lat_far - lat_4) / 2  # two extra hops

    rows = [
        Row("4 B one-way latency", f">= fixed floor ({fmt_us(costs.cycles_to_us(fixed_floor))})",
            fmt_us(costs.cycles_to_us(lat_4)), lat_4 >= fixed_floor),
        Row("64 B vs 4 B", "nearly identical (fixed-cost bound)",
            f"+{(lat_64 - lat_4)} cycles", lat_64 - lat_4 < 0.25 * lat_4),
        Row("1 KB vs 4 B", "payload time emerges",
            f"+{(lat_1k - lat_4)} cycles", lat_1k > lat_64),
        Row("per-hop latency", f"~{costs.hop_cycles} cycles/hop",
            f"{hop_delta:.0f} cycles/hop",
            0.5 * costs.hop_cycles <= hop_delta <= 2 * costs.hop_cycles),
    ]
    print_table(
        "LATENCY (supplementary): small-message one-way latency",
        rows,
        notes=[
            "no paper figure reports latency directly; these are "
            "structural checks of the simulated pipeline",
        ],
    )
    assert all(r.ok for r in rows)
