"""XOVER -- effective bandwidth of three mechanisms vs message size.

The paper's sections 1/9/10 imply a mechanism ordering:

* memory-mapped FIFO (PIO, section 9): "good latency for short messages.
  However, for longer messages the DMA-based controller is preferable
  because it makes use of the bus burst mode, which is much faster than
  processor-generated single word transactions" -- so PIO wins only below
  a small crossover;
* UDMA's "extremely low overhead allows the use of DMA for common,
  fine-grain operations" -- it beats the traditional path at *every*
  size, most dramatically at fine grain;
* traditional DMA approaches UDMA only when transfers are huge and the
  per-transfer kernel overhead is amortised.
"""

from __future__ import annotations

import math

from repro.bench import Row, print_table, sweep_sizes
from repro.bench.workloads import make_payload
from repro.userlib.udma import DeviceRef, MemoryRef

PAGE = 4096


def udma_cycles(rig, nbytes):
    machine = rig.machine
    machine.cpu.write_bytes(rig.buffer, make_payload(min(nbytes, 1 << 15)))
    start = machine.clock.now
    rig.udma.transfer(MemoryRef(rig.buffer), DeviceRef(rig.grant),
                      min(nbytes, 1 << 15) if nbytes > 1 << 15 else nbytes)
    if nbytes > 1 << 15:
        # larger than the buffer: repeat whole-buffer sends
        remaining = nbytes - (1 << 15)
        while remaining > 0:
            chunk = min(remaining, 1 << 15)
            rig.udma.transfer(MemoryRef(rig.buffer), DeviceRef(rig.grant), chunk)
            remaining -= chunk
    machine.run_until_idle()
    return machine.clock.now - start


def traditional_cycles(rig, nbytes):
    machine = rig.machine
    start = machine.clock.now
    offset = 0
    while offset < nbytes:
        chunk = min(nbytes - offset, 1 << 15)
        machine.kernel.syscalls.dma(
            rig.process, "sink", 0, rig.buffer, chunk, to_device=True
        )
        offset += chunk
    return machine.clock.now - start


def pio_cycles(rig, nbytes):
    """Memory-mapped FIFO model: one uncached store per word, no setup.

    (Modelled from the cost table rather than driven through the CPU,
    because in this machine every device-window store is a UDMA command;
    a FIFO-style NIC would dedicate its window to data words instead.)
    """
    words = math.ceil(nbytes / rig.costs.word_size)
    return words * rig.costs.io_ref_cycles


def test_mechanism_crossover(sink_rig, benchmark):
    rig = sink_rig
    sizes = [16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536]

    def sweep():
        return [
            (n, udma_cycles(rig, n), traditional_cycles(rig, n), pio_cycles(rig, n))
            for n in sizes
        ]

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print("cycles per send (lower is better):")
    print(f"  {'size':>7}  {'UDMA':>9}  {'traditional':>11}  {'PIO':>9}  winner")
    winners = {}
    for n, u, t, p in table:
        best = min((u, "UDMA"), (t, "traditional"), (p, "PIO"))[1]
        winners[n] = best
        print(f"  {n:7d}  {u:9d}  {t:11d}  {p:9d}  {best}")

    by_size = {n: (u, t, p) for n, u, t, p in table}
    pio_crossover = next((n for n in sizes if by_size[n][0] <= by_size[n][2]), None)
    big_u, big_t, _ = by_size[65536]

    rows = [
        Row("PIO wins for the shortest messages", "yes (latency)",
            winners[16], winners[16] == "PIO"),
        Row("PIO -> DMA crossover point", "small (tens of bytes)",
            f"{pio_crossover} B", pio_crossover is not None and pio_crossover <= 128),
        Row("UDMA beats traditional at fine grain (<= 4 KB)", "yes",
            "yes" if all(u < t for n, u, t, _ in table if n <= 4096) else "no",
            all(u < t for n, u, t, _ in table if n <= 4096)),
        Row("UDMA advantage at 256 B", "large (fine grain usable)",
            f"{by_size[256][1] / by_size[256][0]:.1f}x",
            by_size[256][1] / by_size[256][0] >= 1.5),
        Row("coarse grain is a wash (both wire-bound)", "overhead amortised",
            f"{abs(big_t - big_u) / big_u * 100:.1f}% apart at 64 KB",
            abs(big_t - big_u) / big_u < 0.05),
    ]
    print_table(
        "XOVER: UDMA vs traditional DMA vs memory-mapped FIFO",
        rows,
        notes=[
            "the paper's claim is about *overhead*, not asymptotic "
            "bandwidth: at coarse grain both DMA paths are wire-bound and "
            "tie, which this sweep confirms",
        ],
    )
    assert all(r.ok for r in rows)
