"""QUEUE -- section 7: multi-page transfers with hardware queueing.

Paper targets:

* "Queueing allows a user-level process to start multi-page transfers
  with only two instructions per page in the best case";
* "If the source and destination addresses are not aligned to the same
  offset on their respective pages, two transfers per page are needed";
* "A transfer request is refused only when the queue is full";
* queueing "makes it easy to do gather-scatter transfers" and removes the
  per-page completion wait the basic device imposes.
"""

from __future__ import annotations

from repro.bench import Row, print_table
from repro.bench.workloads import make_payload
from repro.userlib.udma import DeviceRef, MemoryRef

from benchmarks.conftest import SinkRig

PAGE = 4096
NPAGES = 8


def run_multipage(rig, misaligned=False):
    """Send an 8-page message; returns (stats, cycles)."""
    machine = rig.machine
    data = make_payload(NPAGES * PAGE)
    machine.cpu.write_bytes(rig.buffer, data[: NPAGES * PAGE])
    dev_offset = 100 if misaligned else 0
    start = machine.clock.now
    stats = rig.udma.transfer(
        MemoryRef(rig.buffer),
        DeviceRef(rig.grant + dev_offset),
        NPAGES * PAGE - (PAGE if misaligned else 0),
    )
    machine.run_until_idle()
    return stats, machine.clock.now - start


def test_multipage_queueing(benchmark):
    basic = SinkRig(queue_depth=None)
    queued = SinkRig(queue_depth=16)

    (basic_stats, basic_cycles), (queued_stats, queued_cycles) = benchmark.pedantic(
        lambda: (run_multipage(basic), run_multipage(queued)),
        rounds=1,
        iterations=1,
    )
    mis_stats, _ = run_multipage(SinkRig(queue_depth=16), misaligned=True)

    # Instruction accounting per page on the queued path: each piece is
    # one STORE + one fence + one LOAD; no completion polls in between.
    queued_refs_per_page = (
        2 * queued_stats.initiations / queued_stats.pieces
    )
    speedup = basic_cycles / queued_cycles

    rows = [
        Row("initiations per page (queued, aligned)", "1 (2 instructions)",
            f"{queued_stats.initiations / queued_stats.pieces:.1f}",
            queued_stats.initiations == NPAGES),
        Row("memory references per page (queued)", "2",
            f"{queued_refs_per_page:.1f}", queued_refs_per_page == 2.0),
        Row("initiations blocked on prior completions (queued)", "0",
            str(queued_stats.retries), queued_stats.retries == 0),
        Row("completion polls (queued: all at final wait)", "final wait only",
            f"{queued_stats.poll_loads} polls", None),
        Row("transfers per page when misaligned", "2",
            f"{mis_stats.pieces / (NPAGES - 1):.1f}",
            mis_stats.pieces == 2 * (NPAGES - 1)),
        Row("basic device pieces (aligned)", "1 per page",
            str(basic_stats.pieces), basic_stats.pieces == NPAGES),
        Row("queued vs basic wall-clock", "faster (no per-page wait)",
            f"{speedup:.2f}x", speedup > 1.0),
    ]
    print_table(
        "QUEUE: multi-page transfers, basic vs queued device (section 7)",
        rows,
        notes=[
            f"8-page message: basic {basic_cycles} cycles, queued "
            f"{queued_cycles} cycles",
            "the queued device overlaps initiation of page i+1 with the "
            "DMA of page i; the basic device serialises them",
        ],
    )
    assert all(r.ok in (True, None) for r in rows)


def test_queue_full_refusal_rate(benchmark):
    """Refusals happen exactly when the queue is full, and are transient."""
    def run():
        rig = SinkRig(queue_depth=4)
        machine = rig.machine
        data = make_payload(16 * PAGE)
        machine.cpu.write_bytes(rig.buffer, data[: 16 * PAGE])
        stats = rig.udma.transfer(
            MemoryRef(rig.buffer), DeviceRef(rig.grant), 16 * PAGE
        )
        machine.run_until_idle()
        return rig, stats

    rig, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        Row("all 16 pages eventually accepted", "yes",
            str(rig.machine.udma.accepted), rig.machine.udma.accepted == 16),
        Row("refusals occurred (queue depth 4 < 16 pages)", "> 0",
            str(rig.machine.udma.refused), rig.machine.udma.refused > 0),
        Row("refusals were retried transparently", "retries >= refusals",
            f"{stats.retries} retries", stats.retries >= rig.machine.udma.refused),
        Row("data integrity after refusals", "intact", "checked",
            rig.sink.peek(0, 16 * PAGE) == make_payload(16 * PAGE)[: 16 * PAGE]),
    ]
    print_table("QUEUE: queue-full refusal behaviour", rows)
    assert all(r.ok for r in rows)
