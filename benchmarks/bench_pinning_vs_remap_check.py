"""PIN -- I4: the register check replaces pinning.

Paper target (section 6):

* "Although this scheme has the same effect as page pinning, it is much
  faster.  Pinning requires changing the page table on every DMA, while
  our mechanism requires no kernel action in the common case."

We run the same workload -- N fine-grained sends under concurrent paging
pressure -- on both mechanisms and account the kernel work:

* traditional: pin + unpin cycles on every transfer;
* UDMA: zero kernel cycles per transfer; the remap guard is consulted
  only on the (rare) eviction path.
"""

from __future__ import annotations

from repro.bench import Row, print_table
from repro.bench.workloads import make_payload
from repro.userlib.udma import DeviceRef, MemoryRef

from benchmarks.conftest import SinkRig

PAGE = 4096
TRANSFERS = 50


def run_udma_with_pressure():
    rig = SinkRig(mem_size=24 * PAGE)
    machine = rig.machine
    hog = machine.create_process("hog")
    hog_buf = machine.kernel.syscalls.alloc(hog, 20 * PAGE)
    machine.kernel.scheduler.switch_to(rig.process)
    machine.cpu.write_bytes(rig.buffer, make_payload(PAGE))

    guard = machine.kernel.remap_guard
    checks_before = guard.checks
    for i in range(TRANSFERS):
        rig.udma.transfer(MemoryRef(rig.buffer), DeviceRef(rig.grant), 512)
        if i % 25 == 24:  # occasional paging pressure
            machine.kernel.scheduler.switch_to(hog)
            for j in range(20):
                machine.cpu.store(hog_buf + j * PAGE, i)
            machine.kernel.scheduler.switch_to(rig.process)
    machine.run_until_idle()
    guard_checks = guard.checks - checks_before
    guard_cycles = guard_checks * machine.costs.remap_check_cycles
    return rig, guard_checks, guard_cycles


def run_traditional_with_pressure():
    rig = SinkRig(mem_size=24 * PAGE)
    machine = rig.machine
    hog = machine.create_process("hog")
    hog_buf = machine.kernel.syscalls.alloc(hog, 20 * PAGE)
    machine.kernel.scheduler.switch_to(rig.process)
    machine.cpu.write_bytes(rig.buffer, make_payload(PAGE))

    for i in range(TRANSFERS):
        machine.kernel.syscalls.dma(
            rig.process, "sink", 0, rig.buffer, 512, to_device=True
        )
        if i % 25 == 24:
            machine.kernel.scheduler.switch_to(hog)
            for j in range(20):
                machine.cpu.store(hog_buf + j * PAGE, i)
            machine.kernel.scheduler.switch_to(rig.process)
    pins = machine.kernel.syscalls.pages_pinned
    pin_cycles = pins * (
        machine.costs.pin_page_cycles + machine.costs.unpin_page_cycles
    )
    return rig, pins, pin_cycles


def test_pinning_vs_remap_check(benchmark):
    (udma_rig, guard_checks, guard_cycles), (trad_rig, pins, pin_cycles) = (
        benchmark.pedantic(
            lambda: (run_udma_with_pressure(), run_traditional_with_pressure()),
            rounds=1,
            iterations=1,
        )
    )
    per_transfer_trad = pin_cycles / TRANSFERS
    per_transfer_udma = guard_cycles / TRANSFERS

    rows = [
        Row("pin/unpin operations (traditional)", "1+ per DMA",
            f"{pins} pins / {TRANSFERS} DMAs", pins >= TRANSFERS),
        Row("kernel pin cycles per DMA (traditional)", "every transfer pays",
            f"{per_transfer_trad:.0f} cycles", per_transfer_trad > 100),
        Row("I4 guard checks (UDMA)", "only on eviction",
            f"{guard_checks} checks / {TRANSFERS} DMAs",
            guard_checks < TRANSFERS),
        Row("kernel cycles per DMA (UDMA common case)", "~0",
            f"{per_transfer_udma:.0f} cycles",
            per_transfer_udma < per_transfer_trad / 2),
        Row("evictions redirected away from active pages", ">= 0 (I4 held)",
            str(udma_rig.machine.kernel.vm.evictions_redirected), None),
    ]
    print_table(
        "PIN: per-DMA pinning vs the I4 register check (section 6)",
        rows,
        notes=[
            "the guard is consulted only when the page-replacement path "
            "wants a victim; transfers themselves never enter the kernel",
        ],
    )
    assert all(r.ok in (True, None) for r in rows)
