"""PIN -- I4: the register check replaces pinning (now three-way).

Paper target (section 6):

* "Although this scheme has the same effect as page pinning, it is much
  faster.  Pinning requires changing the page table on every DMA, while
  our mechanism requires no kernel action in the common case."

We run the same workload -- N fine-grained sends under concurrent paging
pressure -- on all three residency disciplines and account the kernel
work:

* traditional: pin + unpin cycles on every transfer;
* UDMA: zero kernel cycles per transfer; the remap guard is consulted
  only on the (rare) eviction path;
* IOMMU + fault-and-resume: no pinning at all -- the receive buffer
  stays pageable; the first touch of each cold page parks and pays one
  fault service, everything after that is an IOTLB hit.  The kernel
  cost is amortised per *page*, not per transfer.
"""

from __future__ import annotations

from repro.bench import Row, print_table
from repro.bench.workloads import make_payload
from repro.config import MachineConfig
from repro.machine import Machine
from repro.net.packet import Packet, pack_virtual
from repro.userlib.udma import DeviceRef, MemoryRef

from benchmarks.conftest import SinkRig

PAGE = 4096
TRANSFERS = 50
IOMMU_PAGES = 8


class _BenchNic:
    """Minimal completion surface so the IOMMU can replay into memory."""

    def __init__(self, machine):
        self.machine = machine
        self.reliability = None
        self.on_receive = []
        self.delivered = 0
        self.failed = 0

    def complete_parked(self, parked, paddr):
        self.machine.physmem.write(paddr, parked.payload)
        self.delivered += 1

    def abort_parked(self, parked, reason):
        self.failed += 1


def run_iommu_fault_resume():
    """Receive side of the virtual-address tier: cold, pageable buffer."""
    machine = Machine(config=MachineConfig(mem_size=24 * PAGE, iommu=True))
    proc = machine.create_process("rx")
    buf = machine.kernel.syscalls.alloc(proc, IOMMU_PAGES * PAGE)
    base = buf // PAGE
    for i in range(IOMMU_PAGES):
        machine.iommu.register_window(proc.asid, base + i, writable=True)

    nic = _BenchNic(machine)
    payload = make_payload(512)
    stall_cycles = 0
    for i in range(TRANSFERS):
        vaddr = buf + (i % IOMMU_PAGES) * PAGE + (i // IOMMU_PAGES) * 512
        packet = Packet(
            src_node=0,
            dst_node=0,
            dst_paddr=pack_virtual(proc.asid, vaddr),
            payload=payload,
            seq=i,
        )
        verdict = machine.iommu.receive(nic, packet)
        if verdict.kind == "deliver":
            machine.physmem.write(verdict.paddr, payload)
            stall_cycles += verdict.stall
        machine.clock.run_until_idle()  # let parked pages fault-service
    io = machine.iommu
    fault_cycles = io.faults_parked * machine.costs.iommu_fault_service_cycles
    return machine, fault_cycles + stall_cycles


def run_udma_with_pressure():
    rig = SinkRig(mem_size=24 * PAGE)
    machine = rig.machine
    hog = machine.create_process("hog")
    hog_buf = machine.kernel.syscalls.alloc(hog, 20 * PAGE)
    machine.kernel.scheduler.switch_to(rig.process)
    machine.cpu.write_bytes(rig.buffer, make_payload(PAGE))

    guard = machine.kernel.remap_guard
    checks_before = guard.checks
    for i in range(TRANSFERS):
        rig.udma.transfer(MemoryRef(rig.buffer), DeviceRef(rig.grant), 512)
        if i % 25 == 24:  # occasional paging pressure
            machine.kernel.scheduler.switch_to(hog)
            for j in range(20):
                machine.cpu.store(hog_buf + j * PAGE, i)
            machine.kernel.scheduler.switch_to(rig.process)
    machine.run_until_idle()
    guard_checks = guard.checks - checks_before
    guard_cycles = guard_checks * machine.costs.remap_check_cycles
    return rig, guard_checks, guard_cycles


def run_traditional_with_pressure():
    rig = SinkRig(mem_size=24 * PAGE)
    machine = rig.machine
    hog = machine.create_process("hog")
    hog_buf = machine.kernel.syscalls.alloc(hog, 20 * PAGE)
    machine.kernel.scheduler.switch_to(rig.process)
    machine.cpu.write_bytes(rig.buffer, make_payload(PAGE))

    for i in range(TRANSFERS):
        machine.kernel.syscalls.dma(
            rig.process, "sink", 0, rig.buffer, 512, to_device=True
        )
        if i % 25 == 24:
            machine.kernel.scheduler.switch_to(hog)
            for j in range(20):
                machine.cpu.store(hog_buf + j * PAGE, i)
            machine.kernel.scheduler.switch_to(rig.process)
    pins = machine.kernel.syscalls.pages_pinned
    pin_cycles = pins * (
        machine.costs.pin_page_cycles + machine.costs.unpin_page_cycles
    )
    return rig, pins, pin_cycles


def test_pinning_vs_remap_check(benchmark):
    results = benchmark.pedantic(
        lambda: (
            run_udma_with_pressure(),
            run_traditional_with_pressure(),
            run_iommu_fault_resume(),
        ),
        rounds=1,
        iterations=1,
    )
    (udma_rig, guard_checks, guard_cycles) = results[0]
    (trad_rig, pins, pin_cycles) = results[1]
    (io_machine, io_cycles) = results[2]
    per_transfer_trad = pin_cycles / TRANSFERS
    per_transfer_udma = guard_cycles / TRANSFERS
    per_transfer_io = io_cycles / TRANSFERS
    io = io_machine.iommu

    rows = [
        Row("pin/unpin operations (traditional)", "1+ per DMA",
            f"{pins} pins / {TRANSFERS} DMAs", pins >= TRANSFERS),
        Row("kernel pin cycles per DMA (traditional)", "every transfer pays",
            f"{per_transfer_trad:.0f} cycles", per_transfer_trad > 100),
        Row("I4 guard checks (UDMA)", "only on eviction",
            f"{guard_checks} checks / {TRANSFERS} DMAs",
            guard_checks < TRANSFERS),
        Row("kernel cycles per DMA (UDMA common case)", "~0",
            f"{per_transfer_udma:.0f} cycles",
            per_transfer_udma < per_transfer_trad / 2),
        Row("IOMMU fault services", "once per cold page",
            f"{io.faults_parked} parks / {TRANSFERS} DMAs",
            io.faults_parked == IOMMU_PAGES),
        Row("kernel+walk cycles per DMA (IOMMU)", "amortised per page",
            f"{per_transfer_io:.0f} cycles",
            per_transfer_udma <= per_transfer_io < per_transfer_trad),
        Row("IOMMU delivery ledger", "exact",
            f"{io.delivered_direct}+{io.delivered_replayed} delivered, "
            f"{io.aborted} aborted / {io.translations} translations",
            io.delivered_direct + io.delivered_replayed + io.aborted
            == io.translations and io.aborted == 0),
        Row("evictions redirected away from active pages", ">= 0 (I4 held)",
            str(udma_rig.machine.kernel.vm.evictions_redirected), None),
    ]
    print_table(
        "PIN: pinning vs I4 register check vs IOMMU fault-and-resume",
        rows,
        notes=[
            "the guard is consulted only when the page-replacement path "
            "wants a victim; transfers themselves never enter the kernel",
            "the IOMMU arm keeps the receive buffer pageable: no pins, "
            "one fault service per cold page, IOTLB hits afterwards -- "
            "dearer than the register check, far cheaper than pinning",
        ],
    )
    assert all(r.ok in (True, None) for r in rows)
