"""PROXY -- section 5: the two PROXY() implementations are equivalent.

Paper target:

* "the PROXY and PROXY^-1 functions amount to nothing more than flipping
  the high order address bit.  A somewhat more general scheme is to lay
  out the memory proxy space at some fixed offset ... and add or subtract
  that offset for translation."

Both schemes must yield *identical* system behaviour (same simulated
cycle counts, same data movement) -- translation scheme is invisible
above the address map.  This bench also times the two translation
functions themselves under pytest-benchmark.
"""

from __future__ import annotations

from repro.bench import Row, print_table
from repro.bench.workloads import make_payload
from repro.mem.layout import Layout, ProxyScheme
from repro.userlib.udma import DeviceRef, MemoryRef
from repro.config import MachineConfig

from benchmarks.conftest import SinkRig

PAGE = 4096


def run_workload(scheme, protection=None):
    """The same transfer mix on a machine with the given PROXY scheme."""
    from repro import Machine
    from repro.devices import SinkDevice
    from repro.userlib import UdmaUser

    machine = Machine(
                  config=MachineConfig(
                      mem_size=1 << 20,
                      scheme=scheme,
                      protection=protection,
                  ),
              )
    sink = SinkDevice("sink", size=1 << 16)
    machine.attach_device(sink)
    p = machine.create_process("app")
    buf = machine.kernel.syscalls.alloc(p, 8 * PAGE)
    grant = machine.kernel.syscalls.grant_device_proxy(p, "sink")
    udma = UdmaUser(machine, p)

    data = make_payload(2 * PAGE)
    machine.cpu.write_bytes(buf, data)
    for size in (64, 512, PAGE, 2 * PAGE):
        udma.transfer(MemoryRef(buf), DeviceRef(grant), size)
        machine.run_until_idle()
    # Device-to-memory direction too.
    machine.cpu.store(buf + 4 * PAGE, 0)
    udma.transfer(DeviceRef(grant), MemoryRef(buf + 4 * PAGE), 256)
    machine.run_until_idle()
    return machine.clock.now, sink.peek(0, 2 * PAGE), machine.cpu.charged_cycles


def test_proxy_schemes_behave_identically(benchmark):
    (hb_cycles, hb_data, hb_cpu), (off_cycles, off_data, off_cpu) = (
        benchmark.pedantic(
            lambda: (run_workload(ProxyScheme.HIGH_BIT),
                     run_workload(ProxyScheme.OFFSET)),
            rounds=1,
            iterations=1,
        )
    )
    rows = [
        Row("simulated cycles (high-bit flip)", "equal", str(hb_cycles), None),
        Row("simulated cycles (fixed offset)", "equal", str(off_cycles),
            hb_cycles == off_cycles),
        Row("CPU cycles charged", "equal", f"{hb_cpu} vs {off_cpu}",
            hb_cpu == off_cpu),
        Row("data movement identical", "bit-for-bit", "checked",
            hb_data == off_data),
    ]
    print_table(
        "PROXY: high-bit-flip vs fixed-offset PROXY() (section 5)",
        rows,
        notes=["the translation scheme is architecturally invisible, as "
               "the paper asserts"],
    )
    assert all(r.ok in (True, None) for r in rows)


def test_protection_backends_outcome_equivalent(benchmark):
    """PROXY-B: the protection *scheme* is priced, not the outcome.

    Rerun the scheme-equivalence workload once per protection backend.
    The proxy backend must be cycle-identical to the default machine;
    captable/handler must move the same bytes with the same CPU charge,
    paying only their per-initiation toll on the clock.
    """
    from repro.protection import BACKEND_NAMES, backend_class

    def run():
        return {
            name: run_workload(ProxyScheme.HIGH_BIT, protection=name)
            for name in BACKEND_NAMES
        }

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    base_cycles, base_data, base_cpu = run_workload(ProxyScheme.HIGH_BIT)
    proxy_cycles, proxy_data, proxy_cpu = measured["proxy"]
    rows = [
        Row("proxy backend simulated cycles", "== default machine",
            f"{proxy_cycles} vs {base_cycles}", proxy_cycles == base_cycles),
        Row("proxy backend CPU cycles", "== default machine",
            f"{proxy_cpu} vs {base_cpu}", proxy_cpu == base_cpu),
        Row("proxy backend data", "bit-for-bit", "checked",
            proxy_data == base_data),
    ]
    for name in BACKEND_NAMES[1:]:
        cycles, data, cpu = measured[name]
        toll = backend_class(name).initiation_check_cycles
        rows.append(
            Row(f"{name} data movement", "bit-for-bit", "checked",
                data == base_data)
        )
        rows.append(
            Row(f"{name} CPU cycles charged", "== proxy", f"{cpu}",
                cpu == base_cpu)
        )
        rows.append(
            Row(f"{name} clock vs proxy", f"+{toll}/initiation",
                f"+{cycles - base_cycles} cycles total",
                cycles > base_cycles)
        )
    print_table(
        "PROXY-B: protection backends are outcome-equivalent (PR-8 tentpole)",
        rows,
        notes=["the protection decision is pluggable; only its price is "
               "backend-specific (see docs/PROTECTION.md)"],
    )
    assert all(r.ok for r in rows)


def test_proxy_translation_speed_high_bit(benchmark):
    """Host-time microbenchmark of PROXY/PROXY^-1 (high-bit flip)."""
    layout = Layout(mem_size=1 << 20, scheme=ProxyScheme.HIGH_BIT)

    def translate_many():
        total = 0
        for addr in range(0, 1 << 20, 4096):
            total += layout.unproxy(layout.proxy(addr))
        return total

    assert benchmark(translate_many) > 0


def test_proxy_translation_speed_offset(benchmark):
    """Host-time microbenchmark of PROXY/PROXY^-1 (fixed offset)."""
    layout = Layout(mem_size=1 << 20, scheme=ProxyScheme.OFFSET)

    def translate_many():
        total = 0
        for addr in range(0, 1 << 20, 4096):
            total += layout.unproxy(layout.proxy(addr))
        return total

    assert benchmark(translate_many) > 0
