"""Scale benchmarks: the traffic engine at 10^6 messages per run.

Each scenario drives :func:`repro.traffic.run_scenario` -- a seeded
pattern (incast, all-to-all, uniform, hotspot) over N nodes x M tenants
-- and records host-side messages/s and MB/s.  The gated scenarios also
run a *disabled* pass (pooling and pipelining off) so the committed
baseline carries the measured fast-lane speedup, not a claimed one.

Everything simulated (cycles, events, deliveries, counters) is a pure
function of the scenario parameters; only ``host_seconds`` and the rates
derived from it vary between machines.  ``run_bench.py --scale`` wraps
this module with the JSON/gate plumbing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.traffic import run_scenario


@dataclass
class ScaleResult:
    """One scenario's enabled run plus its optional disabled baseline."""

    enabled: dict
    disabled: Optional[dict] = None

    @property
    def speedup(self) -> Optional[float]:
        if self.disabled is None:
            return None
        slow = self.disabled["messages_per_sec"]
        return self.enabled["messages_per_sec"] / slow if slow else None

    def as_dict(self) -> dict:
        out = {"enabled": self.enabled}
        if self.disabled is not None:
            out["disabled"] = self.disabled
            out["speedup"] = self.speedup
        return out


@dataclass
class ScaleSpec:
    """A registered scale scenario: shared kwargs + full/quick overrides."""

    name: str
    kwargs: dict
    full: dict
    quick: dict
    baseline: bool = True  # also measure with pooling/pipelining off
    tags: List[str] = field(default_factory=list)

    def build_kwargs(self, quick: bool) -> dict:
        merged = dict(self.kwargs)
        merged.update(self.quick if quick else self.full)
        return merged


SCALE_SCENARIOS: "Dict[str, ScaleSpec]" = {}


def _register(spec: ScaleSpec) -> None:
    SCALE_SCENARIOS[spec.name] = spec


# The two gated million-message collectives.  Single-tenant, because a
# second tenant forces a context switch per send, which invalidates the
# TLB and turns every message down the slow path -- realistic, but a
# different experiment (the multi-tenant scenarios below cover it).
_register(ScaleSpec(
    name="incast_64x1",
    kwargs={"pattern": "incast", "num_nodes": 64, "tenants_per_node": 1,
            "msg_bytes": 512, "seed": 7, "gap_cycles": 96_000},
    full={"messages": 1_000_000},
    quick={"messages": 20_000},
    tags=["gated", "million"],
))
_register(ScaleSpec(
    name="all_to_all_32x1",
    kwargs={"pattern": "all_to_all", "num_nodes": 32, "tenants_per_node": 1,
            "msg_bytes": 512, "seed": 7, "gap_cycles": 4_000},
    full={"messages": 1_000_000},
    quick={"messages": 20_000},
    tags=["gated", "million"],
))
# NIPT-pressure extras: multi-tenant placements with channel churn, so
# the NIC page table cycles through its free list under eviction.  Not
# baselined (the fast lane is mostly cold here by design) but recorded,
# so capacity/eviction behaviour has a committed trajectory too.
_register(ScaleSpec(
    name="uniform_16x4_churn",
    kwargs={"pattern": "uniform", "num_nodes": 16, "tenants_per_node": 4,
            "msg_bytes": 512, "seed": 11, "degree": 4, "gap_cycles": 8_000,
            "churn_every": 200},
    full={"messages": 120_000},
    quick={"messages": 6_000},
    baseline=False,
    tags=["tenants", "churn"],
))
_register(ScaleSpec(
    name="hotspot_32x2",
    kwargs={"pattern": "hotspot", "num_nodes": 32, "tenants_per_node": 2,
            "msg_bytes": 512, "seed": 13, "degree": 6, "hot_permille": 400,
            "gap_cycles": 24_000},
    full={"messages": 120_000},
    quick={"messages": 6_000},
    baseline=False,
    tags=["tenants"],
))


def run_scale_scenario(
    spec: ScaleSpec, quick: bool = False, baseline: Optional[bool] = None
) -> ScaleResult:
    """Run one spec (enabled, and its disabled baseline when requested)."""
    kwargs = spec.build_kwargs(quick)
    want_baseline = spec.baseline if baseline is None else baseline
    enabled = run_scenario(spec.name, **kwargs).as_dict()
    disabled = None
    if want_baseline:
        disabled = run_scenario(
            spec.name, pooling=False, pipelining=False, **kwargs
        ).as_dict()
    return ScaleResult(enabled=enabled, disabled=disabled)


def run_scale(
    quick: bool = False,
    names: Optional[List[str]] = None,
    baseline: Optional[bool] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> "Dict[str, ScaleResult]":
    """Run the registered scale scenarios (all, or a named subset).

    No best-of-N here: a million-message pass is long enough that the
    rate is its own average, and re-running it triples an already long
    wall-clock.  The gate's tolerance absorbs the residual noise.
    """
    results: "Dict[str, ScaleResult]" = {}
    for name, spec in SCALE_SCENARIOS.items():
        if names is not None and name not in names:
            continue
        if progress is not None:
            progress(f"scale: {name} ...")
        t0 = time.perf_counter()
        results[name] = run_scale_scenario(spec, quick=quick, baseline=baseline)
        if progress is not None:
            progress(f"scale: {name} done in {time.perf_counter() - t0:.1f}s")
    return results


def check_identity(results: "Dict[str, ScaleResult]") -> List[str]:
    """Cross-check: enabled vs disabled simulated outcomes must match.

    The fast lane's contract is host-only speed; any divergence in
    simulated cycles, events, deliveries or the translation mix is a
    correctness bug, so the bench refuses to report a speedup over a
    different simulation.
    """
    failures = []
    keys = ("sim_cycles", "events", "messages", "delivered", "retries",
            "churns", "xlat_hit_rate")
    for name, result in results.items():
        if result.disabled is None:
            continue
        for key in keys:
            a, b = result.enabled[key], result.disabled[key]
            if a != b:
                failures.append(
                    f"{name}: {key} diverged with fast lane off "
                    f"(enabled {a!r} != disabled {b!r})"
                )
    return failures


def format_scale(results: "Dict[str, ScaleResult]") -> str:
    header = (
        f"{'scenario':<20} {'nodes':>5} {'ten':>3} {'messages':>9} "
        f"{'retries':>8} {'xlat%':>6} {'msg/s':>10} {'MB/s':>8} {'speedup':>8}"
    )
    lines = [header, "-" * len(header)]
    for name, result in results.items():
        e = result.enabled
        speedup = result.speedup
        tail = f"{speedup:>7.2f}x" if speedup is not None else f"{'--':>8}"
        lines.append(
            f"{name:<20} {e['num_nodes']:>5} {e['tenants_per_node']:>3} "
            f"{e['messages']:>9} {e['retries']:>8} "
            f"{e['xlat_hit_rate'] * 100:>5.1f}% "
            f"{e['messages_per_sec']:>10.0f} {e['host_mb_per_sec']:>8.2f} "
            + tail
        )
    return "\n".join(lines)
