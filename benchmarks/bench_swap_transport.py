"""Supplementary: kernel paging I/O transports, including the §7 system queue.

"Implementing just two queues, with the higher priority queue reserved
for the system, would certainly be useful" (section 7).  This bench runs
the same paging-heavy workload with three backing-store transports and
checks the structural expectations:

* the magic dict store (flat charge) differs from both disk transports;
* both disk transports move identical data and survive invariant checks;
* on the system-queue transport, kernel page-outs overtake a queued user
  backlog (priority inversion avoided).
"""

from __future__ import annotations

from repro import Machine, MachineConfig
from repro.bench import Row, print_table
from repro.devices import SinkDevice
from repro.kernel.invariants import InvariantChecker

PAGE = 4096


def run_paging(swap, queue_depth=None):
    machine = Machine(
                  config=MachineConfig(
                      mem_size=16 * PAGE,
                      bounce_frames=4,
                      swap=swap,
                      queue_depth=queue_depth,
                  ),
              )
    machine.attach_device(SinkDevice("sink", size=1 << 14))
    p = machine.create_process("app")
    va = machine.kernel.syscalls.alloc(p, 14 * PAGE)
    start = machine.clock.now
    for round_no in range(3):
        for i in range(14):
            machine.cpu.store(va + i * PAGE, round_no * 100 + i)
    elapsed = machine.clock.now - start
    # Verify data survived all the round trips.
    for i in range(14):
        assert machine.cpu.load(va + i * PAGE) == 200 + i
    InvariantChecker(machine.kernel).check_all()
    return elapsed, machine.kernel.vm.pages_out


def test_swap_transports(benchmark):
    results = benchmark.pedantic(
        lambda: {
            "dict": run_paging("dict"),
            "disk": run_paging("disk"),
            "system-queue": run_paging("disk-system-queue", queue_depth=4),
        },
        rounds=1,
        iterations=1,
    )
    (dict_t, dict_p) = results["dict"]
    (disk_t, disk_p) = results["disk"]
    (sq_t, sq_p) = results["system-queue"]
    rows = [
        Row("pages evicted (all transports)", "equal workload",
            f"{dict_p}/{disk_p}/{sq_p}", dict_p == disk_p == sq_p > 0),
        Row("dict vs disk timing", "differs (flat charge vs real device)",
            f"{dict_t} vs {disk_t} cycles", dict_t != disk_t),
        Row("disk vs system-queue timing", "comparable (same device)",
            f"{disk_t} vs {sq_t} cycles",
            abs(disk_t - sq_t) < max(disk_t, sq_t) * 0.5),
        Row("data integrity + I1-I4", "hold on all transports", "checked",
            True),
    ]
    print_table(
        "SWAP (supplementary): kernel paging transports incl. the §7 system queue",
        rows,
        notes=[
            "the system-queue transport exercises the paper's two-priority "
            "suggestion: kernel paging rides the reserved high-priority "
            "queue of the shared UDMA device",
        ],
    )
    assert all(r.ok for r in rows)
