"""Shared rigs for the paper-reproduction benches.

Every bench both (a) times the simulator under pytest-benchmark (host
wall-clock of the simulation code) and (b) prints a paper-vs-measured
table of *simulated* metrics -- cycles, microseconds, MB/s on the
simulated 60 MHz node -- which is what reproduces the paper's evaluation.
Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
tables live; they are also asserted, so a silently wrong shape fails).
"""

from __future__ import annotations

import pytest

from repro import ClusterConfig, Machine, MachineConfig, ShrimpCluster
from repro.devices import SinkDevice
from repro.userlib import Receiver, Sender, UdmaUser

PAGE = 4096


class ClusterRig:
    """A 2-node cluster with one big channel, rebuilt per bench module."""

    def __init__(self, queue_depth=None, mem_size=1 << 21, channel_bytes=1 << 19):
        self.cluster = ShrimpCluster(
                           config=ClusterConfig(
                               num_nodes=2,
                               mem_size=mem_size,
                               queue_depth=queue_depth,
                           ),
                       )
        self.rx = self.cluster.node(1).create_process("rx")
        buf = self.cluster.node(1).kernel.syscalls.alloc(self.rx, channel_bytes)
        self.channel = self.cluster.create_channel(0, 1, self.rx, buf, channel_bytes)
        self.tx = self.cluster.node(0).create_process("tx")
        self.sender = Sender(self.cluster, self.tx, self.channel)
        self.receiver = Receiver(self.cluster, self.rx, self.channel)
        self.costs = self.cluster.costs


class SinkRig:
    """A single node with a sink device, buffer, grant and runtime."""

    def __init__(self, queue_depth=None, mem_size=1 << 21, sink_bytes=1 << 18,
                 costs=None, buffer_bytes=1 << 16, protection=None):
        self.machine = Machine(
                           config=MachineConfig(
                               costs=costs,
                               mem_size=mem_size,
                               queue_depth=queue_depth,
                               protection=protection,
                           ),
                       )
        self.sink = SinkDevice("sink", size=sink_bytes)
        self.machine.attach_device(self.sink)
        self.process = self.machine.create_process("app")
        self.buffer = self.machine.kernel.syscalls.alloc(self.process, buffer_bytes)
        self.grant = self.machine.kernel.syscalls.grant_device_proxy(
            self.process, "sink"
        )
        self.udma = UdmaUser(self.machine, self.process)
        self.costs = self.machine.costs


@pytest.fixture
def cluster_rig():
    return ClusterRig()


@pytest.fixture
def queued_cluster_rig():
    return ClusterRig(queue_depth=16)


@pytest.fixture
def sink_rig():
    return SinkRig()
