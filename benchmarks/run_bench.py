"""Host-throughput bench runner and regression gate.

Record a trajectory point::

    python benchmarks/run_bench.py --json BENCH_core.json

CI regression gate (tier-2)::

    python benchmarks/run_bench.py --quick --check BENCH_core.json

``--check`` exits non-zero if any scenario's host MB/s falls more than
``--tolerance`` (default 30%) below the committed baseline.  The wide
tolerance absorbs CI machine noise; a real regression (a copy added back
to the data plane, an O(n) scan in the event queue) is far larger.  See
``docs/PERFORMANCE.md`` for the JSON schema and how to refresh baselines.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
for path in (os.path.join(_ROOT, "src"), _HERE):
    if path not in sys.path:
        sys.path.insert(0, path)

from bench_host_throughput import (  # noqa: E402
    HostResult,
    format_obs_overhead,
    format_reliability_overhead,
    format_results,
    format_scaling,
    run_all,
    run_obs_overhead,
    run_reliability_overhead,
    run_scaling_sweep,
    transfer_latency_profile,
)

SCHEMA = "shrimp-bench-host-throughput/1"
SCALE_SCHEMA = "shrimp-bench-scale/1"


def results_to_json(results, quick: bool) -> dict:
    return {
        "schema": SCHEMA,
        "quick": quick,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scenarios": {name: r.as_dict() for name, r in results.items()},
    }


def scale_results_to_json(results, quick: bool) -> dict:
    """BENCH_scale.json payload.  ``cpu_count`` is recorded so the gate
    can warn (rather than fail) when the baseline came from a machine
    with a different core count -- host msg/s is not comparable then."""
    return {
        "schema": SCALE_SCHEMA,
        "quick": quick,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "scenarios": {name: r.as_dict() for name, r in results.items()},
    }


def check_scale_against(results, baseline: dict, tolerance: float) -> "tuple[list, list]":
    """Gate scale results against a committed BENCH_scale.json.

    Returns ``(failures, warnings)``.  Simulated fields (cycles, events,
    deliveries) must match the baseline *exactly* when the workload
    matches -- they are deterministic -- while host messages/s gets the
    tier-2-style tolerance.  A differing ``cpu_count`` downgrades rate
    failures to warnings: the committed numbers came from different
    hardware, so a slowdown proves nothing.
    """
    failures, warnings = [], []
    same_cpu = baseline.get("cpu_count") == os.cpu_count()
    if not same_cpu:
        warnings.append(
            f"baseline cpu_count={baseline.get('cpu_count')} != host "
            f"cpu_count={os.cpu_count()}; host-rate regressions are "
            f"reported as warnings only"
        )
    base_scenarios = baseline.get("scenarios", {})
    for name, result in results.items():
        base = base_scenarios.get(name)
        if base is None:
            continue  # new scenario; nothing to regress against
        base_enabled = base.get("enabled", {})
        if base_enabled.get("messages") == result.enabled.get("messages"):
            # Same workload: the simulation is deterministic, so these
            # must be bit-identical across machines and Python builds.
            for key in ("sim_cycles", "events", "delivered", "retries",
                        "churns"):
                if base_enabled.get(key) != result.enabled.get(key):
                    failures.append(
                        f"{name}: simulated {key} diverged from baseline "
                        f"({result.enabled.get(key)!r} != "
                        f"{base_enabled.get(key)!r}) -- determinism break"
                    )
        base_rate = base_enabled.get("messages_per_sec", 0.0)
        rate = result.enabled.get("messages_per_sec", 0.0)
        floor = base_rate * (1.0 - tolerance)
        if base_rate and rate < floor:
            msg = (
                f"{name}: {rate:.0f} msg/s < floor {floor:.0f} "
                f"(baseline {base_rate:.0f} msg/s, "
                f"tolerance {tolerance:.0%})"
            )
            if same_cpu:
                failures.append(msg)
            else:
                warnings.append(msg)
    return failures, warnings


def check_obs_overhead(obs_results, tolerance: float) -> list:
    """Gate: default observability must cost <= ``tolerance`` vs baseline.

    Compares the ``metrics`` mode (the library default every user gets)
    against ``baseline`` (plane fully disabled).  ``spans`` mode is
    reported but not gated -- recording spans is an opt-in debugging
    feature and is allowed to cost more.
    """
    failures = []
    base = obs_results.get("baseline")
    metrics = obs_results.get("metrics")
    if base is None or metrics is None or not base.mb_per_s:
        return ["obs-overhead: missing baseline or metrics measurement"]
    floor = base.mb_per_s * (1.0 - tolerance)
    if metrics.mb_per_s < floor:
        failures.append(
            f"obs-overhead: metrics mode {metrics.mb_per_s:.2f} MB/s < "
            f"floor {floor:.2f} (baseline {base.mb_per_s:.2f} MB/s, "
            f"tolerance {tolerance:.0%})"
        )
    return failures


def check_against(results, baseline: dict, tolerance: float) -> list:
    """Return a list of failure strings (empty = pass)."""
    failures = []
    base_scenarios = baseline.get("scenarios", {})
    for name, result in results.items():
        base = base_scenarios.get(name)
        if base is None:
            continue  # new scenario; nothing to regress against
        floor = base["mb_per_s"] * (1.0 - tolerance)
        if result.mb_per_s < floor:
            failures.append(
                f"{name}: {result.mb_per_s:.2f} MB/s < floor {floor:.2f} "
                f"(baseline {base['mb_per_s']:.2f} MB/s, "
                f"tolerance {tolerance:.0%})"
            )
    return failures


def profile_call(fn, path: str, label: str, top: int = 25) -> object:
    """Run ``fn()`` under cProfile, append its top-``top`` cumulative
    entries to ``path``, and return ``fn``'s result."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    result = profiler.runcall(fn)
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    with open(path, "a") as fh:
        fh.write(f"==== {label} ====\n")
        fh.write(buf.getvalue())
        fh.write("\n")
    return result


def run_scale_mode(args) -> int:
    """The --scale suite: traffic-engine scenarios + BENCH_scale gate."""
    from bench_scale import (
        SCALE_SCENARIOS,
        check_identity,
        format_scale,
        run_scale,
        run_scale_scenario,
    )

    names = None
    if args.scenario:
        unknown = [n for n in args.scenario if n not in SCALE_SCENARIOS]
        if unknown:
            print(f"error: unknown scale scenario(s) {unknown}; choose "
                  f"from {sorted(SCALE_SCENARIOS)}", file=sys.stderr)
            return 2
        names = args.scenario
    baseline_flag = False if args.no_baseline else None

    if args.profile:
        results = {}
        for name, spec in SCALE_SCENARIOS.items():
            if names is not None and name not in names:
                continue
            results[name] = profile_call(
                lambda spec=spec: run_scale_scenario(
                    spec, quick=args.quick, baseline=baseline_flag
                ),
                args.profile, name,
            )
        print(f"profile written to {args.profile}")
    else:
        results = run_scale(
            quick=args.quick, names=names, baseline=baseline_flag,
            progress=lambda msg: print(msg, flush=True),
        )
    print(format_scale(results))

    # The fast lane must not change the simulation: refuse to report or
    # record a speedup over diverging cycles/counters.
    identity_failures = check_identity(results)
    if identity_failures:
        print("FAST-LANE IDENTITY VIOLATION:", file=sys.stderr)
        for failure in identity_failures:
            print(f"  {failure}", file=sys.stderr)
        return 1

    if args.json:
        payload = scale_results_to_json(results, args.quick)
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")

    if args.check:
        try:
            with open(args.check) as fh:
                baseline = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read baseline {args.check}: {exc}",
                  file=sys.stderr)
            return 2
        if baseline.get("schema") != SCALE_SCHEMA:
            print(f"error: {args.check} has schema "
                  f"{baseline.get('schema')!r}, expected {SCALE_SCHEMA!r}",
                  file=sys.stderr)
            return 2
        failures, warnings = check_scale_against(
            results, baseline, args.tolerance
        )
        for warning in warnings:
            print(f"warning: {warning}")
        if failures:
            print("SCALE REGRESSION:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"scale check ok vs {args.check} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH",
                        help="write results to PATH as JSON")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a baseline JSON; exit 1 on "
                             "host-throughput regression")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (CI-friendly)")
    parser.add_argument("--scale", action="store_true",
                        help="run the traffic-engine scale suite "
                             "(bench_scale.py) instead of the core sweep; "
                             "--json/--check then use the "
                             "shrimp-bench-scale schema (BENCH_scale.json)")
    parser.add_argument("--scenario", action="append", metavar="NAME",
                        help="with --scale: run only the named scenario "
                             "(repeatable)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="with --scale: skip the pooling/pipelining-"
                             "disabled baseline passes (faster, but no "
                             "speedup or identity cross-check)")
    parser.add_argument("--profile", metavar="PATH",
                        help="run each scenario under cProfile and append "
                             "the top-25 cumulative entries per scenario "
                             "to PATH")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N host timing (default 3)")
    parser.add_argument("--warm-start", action="store_true",
                        help="build each scenario's world once and fork "
                             "it per repeat (repro.snapshot) instead of "
                             "reconstructing machines; simulated numbers "
                             "are bit-identical either way")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional MB/s drop for --check "
                             "(default 0.30)")
    parser.add_argument("--obs-overhead", action="store_true",
                        help="A/B the observability plane on the udma_send "
                             "path and gate the default (metrics) mode "
                             "against the disabled baseline")
    parser.add_argument("--obs-tolerance", type=float, default=0.02,
                        help="allowed fractional MB/s cost of default "
                             "observability for --obs-overhead "
                             "(default 0.02)")
    parser.add_argument("--reliability-overhead", action="store_true",
                        help="A/B the ack/retransmit transport on the "
                             "ping-pong path at 0%% and 1%% packet loss "
                             "(reported, not gated -- reliability is "
                             "opt-in)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="also run the cluster_mesh_64 shard-scaling "
                             "sweep (worker engine) at 1/2/4/... up to N "
                             "shards and append the scaling table")
    parser.add_argument("--no-sweep", action="store_true",
                        help="skip the scenario sweep (useful with "
                             "--obs-overhead / --reliability-overhead to "
                             "run only the A/B)")
    args = parser.parse_args(argv)

    if args.no_sweep and not (args.obs_overhead or args.reliability_overhead):
        parser.error("--no-sweep without --obs-overhead or "
                     "--reliability-overhead leaves nothing to run")
    if args.no_sweep and (args.check or args.json):
        parser.error("--no-sweep cannot be combined with --check/--json "
                     "(both need the scenario sweep)")
    if args.scale and (args.no_sweep or args.obs_overhead
                       or args.reliability_overhead or args.shards
                       or args.warm_start):
        parser.error("--scale is its own suite; combine it only with "
                     "--quick/--json/--check/--scenario/--no-baseline/"
                     "--profile")
    if (args.scenario or args.no_baseline) and not args.scale:
        parser.error("--scenario/--no-baseline require --scale")

    if args.profile:
        # Fresh file per invocation; profile_call appends per scenario.
        with open(args.profile, "w") as fh:
            fh.write(f"# cProfile top-25 cumulative, "
                     f"{'scale' if args.scale else 'core'} suite, "
                     f"quick={args.quick}\n\n")

    if args.scale:
        return run_scale_mode(args)

    results = {}
    if not args.no_sweep:
        if args.profile:
            # Profiling skews host timing, so run each scenario exactly
            # once under the profiler and report those (not best-of-N).
            from bench_host_throughput import SCENARIOS

            for spec in SCENARIOS.values():
                kwargs = dict(spec.quick if args.quick else spec.full)
                if args.warm_start and spec.warm:
                    kwargs["warm_start"] = True
                results[spec.name] = profile_call(
                    lambda spec=spec, kwargs=kwargs: spec.fn(**kwargs),
                    args.profile, spec.name,
                )
            print(f"profile written to {args.profile}")
        else:
            results = run_all(quick=args.quick, repeats=args.repeats,
                              warm_start=args.warm_start)
        print(format_results(results))

    obs_failures = []
    obs_results = None
    if args.obs_overhead:
        obs_results = run_obs_overhead(quick=args.quick, repeats=args.repeats)
        print()
        print(format_obs_overhead(obs_results))
        latency = transfer_latency_profile()
        print(f"udma transfer latency: p50={latency['p50']} "
              f"p99={latency['p99']} cycles over {latency['count']} transfers")
        obs_failures = check_obs_overhead(obs_results, args.obs_tolerance)

    scaling_results = None
    if args.shards:
        scaling_results = run_scaling_sweep(
            max_shards=args.shards, quick=args.quick, repeats=args.repeats
        )
        print()
        print(format_scaling(scaling_results))

    rel_results = None
    if args.reliability_overhead:
        rel_results = run_reliability_overhead(
            quick=args.quick, repeats=args.repeats
        )
        print()
        print(format_reliability_overhead(rel_results))

    if args.json:
        payload = results_to_json(results, args.quick)
        if obs_results is not None:
            payload["obs_overhead"] = {
                mode: r.as_dict() for mode, r in obs_results.items()
            }
        if rel_results is not None:
            payload["reliability_overhead"] = {
                mode: r.as_dict() for mode, r in rel_results.items()
            }
        if scaling_results is not None:
            payload["scaling"] = {
                str(shards): r.as_dict()
                for shards, r in scaling_results.items()
            }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")

    if args.check:
        try:
            with open(args.check) as fh:
                baseline = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read baseline {args.check}: {exc}",
                  file=sys.stderr)
            return 2
        if baseline.get("schema") != SCHEMA:
            print(f"error: {args.check} has schema "
                  f"{baseline.get('schema')!r}, expected {SCHEMA!r}",
                  file=sys.stderr)
            return 2
        failures = check_against(results, baseline, args.tolerance)
        if failures:
            print("HOST-THROUGHPUT REGRESSION:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"check ok: no scenario regressed more than "
              f"{args.tolerance:.0%} vs {args.check}")

    if obs_failures:
        print("OBSERVABILITY OVERHEAD REGRESSION:", file=sys.stderr)
        for failure in obs_failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    if args.obs_overhead:
        print(f"obs-overhead ok: default observability costs <= "
              f"{args.obs_tolerance:.0%} host MB/s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
