"""Host-throughput bench runner and regression gate.

Record a trajectory point::

    python benchmarks/run_bench.py --json BENCH_core.json

CI regression gate (tier-2)::

    python benchmarks/run_bench.py --quick --check BENCH_core.json

``--check`` exits non-zero if any scenario's host MB/s falls more than
``--tolerance`` (default 30%) below the committed baseline.  The wide
tolerance absorbs CI machine noise; a real regression (a copy added back
to the data plane, an O(n) scan in the event queue) is far larger.  See
``docs/PERFORMANCE.md`` for the JSON schema and how to refresh baselines.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
for path in (os.path.join(_ROOT, "src"), _HERE):
    if path not in sys.path:
        sys.path.insert(0, path)

from bench_host_throughput import (  # noqa: E402
    HostResult,
    format_obs_overhead,
    format_reliability_overhead,
    format_results,
    format_scaling,
    run_all,
    run_obs_overhead,
    run_reliability_overhead,
    run_scaling_sweep,
    transfer_latency_profile,
)

SCHEMA = "shrimp-bench-host-throughput/1"


def results_to_json(results, quick: bool) -> dict:
    return {
        "schema": SCHEMA,
        "quick": quick,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scenarios": {name: r.as_dict() for name, r in results.items()},
    }


def check_obs_overhead(obs_results, tolerance: float) -> list:
    """Gate: default observability must cost <= ``tolerance`` vs baseline.

    Compares the ``metrics`` mode (the library default every user gets)
    against ``baseline`` (plane fully disabled).  ``spans`` mode is
    reported but not gated -- recording spans is an opt-in debugging
    feature and is allowed to cost more.
    """
    failures = []
    base = obs_results.get("baseline")
    metrics = obs_results.get("metrics")
    if base is None or metrics is None or not base.mb_per_s:
        return ["obs-overhead: missing baseline or metrics measurement"]
    floor = base.mb_per_s * (1.0 - tolerance)
    if metrics.mb_per_s < floor:
        failures.append(
            f"obs-overhead: metrics mode {metrics.mb_per_s:.2f} MB/s < "
            f"floor {floor:.2f} (baseline {base.mb_per_s:.2f} MB/s, "
            f"tolerance {tolerance:.0%})"
        )
    return failures


def check_against(results, baseline: dict, tolerance: float) -> list:
    """Return a list of failure strings (empty = pass)."""
    failures = []
    base_scenarios = baseline.get("scenarios", {})
    for name, result in results.items():
        base = base_scenarios.get(name)
        if base is None:
            continue  # new scenario; nothing to regress against
        floor = base["mb_per_s"] * (1.0 - tolerance)
        if result.mb_per_s < floor:
            failures.append(
                f"{name}: {result.mb_per_s:.2f} MB/s < floor {floor:.2f} "
                f"(baseline {base['mb_per_s']:.2f} MB/s, "
                f"tolerance {tolerance:.0%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH",
                        help="write results to PATH as JSON")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a baseline JSON; exit 1 on "
                             "host-throughput regression")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (CI-friendly)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N host timing (default 3)")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional MB/s drop for --check "
                             "(default 0.30)")
    parser.add_argument("--obs-overhead", action="store_true",
                        help="A/B the observability plane on the udma_send "
                             "path and gate the default (metrics) mode "
                             "against the disabled baseline")
    parser.add_argument("--obs-tolerance", type=float, default=0.02,
                        help="allowed fractional MB/s cost of default "
                             "observability for --obs-overhead "
                             "(default 0.02)")
    parser.add_argument("--reliability-overhead", action="store_true",
                        help="A/B the ack/retransmit transport on the "
                             "ping-pong path at 0%% and 1%% packet loss "
                             "(reported, not gated -- reliability is "
                             "opt-in)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="also run the cluster_mesh_64 shard-scaling "
                             "sweep (worker engine) at 1/2/4/... up to N "
                             "shards and append the scaling table")
    parser.add_argument("--no-sweep", action="store_true",
                        help="skip the scenario sweep (useful with "
                             "--obs-overhead / --reliability-overhead to "
                             "run only the A/B)")
    args = parser.parse_args(argv)

    if args.no_sweep and not (args.obs_overhead or args.reliability_overhead):
        parser.error("--no-sweep without --obs-overhead or "
                     "--reliability-overhead leaves nothing to run")
    if args.no_sweep and (args.check or args.json):
        parser.error("--no-sweep cannot be combined with --check/--json "
                     "(both need the scenario sweep)")

    results = {}
    if not args.no_sweep:
        results = run_all(quick=args.quick, repeats=args.repeats)
        print(format_results(results))

    obs_failures = []
    obs_results = None
    if args.obs_overhead:
        obs_results = run_obs_overhead(quick=args.quick, repeats=args.repeats)
        print()
        print(format_obs_overhead(obs_results))
        latency = transfer_latency_profile()
        print(f"udma transfer latency: p50={latency['p50']} "
              f"p99={latency['p99']} cycles over {latency['count']} transfers")
        obs_failures = check_obs_overhead(obs_results, args.obs_tolerance)

    scaling_results = None
    if args.shards:
        scaling_results = run_scaling_sweep(
            max_shards=args.shards, quick=args.quick, repeats=args.repeats
        )
        print()
        print(format_scaling(scaling_results))

    rel_results = None
    if args.reliability_overhead:
        rel_results = run_reliability_overhead(
            quick=args.quick, repeats=args.repeats
        )
        print()
        print(format_reliability_overhead(rel_results))

    if args.json:
        payload = results_to_json(results, args.quick)
        if obs_results is not None:
            payload["obs_overhead"] = {
                mode: r.as_dict() for mode, r in obs_results.items()
            }
        if rel_results is not None:
            payload["reliability_overhead"] = {
                mode: r.as_dict() for mode, r in rel_results.items()
            }
        if scaling_results is not None:
            payload["scaling"] = {
                str(shards): r.as_dict()
                for shards, r in scaling_results.items()
            }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")

    if args.check:
        try:
            with open(args.check) as fh:
                baseline = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read baseline {args.check}: {exc}",
                  file=sys.stderr)
            return 2
        if baseline.get("schema") != SCHEMA:
            print(f"error: {args.check} has schema "
                  f"{baseline.get('schema')!r}, expected {SCHEMA!r}",
                  file=sys.stderr)
            return 2
        failures = check_against(results, baseline, args.tolerance)
        if failures:
            print("HOST-THROUGHPUT REGRESSION:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"check ok: no scenario regressed more than "
              f"{args.tolerance:.0%} vs {args.check}")

    if obs_failures:
        print("OBSERVABILITY OVERHEAD REGRESSION:", file=sys.stderr)
        for failure in obs_failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    if args.obs_overhead:
        print(f"obs-overhead ok: default observability costs <= "
              f"{args.obs_tolerance:.0%} host MB/s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
