#!/usr/bin/env python3
"""Real-time audio streaming: low-overhead refills prevent underruns.

The paper lists "audio and video devices" among UDMA's targets.  Audio is
the cleanest demonstration of why initiation overhead matters even when
bandwidth doesn't: a playback device drains its ring buffer in real time,
so what kills it is not throughput but the *latency and cost of each
refill*.  This example streams the same "song" twice with deliberately
small refill chunks:

* via traditional DMA -- each refill is a syscall costing tens of
  microseconds of CPU, starving a small ring;
* via UDMA -- each refill is two memory references, keeping the ring fed
  with time to spare.

Run:  python examples/audio_streaming.py
"""

from repro import Machine, MachineConfig
from repro.bench import make_payload
from repro.devices import AudioDevice
from repro.userlib import DeviceRef, MemoryRef, UdmaUser

CHUNK = 256          # refill grain (bytes) -- deliberately fine
CHUNKS = 48          # song length = 12 KB
RATE = 0.18          # bytes consumed per cycle: one chunk lasts ~1.4k cycles
RING = 512           # tiny ring: two chunks of headroom


def stream(machine, refill):
    """Play the song, refilling with ``refill(position, nbytes)``."""
    audio = machine.udma.device("audio")
    song = make_payload(CHUNK * CHUNKS)
    position = 0
    for chunk in range(CHUNKS):
        # Wait (spinning) until the ring has room for the next chunk.
        guard = 0
        while audio.buffered_bytes + CHUNK > RING:
            machine.cpu.execute(50)
            guard += 1
            assert guard < 100_000, "ring never drained"
        refill(position, CHUNK)
        position += CHUNK
        if chunk == 1:
            audio.play()
    machine.run_until_idle()
    # Drain the tail, then pause *before* the stream runs dry so the
    # inevitable end-of-song silence is not miscounted as an underrun.
    while audio.bytes_played < len(song):
        remaining = audio.buffered_bytes
        machine.clock.advance(max(1, int(remaining / RATE / 2)))
    audio.pause()
    assert audio.played_data() == song
    return audio


def build(label):
    machine = Machine(config=MachineConfig(mem_size=1 << 20))
    machine.attach_device(AudioDevice(
        "audio", ring_bytes=RING, bytes_per_cycle=RATE))
    process = machine.create_process(label)
    buffer = machine.kernel.syscalls.alloc(process, CHUNK * CHUNKS)
    machine.cpu.write_bytes(buffer, make_payload(CHUNK * CHUNKS))
    return machine, process, buffer


def main() -> None:
    # --- traditional DMA refills ------------------------------------------
    machine, process, buffer = build("syscall-player")
    syscalls = machine.kernel.syscalls

    def refill_traditional(position, nbytes):
        syscalls.dma(process, "audio", position, buffer + position,
                     nbytes, to_device=True)

    audio_trad = stream(machine, refill_traditional)

    # --- UDMA refills ------------------------------------------------------
    machine, process, buffer = build("udma-player")
    grant = machine.kernel.syscalls.grant_device_proxy(process, "audio")
    udma = UdmaUser(machine, process)

    def refill_udma(position, nbytes):
        udma.transfer(MemoryRef(buffer + position),
                      DeviceRef(grant + position), nbytes)

    audio_udma = stream(machine, refill_udma)

    us = machine.costs.cycles_to_us
    print(f"streaming {CHUNK * CHUNKS} bytes in {CHUNK}-byte refills "
          f"through a {RING}-byte ring:")
    print(f"  traditional DMA: {audio_trad.underruns:3d} underruns "
          f"(each refill costs a ~{us(machine.costs.traditional_dma_overhead_cycles(1)):.0f} us syscall)")
    print(f"  UDMA:            {audio_udma.underruns:3d} underruns "
          f"(each refill costs ~{us(machine.costs.udma_initiation_cycles):.1f} us)")
    assert audio_udma.underruns <= audio_trad.underruns
    print("\nBoth streams played the full song correctly; the difference is "
          "how often the speaker went hungry while the kernel worked.")
    print("audio example OK")


if __name__ == "__main__":
    main()
