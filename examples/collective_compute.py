#!/usr/bin/env python3
"""Distributed computation with user-level collectives.

The paper's goal -- communication cheap enough for fine-grained
parallelism -- is what makes bulk-synchronous computation on a
multicomputer practical.  This example runs a small distributed dot
product on four SHRIMP nodes:

1. the root broadcasts one operand vector;
2. every rank computes its partial dot product over its slice;
3. a reduce sums the partials at the root;
4. a barrier closes the step.

Every message underneath is user-level UDMA; after setup, the kernels on
all four nodes are never entered again.

Run:  python examples/collective_compute.py
"""

import struct

from repro import ClusterConfig, ShrimpCluster
from repro.userlib import CollectiveGroup

N = 64          # vector length
RANKS = 4
SLICE = N // RANKS


def main() -> None:
    cluster = ShrimpCluster(
                  config=ClusterConfig(num_nodes=RANKS, mem_size=1 << 21),
              )
    procs = [cluster.node(i).create_process(f"rank{i}") for i in range(RANKS)]
    group = CollectiveGroup(cluster, procs, slot_bytes=4096)
    print(f"{RANKS} ranks, full-mesh channels wired "
          f"({RANKS * (RANKS - 1)} deliberate-update channels)\n")

    # Rank r's local slice of vector B lives only on rank r.
    vector_a = [i % 7 - 3 for i in range(N)]
    slices_b = [
        [(r * SLICE + i) % 5 - 2 for i in range(SLICE)] for r in range(RANKS)
    ]

    # --- 1. broadcast A from the root ------------------------------------
    packed_a = struct.pack(f"<{N}i", *vector_a)
    copies = group.broadcast(0, packed_a)
    assert all(copy == packed_a for copy in copies)
    print(f"broadcast: {len(packed_a)} bytes of operand data to every rank")

    # --- 2. each rank computes its partial -------------------------------
    partials = []
    for r in range(RANKS):
        a = struct.unpack(f"<{N}i", copies[r])
        partial = sum(
            a[r * SLICE + i] * slices_b[r][i] for i in range(SLICE)
        )
        # Charge the computation to the rank's CPU, like real work.
        cluster.node(r).cpu.execute(SLICE * 4)
        partials.append(partial)
    print(f"partials computed per rank: {partials}")

    # --- 3. reduce to the root --------------------------------------------
    totals = group.reduce_sum(0, [[p] for p in partials])
    expected = sum(
        vector_a[j] * slices_b[j // SLICE][j % SLICE] for j in range(N)
    )
    assert totals == [expected], (totals, expected)
    print(f"reduced dot product at root: {totals[0]} (expected {expected})")

    # --- 4. barrier --------------------------------------------------------
    group.barrier()
    sent = sum(nic.packets_sent for nic in cluster.nics)
    print(f"barrier passed; {sent} packets crossed the backplane in total")
    print("collective example OK")


if __name__ == "__main__":
    main()
