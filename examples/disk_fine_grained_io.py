#!/usr/bin/env python3
"""Fine-grained disk I/O: where UDMA's low overhead pays off.

The paper's introduction argues that traditional DMA's kernel overhead
"is the dominating factor which limits the utilization of DMA devices for
fine grained data transfers".  This example runs a workload of many small
record writes to a disk, once through the traditional syscall path and
once through UDMA, and reports the software overhead each pays.

Run:  python examples/disk_fine_grained_io.py
"""

from repro import Machine, MachineConfig
from repro.bench import make_payload
from repro.devices import Disk
from repro.userlib import DeviceRef, MemoryRef, UdmaUser

RECORDS = 32
RECORD_BYTES = 512


def main() -> None:
    machine = Machine(config=MachineConfig(mem_size=1 << 20))
    disk = Disk("disk", num_blocks=256, block_size=512,
                seek_cycles=2_000, bytes_per_cycle=0.5)
    machine.attach_device(disk)
    process = machine.create_process("db")
    buffer = machine.kernel.syscalls.alloc(process, 1 << 15)
    grant = machine.kernel.syscalls.grant_device_proxy(process, "disk")
    udma = UdmaUser(machine, process)

    records = [make_payload(RECORD_BYTES, seed=i + 1) for i in range(RECORDS)]
    for i, record in enumerate(records):
        machine.cpu.write_bytes(buffer + i * RECORD_BYTES, record)

    # --- traditional path: one syscall per record -------------------------
    t0 = machine.now
    for i in range(RECORDS):
        machine.kernel.syscalls.dma(
            process, "disk",
            device_offset=i * RECORD_BYTES,
            vaddr=buffer + i * RECORD_BYTES,
            nbytes=RECORD_BYTES,
            to_device=True,
        )
    traditional_cycles = machine.now - t0
    for i in range(RECORDS):
        assert disk.read_block(i) == records[i]

    # --- UDMA path: two instructions per record ---------------------------
    t0 = machine.now
    for i in range(RECORDS):
        udma.transfer(
            MemoryRef(buffer + i * RECORD_BYTES),
            DeviceRef(grant + (RECORDS + i) * RECORD_BYTES),
            RECORD_BYTES,
        )
    machine.run_until_idle()
    udma_cycles = machine.now - t0
    for i in range(RECORDS):
        assert disk.read_block(RECORDS + i) == records[i]

    us = machine.costs.cycles_to_us
    print(f"{RECORDS} writes of {RECORD_BYTES} B each:")
    print(f"  traditional DMA: {us(traditional_cycles):9.1f} us "
          f"({machine.kernel.syscalls.dma_calls} syscalls, "
          f"{machine.kernel.syscalls.pages_pinned} page pins)")
    print(f"  UDMA:            {us(udma_cycles):9.1f} us "
          f"(0 syscalls, 0 pins)")
    print(f"  speedup: {traditional_cycles / udma_cycles:.2f}x at "
          f"{RECORD_BYTES}-byte granularity")
    print("\n(Device time is identical on both paths -- the entire gap is "
          "kernel software overhead.)")
    print("disk example OK")


if __name__ == "__main__":
    main()
