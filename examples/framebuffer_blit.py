#!/usr/bin/env python3
"""Blitting to a memory-mapped frame-buffer with UDMA.

The paper lists "memory-mapped devices such as graphics frame-buffers"
among UDMA's targets, with a device-proxy address "specify[ing] a pixel"
(section 4).  This example renders a checkerboard-and-gradient image by
UDMA-blitting scanlines straight out of user memory, then displays the
result as ASCII art and reports the cost per frame.

Run:  python examples/framebuffer_blit.py
"""

from repro import Machine, MachineConfig
from repro.devices import FrameBuffer
from repro.userlib import DeviceRef, MemoryRef, UdmaUser

WIDTH, HEIGHT = 48, 16
SHADES = " .:-=+*#%@"


def render_scanline(y: int) -> bytes:
    """One scanline of a checkerboard fading left to right (4 B/pixel)."""
    line = bytearray()
    for x in range(WIDTH):
        checker = 64 if (x // 4 + y // 4) % 2 else 0
        gradient = x * 191 // max(1, WIDTH - 1)
        lum = min(255, checker + gradient)
        line += bytes((lum, lum, lum, 255))  # greyscale RGBA
    return bytes(line)


def main() -> None:
    machine = Machine(config=MachineConfig(mem_size=1 << 20))
    fb = FrameBuffer("fb", width=WIDTH, height=HEIGHT, bytes_per_pixel=4)
    machine.attach_device(fb)
    process = machine.create_process("render")
    buffer = machine.kernel.syscalls.alloc(process, WIDTH * 4 * HEIGHT)
    grant = machine.kernel.syscalls.grant_device_proxy(process, "fb")
    udma = UdmaUser(machine, process)

    # Draw the whole frame into user memory, then blit scanline by
    # scanline -- each blit is a protected user-level DMA.
    t0 = machine.now
    for y in range(HEIGHT):
        line = render_scanline(y)
        machine.cpu.write_bytes(buffer + y * len(line), line)
        udma.transfer(
            MemoryRef(buffer + y * len(line)),
            DeviceRef(grant + fb.pixel_offset(0, y)),
            len(line),
        )
    machine.run_until_idle()
    frame_us = machine.costs.cycles_to_us(machine.now - t0)

    print("frame rendered via UDMA blits:\n")
    for y in range(HEIGHT):
        row = fb.row(y)
        text = "".join(
            SHADES[row[x * 4] * (len(SHADES) - 1) // 255] for x in range(WIDTH)
        )
        print("   " + text)
    print(f"\n{HEIGHT} scanline blits ({fb.blits} device writes), "
          f"{frame_us:.0f} us simulated per frame "
          f"({1e6 / frame_us:.0f} fps equivalent)")
    assert fb.blits == HEIGHT
    print("framebuffer example OK")


if __name__ == "__main__":
    main()
