#!/usr/bin/env python3
"""A flow-controlled message queue between two nodes.

Channels are raw remote-memory windows; applications want queues.  This
example runs the ring-buffer protocol from `repro.userlib.ring` -- the
way SHRIMP-style systems actually layered messaging over deliberate
update: the producer appends records and commits a cursor, the consumer
polls *local* memory and publishes its consumption cursor back for flow
control.

The producer deliberately outruns the consumer to show the ring filling,
refusing, and recovering -- all without a single kernel call per message.

Run:  python examples/message_queue.py
"""

from repro import ClusterConfig, ShrimpCluster
from repro.bench import make_payload
from repro.userlib import MessageRing

PAGE = 4096
RECORDS = 24


def main() -> None:
    cluster = ShrimpCluster(
                  config=ClusterConfig(num_nodes=2, mem_size=1 << 21),
              )
    producer_proc = cluster.node(0).create_process("producer")
    consumer_proc = cluster.node(1).create_process("consumer")
    ring = MessageRing(
        cluster, 0, producer_proc, 1, consumer_proc, data_bytes=2 * PAGE
    )
    producer, consumer = ring.endpoints()
    print(f"ring: {ring.data_bytes} data bytes + control page, "
          "feedback channel for flow control\n")

    records = [make_payload(700 + (i * 37) % 300, seed=i + 1)
               for i in range(RECORDS)]
    consumed = []
    refusals = 0
    produced = 0

    # The producer pushes until the ring refuses; only then does the
    # consumer run -- so the ring genuinely fills, pushes back, and
    # recovers, over and over.
    while len(consumed) < RECORDS:
        pushed_back = produced == RECORDS
        if not pushed_back:
            if producer.try_send(records[produced]):
                produced += 1
            else:
                refusals += 1  # ring full: consumer must catch up
                pushed_back = True
        if pushed_back:
            record = consumer.drain_and_poll()
            if record is not None:
                assert record == records[len(consumed)], "order broken!"
                consumed.append(record)

    assert consumed == records
    dma_calls = sum(cluster.node(i).kernel.syscalls.dma_calls for i in range(2))
    print(f"produced {produced} records ({sum(map(len, records))} bytes), "
          f"consumed {len(consumed)}, in order")
    print(f"ring-full refusals absorbed by flow control: {refusals}")
    print(f"kernel DMA syscalls during the run: {dma_calls}")
    print(f"packets on the backplane: {cluster.interconnect.packets_routed} "
          "(records + cursor commits + feedback)")
    print("message queue example OK")


if __name__ == "__main__":
    main()
