#!/usr/bin/env python3
"""Protection: untrusting processes sharing one UDMA device.

"A UDMA device can be used concurrently by an arbitrary number of
untrusting processes without compromising protection" (section 1).  This
example shows every protection boundary in action:

* a process cannot name another process's memory as a DMA source or
  destination (the MMU has no proxy mapping for it);
* a process without a device grant cannot command the device at all;
* a context switch between the two initiation instructions cannot splice
  one process's STORE onto another's LOAD (invariant I1);
* after all of it, the kernel's I1-I4 invariants still hold.

Run:  python examples/protection_demo.py
"""

from repro import Machine, MachineConfig, UdmaStatus
from repro.devices import SinkDevice
from repro.errors import ProtectionFault
from repro.kernel.invariants import InvariantChecker
from repro.userlib import DeviceRef, MemoryRef, UdmaUser


def main() -> None:
    machine = Machine(config=MachineConfig(mem_size=1 << 20))
    device = SinkDevice("shared", size=1 << 16)
    machine.attach_device(device)

    alice = machine.create_process("alice")
    alice_buf = machine.kernel.syscalls.alloc(alice, 4096)
    alice_grant = machine.kernel.syscalls.grant_device_proxy(alice, "shared")
    alice_udma = UdmaUser(machine, alice)

    mallory = machine.create_process("mallory")
    mallory_grant = machine.kernel.syscalls.grant_device_proxy(mallory, "shared")

    eve = machine.create_process("eve")  # no grant at all

    # --- Alice uses the device normally ----------------------------------
    machine.kernel.scheduler.switch_to(alice)
    machine.cpu.write_bytes(alice_buf, b"alice's secret record")
    alice_udma.transfer(MemoryRef(alice_buf), DeviceRef(alice_grant), 21)
    machine.run_until_idle()
    print("alice: transferred her buffer to the shared device")

    # --- Mallory tries to DMA Alice's memory out -------------------------
    machine.kernel.scheduler.switch_to(mallory)
    try:
        # Naming Alice's buffer means referencing PROXY(alice_buf); the
        # MMU finds no mapping in Mallory's page table.
        machine.cpu.store(machine.proxy(alice_buf), 21)
        raise AssertionError("protection hole!")
    except ProtectionFault as fault:
        print(f"mallory: blocked by the MMU -- {fault}")

    # --- Eve has no grant; the device window itself is unmapped ----------
    machine.kernel.scheduler.switch_to(eve)
    try:
        machine.cpu.store(mallory_grant, 64)
        raise AssertionError("protection hole!")
    except ProtectionFault as fault:
        print(f"eve:     blocked by the MMU -- {fault}")

    # --- I1: a context switch cannot splice two processes' sequences -----
    machine.kernel.scheduler.switch_to(mallory)
    machine.cpu.store(mallory_grant + 1024, 4096)   # Mallory's STORE...
    machine.kernel.scheduler.switch_to(alice)        # ...preempted (Inval)
    word = machine.cpu.load(machine.proxy(alice_buf))  # Alice's LOAD
    status = UdmaStatus.decode(word)
    assert not status.started, "Alice's LOAD must not complete Mallory's STORE"
    print("I1:      context switch invalidated the half-done initiation "
          f"(alice's LOAD returned: {status.describe()})")

    # --- everything still consistent --------------------------------------
    InvariantChecker(machine.kernel).check_all()
    print("I1-I4:   all invariants verified")
    assert device.peek(0, 21) == b"alice's secret record"
    print("protection demo OK")


if __name__ == "__main__":
    main()
