#!/usr/bin/env python3
"""Quickstart: one node, one device, one protected user-level DMA.

Walks through the paper's mechanism step by step on a single simulated
node with a simple storage-like device:

1. build a machine and attach a device (which reserves its device-proxy
   window);
2. create a process, allocate a buffer, and ask the OS for a device-proxy
   grant -- the *only* kernel involvement in the whole program;
3. issue the two-instruction initiation sequence by hand and decode the
   status word the LOAD returns;
4. poll for completion by repeating the LOAD;
5. do the same through the user-level runtime, which handles page
   splitting and retries.

Run:  python examples/quickstart.py
"""

from repro import Machine, MachineConfig, UdmaStatus
from repro.devices import SinkDevice
from repro.userlib import DeviceRef, MemoryRef, UdmaUser


def main() -> None:
    # --- 1. hardware -----------------------------------------------------
    machine = Machine(config=MachineConfig(mem_size=1 << 20))  # 1 MB node, basic UDMA device
    device = SinkDevice("store", size=1 << 16)
    machine.attach_device(device)
    print(f"built {machine}")
    print(f"  PROXY(0x2000) = {machine.proxy(0x2000):#x} "
          "(the memory-proxy alias of a real address)")

    # --- 2. one-time OS setup --------------------------------------------
    process = machine.create_process("app")
    buffer = machine.kernel.syscalls.alloc(process, 8192)
    grant = machine.kernel.syscalls.grant_device_proxy(process, "store")
    print(f"  buffer at {buffer:#x}, device grant at {grant:#x}")

    # --- 3. the two-instruction initiation, by hand ----------------------
    message = b"protected, user-level DMA!"
    machine.cpu.write_bytes(buffer, message)

    # Warm the proxy mapping once (the first touch demand-maps it via a
    # page fault; steady-state initiations are fault-free).
    machine.cpu.load(machine.proxy(buffer))

    t0 = machine.now
    machine.cpu.execute(machine.costs.udma_align_check_cycles)  # alignment check
    machine.cpu.store(grant, len(message))          # STORE nbytes TO destAddr
    machine.cpu.fence()                              # keep the pair ordered
    word = machine.cpu.load(machine.proxy(buffer))   # LOAD status FROM srcAddr
    status = UdmaStatus.decode(word)
    print(f"\ninitiation took {machine.us(machine.now - t0):.2f} us "
          f"(paper: ~2.8 us); status = {status.describe()}")
    assert status.started

    # --- 4. completion: repeat the LOAD ----------------------------------
    polls = 0
    while UdmaStatus.decode(machine.cpu.load(machine.proxy(buffer))).match:
        machine.clock.run(until=machine.clock.next_event_time())
        polls += 1
    print(f"transfer complete after {polls} polls; "
          f"device holds: {device.peek(0, len(message))!r}")
    assert device.peek(0, len(message)) == message

    # --- 5. the runtime does all of that for you -------------------------
    udma = UdmaUser(machine, process)
    big = bytes(range(256)) * 24  # 6 KB: crosses a page boundary
    machine.cpu.write_bytes(buffer, big)
    stats = udma.transfer(MemoryRef(buffer), DeviceRef(grant + 4096), len(big))
    machine.run_until_idle()
    assert device.peek(4096, len(big)) == big
    print(f"\n6 KB transfer via the runtime: {stats.pieces} pieces "
          f"(split at the page boundary), {stats.initiations} initiations, "
          f"{stats.retries} retries")
    print("quickstart OK")


if __name__ == "__main__":
    main()
