#!/usr/bin/env python3
"""The SHRIMP prototype: four nodes passing messages at user level.

Recreates the paper's setting -- "a four-processor prototype" where "a
user process sends a packet to another machine with a simple UDMA
transfer of the data from memory to the network interface device"
(section 8).  The script:

* builds a 4-node cluster on one routing backplane;
* wires a ring of deliberate-update channels (0->1->2->3->0);
* passes a token around the ring, verifying it at each hop;
* measures one-way latency and the bandwidth curve's anchor points.

Run:  python examples/shrimp_message_passing.py
"""

from repro import ClusterConfig, Receiver, Sender, ShrimpCluster
from repro.bench import make_payload, measure_message, measure_peak_bandwidth

PAGE = 4096


def main() -> None:
    cluster = ShrimpCluster(
                  config=ClusterConfig(num_nodes=4, mem_size=1 << 21),
              )
    print(f"cluster: {cluster.num_nodes} nodes on one backplane, "
          f"{cluster.costs.cpu_hz / 1e6:.0f} MHz each")

    # --- ring topology setup (OS work, once) ------------------------------
    procs = [cluster.node(i).create_process(f"rank{i}") for i in range(4)]
    senders = []
    receivers = []
    for i in range(4):
        dst = (i + 1) % 4
        buf = cluster.node(dst).kernel.syscalls.alloc(procs[dst], 2 * PAGE)
        channel = cluster.create_channel(i, dst, procs[dst], buf, 2 * PAGE)
        senders.append(Sender(cluster, procs[i], channel))
        receivers.append(Receiver(cluster, procs[dst], channel))
    print("ring channels wired: 0->1->2->3->0 "
          "(receive buffers exported, NIPT entries installed)\n")

    # --- token ring: pure user-level communication -------------------------
    token = make_payload(1024)
    for hop in range(4):
        src = hop % 4
        senders[src].send_bytes(token)
        cluster.run_until_idle()
        landed = receivers[src].recv_bytes(len(token))
        assert landed == token, f"token corrupted at hop {hop}"
        print(f"hop {src} -> {(src + 1) % 4}: 1 KB token verified "
              f"({cluster.nic((src + 1) % 4).packets_received} packets at receiver)")

    # --- latency and bandwidth anchors -------------------------------------
    print("\nmeasured on the 0->1 channel:")
    small = measure_message(senders[0], 64)
    print(f"  64 B one-way:  {cluster.costs.cycles_to_us(small.total_cycles):7.2f} us")
    page = measure_message(senders[0], PAGE)
    print(f"  4 KB one-way:  {cluster.costs.cycles_to_us(page.total_cycles):7.2f} us")

    # A wide channel for the peak-bandwidth probe (the ring channels are
    # deliberately small).
    wide_buf = cluster.node(1).kernel.syscalls.alloc(procs[1], 1 << 17)
    wide = cluster.create_channel(0, 1, procs[1], wide_buf, 1 << 17)
    wide_sender = Sender(cluster, procs[0], wide)
    peak = measure_peak_bandwidth(wide_sender)
    peak_mbs = cluster.costs.bytes_per_second(peak) / 1e6
    for size in (512, PAGE, 2 * PAGE):
        t = measure_message(wide_sender, size)
        pct = t.bytes_per_cycle / peak * 100
        print(f"  {size:5d} B message: {pct:5.1f}% of the {peak_mbs:.1f} MB/s peak")
    print("\n(Figure 8's anchors: >50% at 512 B, ~94% at one page)")
    print("message passing OK")


if __name__ == "__main__":
    main()
