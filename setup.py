"""Legacy shim so editable installs work without the `wheel` package.

The environment has no network access and no `wheel` distribution, so
PEP-660 editable installs (which build a wheel) fail; this setup.py lets
pip fall back to the classic `setup.py develop` path.  All real metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
