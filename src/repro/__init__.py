"""repro: a behavioural reproduction of *Protected, User-Level DMA for the
SHRIMP Network Interface* (Blumrich, Dubnicki, Felten, Li -- HPCA 1996).

The library simulates, end to end, the system the paper describes:

* the **UDMA mechanism** itself (:mod:`repro.core`) -- proxy address
  spaces, the two-instruction initiation sequence, the hardware state
  machine, the status word, and the section-7 queued extension;
* every **substrate** it depends on: a CPU and MMU with TLB and page
  tables (:mod:`repro.cpu`, :mod:`repro.vm`), physical memory and the
  proxy address map (:mod:`repro.mem`), classic DMA hardware
  (:mod:`repro.dma`), an operating-system kernel maintaining invariants
  I1-I4 (:mod:`repro.kernel`), a family of I/O devices
  (:mod:`repro.devices`), and the SHRIMP network -- NIPT, packetizing,
  FIFOs, backplane (:mod:`repro.net`);
* assembly helpers: a single node (:class:`repro.Machine`) and a
  multicomputer (:class:`repro.ShrimpCluster`);
* the **user-level runtime** applications link against
  (:mod:`repro.userlib`), and the **measurement harness** used by the
  paper-reproduction benches (:mod:`repro.bench`).

Quick start::

    from repro import ShrimpCluster, Sender, Receiver

    cluster = ShrimpCluster(num_nodes=2)
    rx_proc = cluster.node(1).create_process("rx")
    buf = cluster.node(1).kernel.syscalls.alloc(rx_proc, 8192)
    channel = cluster.create_channel(0, 1, rx_proc, buf, 8192)
    tx_proc = cluster.node(0).create_process("tx")
    sender = Sender(cluster, tx_proc, channel)
    sender.send_bytes(b"hello, remote memory!")
    Receiver(cluster, rx_proc, channel).drain()
"""

from repro.cluster import Channel, ShrimpCluster
from repro.config import ClusterConfig, IommuConfig, MachineConfig
from repro.core import (
    QueuedUdmaController,
    UdmaController,
    UdmaState,
    UdmaStatus,
)
from repro.machine import Machine
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Observability,
    ObsConfig,
    Span,
    SpanTracker,
)
from repro.params import CostModel, hippi_paragon, shrimp, shrimp_queued
from repro.sim.trace import TraceEvent, Tracer
from repro.userlib import DeviceRef, MemoryRef, Receiver, Sender, UdmaUser

__version__ = "1.0.0"

__all__ = [
    "Channel",
    "ClusterConfig",
    "CostModel",
    "Counter",
    "DeviceRef",
    "Gauge",
    "Histogram",
    "IommuConfig",
    "Machine",
    "MachineConfig",
    "MemoryRef",
    "MetricsRegistry",
    "ObsConfig",
    "Observability",
    "QueuedUdmaController",
    "Receiver",
    "Sender",
    "ShrimpCluster",
    "Span",
    "SpanTracker",
    "TraceEvent",
    "Tracer",
    "UdmaController",
    "UdmaState",
    "UdmaStatus",
    "UdmaUser",
    "hippi_paragon",
    "shrimp",
    "shrimp_queued",
    "__version__",
]
