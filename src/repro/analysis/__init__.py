"""Post-hoc analysis over traces and counters."""

from repro.analysis.metrics import (
    cluster_metrics,
    machine_metrics,
    nic_metrics,
    render,
)
from repro.analysis.stats import Summary, summarize
from repro.analysis.traffic import (
    TrafficReport,
    bandwidth_timeline,
    packet_latencies,
    traffic_report,
)

__all__ = [
    "Summary",
    "TrafficReport",
    "bandwidth_timeline",
    "cluster_metrics",
    "machine_metrics",
    "nic_metrics",
    "packet_latencies",
    "render",
    "summarize",
    "traffic_report",
]
