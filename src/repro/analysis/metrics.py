"""Uniform metrics collection across a machine or cluster.

Every component keeps its own counters (CPU instructions, TLB hits, VM
faults, UDMA initiations, NIC packets...).  The stable API for reading
them is :meth:`repro.machine.Machine.metrics` /
:meth:`repro.cluster.ShrimpCluster.metrics`, backed by the typed registry
in :mod:`repro.obs`.  The free functions here (:func:`machine_metrics`,
:func:`cluster_metrics`) are the *deprecated* pre-registry spellings,
kept as thin wrappers; :func:`render` pretty-prints either shape.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict

from repro.cluster import ShrimpCluster
from repro.machine import Machine
from repro.net.nic import ShrimpNic


def machine_metrics(machine: Machine) -> Dict[str, Any]:
    """Deprecated: use :meth:`repro.machine.Machine.metrics`."""
    warnings.warn(
        "machine_metrics(m) is deprecated; use m.metrics() "
        "(backed by the repro.obs metrics registry)",
        DeprecationWarning,
        stacklevel=2,
    )
    return machine.metrics()


def transfer_latency(machine: Machine) -> Dict[str, Any]:
    """Per-transfer latency summary (cycles) from the registry histogram.

    Keys: ``count``, ``sum``, ``min``, ``max``, ``p50``, ``p99``.  For the
    basic device latency runs initiation to completion; for the queued
    device, queue-accept to completion (so backlog wait is included).
    """
    return machine.metrics()["udma"]["transfer_cycles"]


def nic_metrics(nic: ShrimpNic) -> Dict[str, Any]:
    """Counters of one network interface."""
    return {
        "packets_sent": nic.packets_sent,
        "packets_received": nic.packets_received,
        "bytes_sent": nic.bytes_sent,
        "bytes_received": nic.bytes_received,
        "rx_errors": nic.rx_errors,
        "out_fifo_high_water": nic.outgoing.high_water,
        "in_fifo_high_water": nic.incoming.high_water,
    }


def cluster_metrics(cluster: ShrimpCluster) -> Dict[str, Any]:
    """Deprecated: use :meth:`repro.cluster.ShrimpCluster.metrics`."""
    warnings.warn(
        "cluster_metrics(c) is deprecated; use c.metrics() "
        "(backed by the repro.obs metrics registry)",
        DeprecationWarning,
        stacklevel=2,
    )
    return cluster.metrics()


def render(metrics: Dict[str, Any], indent: int = 0) -> str:
    """Pretty-print a metrics dict as an aligned tree."""
    lines = []
    pad = "  " * indent
    width = max((len(str(k)) for k in metrics), default=0)
    for key, value in metrics.items():
        if isinstance(value, dict):
            lines.append(f"{pad}{key}:")
            lines.append(render(value, indent + 1))
        else:
            lines.append(f"{pad}{str(key):<{width}}  {value}")
    return "\n".join(lines)
