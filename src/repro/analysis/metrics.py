"""Uniform metrics collection across a machine or cluster.

Every component keeps its own counters (CPU instructions, TLB hits, VM
faults, UDMA initiations, NIC packets...).  :func:`machine_metrics` and
:func:`cluster_metrics` gather them into one nested dict -- the system
report a long-running deployment would export -- and :func:`render`
pretty-prints it.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.cluster import ShrimpCluster
from repro.core.queueing import QueuedUdmaController
from repro.machine import Machine
from repro.net.nic import ShrimpNic


def machine_metrics(machine: Machine) -> Dict[str, Any]:
    """Counters of one node, grouped by subsystem."""
    cpu = machine.cpu
    tlb = machine.mmu.tlb
    vm = machine.kernel.vm
    sched = machine.kernel.scheduler
    sys = machine.kernel.syscalls
    udma = machine.udma
    sm = getattr(udma, "sm", None)

    metrics: Dict[str, Any] = {
        "cpu": {
            "instructions": cpu.instructions,
            "loads": cpu.loads,
            "stores": cpu.stores,
            "charged_cycles": cpu.charged_cycles,
        },
        "tlb": {
            "hits": tlb.hits,
            "misses": tlb.misses,
            "hit_rate": round(tlb.hit_rate, 4),
            "flushes": tlb.flushes,
        },
        "vm": {
            "faults": vm.faults_handled,
            "proxy_faults": vm.proxy_faults,
            "pages_in": vm.pages_in,
            "pages_out": vm.pages_out,
            "cleans": vm.cleans,
            "cleans_deferred": vm.cleans_deferred,
            "evictions_redirected": vm.evictions_redirected,
        },
        "scheduler": {
            "switches": sched.switches,
            "invals_fired": sched.invals_fired,
        },
        "syscalls": {
            "dma_calls": sys.dma_calls,
            "pages_pinned": sys.pages_pinned,
            "bytes_copied": sys.bytes_copied,
        },
        "udma": {
            "engine_transfers": machine.udma_engine.transfers_completed,
            "engine_bytes": machine.udma_engine.bytes_transferred,
        },
    }
    if isinstance(udma, QueuedUdmaController):
        metrics["udma"].update(
            accepted=udma.accepted,
            refused=udma.refused,
            backlog=udma.backlog_requests,
        )
    elif sm is not None:
        metrics["udma"].update(
            initiations=sm.initiations,
            completions=sm.completions,
            bad_loads=sm.bad_loads,
            invals=sm.invals,
        )
    return metrics


def nic_metrics(nic: ShrimpNic) -> Dict[str, Any]:
    """Counters of one network interface."""
    return {
        "packets_sent": nic.packets_sent,
        "packets_received": nic.packets_received,
        "bytes_sent": nic.bytes_sent,
        "bytes_received": nic.bytes_received,
        "rx_errors": nic.rx_errors,
        "out_fifo_high_water": nic.outgoing.high_water,
        "in_fifo_high_water": nic.incoming.high_water,
    }


def cluster_metrics(cluster: ShrimpCluster) -> Dict[str, Any]:
    """Counters of a whole multicomputer, per node plus the backplane."""
    report: Dict[str, Any] = {
        "backplane": {
            "packets_routed": cluster.interconnect.packets_routed,
            "bytes_routed": cluster.interconnect.bytes_routed,
            "topology": cluster.interconnect.topology,
        },
        "now_cycles": cluster.now,
    }
    for i, node in enumerate(cluster.nodes):
        node_report = machine_metrics(node)
        node_report["nic"] = nic_metrics(cluster.nic(i))
        report[f"node{i}"] = node_report
    return report


def render(metrics: Dict[str, Any], indent: int = 0) -> str:
    """Pretty-print a metrics dict as an aligned tree."""
    lines = []
    pad = "  " * indent
    width = max((len(str(k)) for k in metrics), default=0)
    for key, value in metrics.items():
        if isinstance(value, dict):
            lines.append(f"{pad}{key}:")
            lines.append(render(value, indent + 1))
        else:
            lines.append(f"{pad}{str(key):<{width}}  {value}")
    return "\n".join(lines)
