"""Small, dependency-free descriptive statistics.

The bench harness and the traffic analyser need mean/percentiles over
cycle counts; this module provides them without pulling in numpy for a
handful of numbers (keeping the core library dependency-free).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    stdev: float
    minimum: float
    p50: float
    p95: float
    maximum: float

    def describe(self) -> str:
        """One-line rendering for bench notes."""
        return (
            f"n={self.count} mean={self.mean:.1f} sd={self.stdev:.1f} "
            f"min={self.minimum:.0f} p50={self.p50:.0f} "
            f"p95={self.p95:.0f} max={self.maximum:.0f}"
        )


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of an ascending sequence."""
    if not sorted_values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = fraction * (len(sorted_values) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return float(sorted_values[low])
    weight = position - low
    return sorted_values[low] * (1 - weight) + sorted_values[high] * weight


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of a non-empty sample."""
    if not values:
        raise ValueError("cannot summarise an empty sample")
    ordered: List[float] = sorted(float(v) for v in values)
    count = len(ordered)
    mean = sum(ordered) / count
    variance = sum((v - mean) ** 2 for v in ordered) / count
    return Summary(
        count=count,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=ordered[0],
        p50=percentile(ordered, 0.50),
        p95=percentile(ordered, 0.95),
        maximum=ordered[-1],
    )
