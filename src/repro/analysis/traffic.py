"""Network-traffic analysis over recorded traces.

Works on the trace events the NICs emit (``packet-tx`` / ``packet-rx``
with ``seq`` and ``bytes`` fields), pairing transmissions with deliveries
to extract per-packet latency and windowed bandwidth -- the quantities a
follow-up evaluation of the SHRIMP interconnect would plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import Summary, summarize
from repro.sim.trace import TraceEvent


@dataclass(frozen=True)
class TrafficReport:
    """Aggregate view of a traced run."""

    packets: int
    bytes: int
    latency: Optional[Summary]
    span_cycles: int

    @property
    def bytes_per_cycle(self) -> float:
        """Mean delivered bandwidth over the traced span."""
        return self.bytes / self.span_cycles if self.span_cycles else 0.0


def packet_latencies(events: Sequence[TraceEvent]) -> List[int]:
    """Wire+route+receive latency of each delivered packet, in cycles.

    Pairs ``packet-tx`` and ``packet-rx`` events by (source NIC, seq).
    Unmatched packets (still in flight, or dropped) are skipped.
    """
    sent: Dict[Tuple[str, int], int] = {}
    latencies: List[int] = []
    for event in events:
        if event.kind == "packet-tx":
            sent[(event.source, event.detail.get("seq", -1))] = event.time
    for event in events:
        if event.kind != "packet-rx":
            continue
        src_node = event.detail.get("src")
        seq = event.detail.get("seq", -1)
        # tx source names the *sending* NIC, e.g. "nic0" for src node 0.
        key = (f"nic{src_node}", seq)
        if key in sent:
            latencies.append(event.time - sent[key])
    return latencies


def bandwidth_timeline(
    events: Sequence[TraceEvent], bucket_cycles: int
) -> List[Tuple[int, float]]:
    """Delivered bytes/cycle per time bucket: ``[(bucket_start, rate)...]``."""
    if bucket_cycles <= 0:
        raise ValueError(f"bucket_cycles must be positive, got {bucket_cycles}")
    deliveries = [e for e in events if e.kind == "packet-rx"]
    if not deliveries:
        return []
    start = min(e.time for e in deliveries)
    buckets: Dict[int, int] = {}
    for event in deliveries:
        index = (event.time - start) // bucket_cycles
        buckets[index] = buckets.get(index, 0) + int(event.detail.get("bytes", 0))
    last = max(buckets)
    return [
        (start + i * bucket_cycles, buckets.get(i, 0) / bucket_cycles)
        for i in range(last + 1)
    ]


def traffic_report(events: Sequence[TraceEvent]) -> TrafficReport:
    """Build the aggregate report from a recorded trace."""
    deliveries = [e for e in events if e.kind == "packet-rx"]
    total_bytes = sum(int(e.detail.get("bytes", 0)) for e in deliveries)
    latencies = packet_latencies(events)
    times = [e.time for e in events if e.kind in ("packet-tx", "packet-rx")]
    span = (max(times) - min(times)) if len(times) > 1 else 0
    return TrafficReport(
        packets=len(deliveries),
        bytes=total_bytes,
        latency=summarize(latencies) if latencies else None,
        span_cycles=span,
    )
