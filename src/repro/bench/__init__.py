"""Measurement harness: workloads, timing, and paper-vs-measured reports."""

from repro.bench.measure import (
    MessageTiming,
    bandwidth_curve,
    measure_message,
    measure_peak_bandwidth,
    measure_traditional_dma_cycles,
    measure_udma_initiation_cycles,
)
from repro.bench.report import Row, print_table
from repro.bench.workloads import (
    fig8_sizes,
    hippi_block_sizes,
    make_payload,
    sweep_sizes,
)

__all__ = [
    "MessageTiming",
    "Row",
    "bandwidth_curve",
    "fig8_sizes",
    "hippi_block_sizes",
    "make_payload",
    "measure_message",
    "measure_peak_bandwidth",
    "measure_traditional_dma_cycles",
    "measure_udma_initiation_cycles",
    "print_table",
    "sweep_sizes",
]
