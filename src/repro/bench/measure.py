"""Timing measurements over the simulated systems.

All times are cycles on the node's shared clock; conversion to
microseconds and MB/s uses the active :class:`~repro.params.CostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.bench.workloads import make_payload
from repro.cluster import ShrimpCluster
from repro.kernel.process import Process
from repro.machine import Machine
from repro.userlib.messaging import Receiver, Sender
from repro.userlib.udma import DeviceRef, MemoryRef, UdmaUser


@dataclass(frozen=True)
class MessageTiming:
    """Timing of one end-to-end message."""

    nbytes: int
    start_cycle: int
    send_returned_cycle: int
    delivered_cycle: int

    @property
    def total_cycles(self) -> int:
        """Cycles from first initiation to last byte in remote memory."""
        return self.delivered_cycle - self.start_cycle

    @property
    def bytes_per_cycle(self) -> float:
        """End-to-end bandwidth."""
        return self.nbytes / self.total_cycles if self.total_cycles else 0.0


def measure_message(
    sender: Sender,
    nbytes: int,
    payload: Optional[bytes] = None,
) -> MessageTiming:
    """Send one message and time it to remote-memory delivery.

    The send buffer is filled *before* the timed window: the paper's
    bandwidth figure measures the communication mechanism, not the
    application generating its data.
    """
    cluster = sender.cluster
    nic = cluster.nic(sender.channel.dst_node)
    data = payload if payload is not None else make_payload(nbytes)
    sender._ensure_current()
    sender.machine.cpu.write_bytes(sender.buffer, data[:nbytes])
    start = cluster.now
    sender.send_buffer(nbytes)
    send_returned = cluster.now
    cluster.run_until_idle()
    return MessageTiming(
        nbytes=nbytes,
        start_cycle=start,
        send_returned_cycle=send_returned,
        delivered_cycle=nic.last_delivery_done,
    )


def bandwidth_curve(
    sender: Sender, sizes: List[int]
) -> List[Tuple[int, float]]:
    """(size, bytes/cycle) for each message size, fresh timing per point."""
    curve: List[Tuple[int, float]] = []
    for size in sizes:
        timing = measure_message(sender, size)
        curve.append((size, timing.bytes_per_cycle))
    return curve


def measure_peak_bandwidth(sender: Sender, probe_bytes: int = 1 << 18) -> float:
    """The plateau ("maximum measured") bandwidth, in bytes/cycle.

    Measured with a message long enough (256 KB by default, clamped to
    what the channel and send buffer can carry) that per-message startup
    and tail drain are fully amortised -- the analogue of the paper's
    "maximum measured bandwidth ... sustained for messages exceeding
    8 Kbytes".
    """
    probe = min(probe_bytes, sender.channel.nbytes, sender.buffer_bytes)
    timing = measure_message(sender, probe)
    return timing.bytes_per_cycle


# --------------------------------------------------------------- initiation
def measure_udma_initiation_cycles(machine: Machine, process: Process,
                                   udma: Optional[UdmaUser] = None,
                                   device_vaddr: Optional[int] = None,
                                   src_vaddr: Optional[int] = None) -> int:
    """Cycles charged to the CPU for one complete UDMA initiation.

    Includes the paper's full accounting: the alignment check plus the
    STORE / fence / LOAD sequence (section 8's 2.8 us quantity).  The
    machine must have a device attached and granted; pass the runtime and
    addresses, or let the helper build a throwaway setup on a sink device.
    """
    if udma is None or device_vaddr is None or src_vaddr is None:
        raise ValueError("pass udma runtime, device_vaddr and src_vaddr")
    # Touch both pages first so no demand-paging fault lands in the timing.
    machine.cpu.store(src_vaddr, 0x1234)
    before = machine.cpu.charged_cycles
    machine.cpu.execute(machine.costs.udma_align_check_cycles)
    status = udma.initiate(device_vaddr, udma.layout.proxy(src_vaddr), 64)
    after = machine.cpu.charged_cycles
    if not status.started:
        raise RuntimeError(f"initiation failed: {status.describe()}")
    machine.run_until_idle()
    return after - before


def measure_traditional_dma_cycles(
    machine: Machine,
    process: Process,
    device_name: str,
    nbytes: int,
    bounce: bool = False,
) -> Tuple[int, int]:
    """(total_cycles, overhead_cycles) for one traditional DMA send.

    Overhead subtracts the pure device transfer time (what the engine
    would take with zero software cost), isolating the kernel-path cost
    the paper quotes as "hundreds, possibly thousands of instructions".
    """
    vaddr = machine.kernel.syscalls.alloc(process, nbytes)
    machine.cpu.write_bytes(vaddr, make_payload(nbytes))
    start = machine.clock.now
    machine.kernel.syscalls.dma(
        process,
        device_name=device_name,
        device_offset=0,
        vaddr=vaddr,
        nbytes=nbytes,
        to_device=True,
        bounce=bounce,
    )
    total = machine.clock.now - start
    device = machine.udma.device(device_name)
    pure = machine.tdma_engine.costs.dma_start_cycles + int(
        round(nbytes / machine.costs.dma_bytes_per_cycle)
    ) + device.dma_extra_cycles(0, nbytes)
    return total, max(0, total - pure)
