"""Paper-vs-measured table rendering for the bench harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence


@dataclass(frozen=True)
class Row:
    """One line of a paper-vs-measured table."""

    label: str
    paper: str
    measured: str
    ok: Optional[bool] = None

    @property
    def verdict(self) -> str:
        if self.ok is None:
            return ""
        return "OK" if self.ok else "DIFFERS"


def print_table(title: str, rows: Sequence[Row], notes: Iterable[str] = ()) -> None:
    """Render a fixed-width paper-vs-measured table to stdout."""
    label_w = max([len("quantity")] + [len(r.label) for r in rows])
    paper_w = max([len("paper")] + [len(r.paper) for r in rows])
    meas_w = max([len("measured")] + [len(r.measured) for r in rows])
    line = f"{'-' * (label_w + paper_w + meas_w + 16)}"
    print()
    print(f"== {title} ==")
    print(line)
    print(
        f"{'quantity':<{label_w}}  {'paper':>{paper_w}}  "
        f"{'measured':>{meas_w}}  verdict"
    )
    print(line)
    for row in rows:
        print(
            f"{row.label:<{label_w}}  {row.paper:>{paper_w}}  "
            f"{row.measured:>{meas_w}}  {row.verdict}"
        )
    print(line)
    for note in notes:
        print(f"  note: {note}")


def fmt_pct(value: float) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.1f}%"


def fmt_us(value: float) -> str:
    """Format microseconds."""
    return f"{value:.2f} us"


def fmt_mbs(value: float) -> str:
    """Format bytes/second as MB/s."""
    return f"{value / 1e6:.2f} MB/s"
