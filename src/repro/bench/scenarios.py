"""Multi-process workload driving.

The paper's protection story is about *concurrent, untrusting* processes
sharing one UDMA device under a preemptive scheduler.  The test suite
needs a way to express "process A does this, process B does that, the
scheduler interleaves them at instruction-level quanta" without writing a
thread scheduler.  :class:`WorkloadDriver` does it with generators:

* each workload is a Python generator bound to a process; every ``yield``
  is a potential preemption point;
* the driver round-robins the generators, context-switching the simulated
  machine (which fires the I1 Inval) whenever it moves between processes;
* a deterministic "random" interleaving comes from the seeded quantum
  schedule, so failures replay exactly.

This models precisely the hazard I1 exists for: a workload can yield
*between* the STORE and the LOAD of an initiation sequence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.kernel.process import Process
from repro.machine import Machine

#: a workload body: receives (machine, process), yields at preemption points
Workload = Callable[[Machine, Process], Generator[None, None, None]]


@dataclass
class WorkloadResult:
    """Outcome of one driven workload."""

    name: str
    steps: int = 0
    finished: bool = False
    error: Optional[BaseException] = None


class WorkloadDriver:
    """Round-robin generator scheduler over one machine."""

    def __init__(self, machine: Machine, seed: int = 1) -> None:
        self.machine = machine
        self._rng = random.Random(seed)
        self._entries: List[Tuple[Process, Generator, WorkloadResult]] = []
        self.switches_forced = 0

    def add(self, name: str, workload: Workload) -> WorkloadResult:
        """Create a process and bind a workload generator to it."""
        process = self.machine.create_process(name)
        generator = workload(self.machine, process)
        result = WorkloadResult(name=name)
        self._entries.append((process, generator, result))
        return result

    def run(self, max_quantum: int = 3, max_steps: int = 100_000) -> List[WorkloadResult]:
        """Drive all workloads to completion (or error).

        Each turn advances one workload by 1..max_quantum yields, then
        moves on -- switching the machine's scheduler (and thus firing the
        I1 Inval) whenever the next workload belongs to another process.
        """
        if not self._entries:
            raise ConfigurationError("no workloads added")
        pending = list(self._entries)
        total_steps = 0
        while pending:
            index = self._rng.randrange(len(pending))
            process, generator, result = pending[index]
            if self.machine.kernel.current is not process:
                self.machine.kernel.scheduler.switch_to(process)
                self.switches_forced += 1
            quantum = self._rng.randint(1, max_quantum)
            for _ in range(quantum):
                try:
                    next(generator)
                    result.steps += 1
                except StopIteration:
                    result.finished = True
                    pending.pop(index)
                    break
                except BaseException as exc:  # recorded, not swallowed silently
                    result.error = exc
                    pending.pop(index)
                    break
                total_steps += 1
                if total_steps > max_steps:
                    raise ConfigurationError(
                        f"workloads did not finish within {max_steps} steps"
                    )
        self.machine.run_until_idle()
        return [result for _, __, result in self._entries]

    def results(self) -> Dict[str, WorkloadResult]:
        """Results by workload name."""
        return {result.name: result for _, __, result in self._entries}


# ---------------------------------------------------------------- library
def transfer_workload(
    buffer_pages: int,
    device_name: str,
    pieces: int,
    piece_bytes: int,
    device_offset: int = 0,
) -> Workload:
    """A workload that UDMA-writes ``pieces`` chunks to a device.

    Yields between *every CPU step*, including between the STORE and LOAD
    of each initiation -- the I1 hazard in its natural habitat.
    """
    from repro.bench.workloads import make_payload
    from repro.core.status import UdmaStatus

    def body(machine: Machine, process: Process):
        page = machine.costs.page_size
        vaddr = machine.kernel.syscalls.alloc(process, buffer_pages * page)
        grant = machine.kernel.syscalls.grant_device_proxy(process, device_name)
        yield
        for i in range(pieces):
            data = make_payload(piece_bytes, seed=process.pid * 1000 + i)
            machine.cpu.write_bytes(vaddr, data)
            yield
            dest = grant + device_offset + i * piece_bytes
            for attempt in range(128):
                machine.cpu.store(dest, piece_bytes)
                yield  # <-- preemption possible inside the pair
                machine.cpu.fence()
                word = machine.cpu.load(machine.layout.proxy(vaddr))
                status = UdmaStatus.decode(word, page)
                if status.started:
                    break
                if status.hard_error:
                    raise AssertionError(f"hard error: {status.describe()}")
                yield
            else:
                raise AssertionError("initiation never succeeded")
            # Poll to completion (also preemptible).
            for _ in range(100_000):
                status = UdmaStatus.decode(
                    machine.cpu.load(machine.layout.proxy(vaddr)), page
                )
                if not status.match:
                    break
                next_time = machine.clock.next_event_time()
                if next_time is not None:
                    machine.clock.run(until=next_time)
                yield
            yield

    return body


def paging_workload(pages: int, rounds: int) -> Workload:
    """A memory hog creating paging pressure."""

    def body(machine: Machine, process: Process):
        page = machine.costs.page_size
        vaddr = machine.kernel.syscalls.alloc(process, pages * page)
        yield
        for round_no in range(rounds):
            for i in range(pages):
                machine.cpu.store(vaddr + i * page, round_no * 100 + i)
                yield

    return body
