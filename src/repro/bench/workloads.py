"""Workload generators for the reproduction benches."""

from __future__ import annotations


from typing import List


def make_payload(nbytes: int, seed: int = 1) -> bytes:
    """A deterministic, non-trivial payload of ``nbytes``.

    A repeating LCG byte pattern: cheap to generate, detects both dropped
    and reordered pages at the receiver.
    """
    state = seed & 0xFFFFFFFF or 1
    out = bytearray()
    while len(out) < nbytes:
        state = (state * 1103515245 + 12345) & 0xFFFFFFFF
        out += state.to_bytes(4, "little")
    return bytes(out[:nbytes])


def fig8_sizes() -> List[int]:
    """Message sizes for the Figure 8 sweep (0-8 KB plus the tail).

    The paper plots 0 to 8 KB; we extend to 16 KB to show the plateau is
    sustained, and sample densely around the 4 KB page boundary where the
    curve dips.
    """
    sizes = [64, 128, 256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096]
    sizes += [4096 + 64, 4096 + 512, 5120, 6144, 7168, 8192]
    sizes += [12288, 16384]
    return sizes


def hippi_block_sizes() -> List[int]:
    """Block sizes for the section-1 HIPPI motivation sweep."""
    return [256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536,
            131072, 262144, 524288]


def sweep_sizes(lo: int, hi: int, factor: float = 2.0) -> List[int]:
    """Geometric size sweep from ``lo`` to ``hi`` inclusive."""
    sizes: List[int] = []
    size = lo
    while size < hi:
        sizes.append(int(size))
        size = max(int(size * factor), int(size) + 1)
    sizes.append(hi)
    return sizes
