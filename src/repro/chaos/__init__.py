"""Chaos harness for the UDMA fast paths.

Deterministic adversarial schedules (seeded RNG), always-on invariant
auditing hooked into the event loop, a differential oracle replaying
every schedule with the host fast paths disabled, and a ddmin shrinker
that reduces any failure to a paste-ready minimal reproducer.

Entry points::

    from repro.chaos import run_chaos
    report = run_chaos(seed=7, steps=200, nodes=2)
    assert report.ok

or, from a shell::

    python -m repro chaos --seed 7 --steps 200 --nodes 2
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.chaos.actions import (
    ACTION_WEIGHTS,
    CHURN_WEIGHTS,
    PAGING_WEIGHTS,
    SCHEDULE_PROFILES,
    Action,
    actions_from_json,
    actions_to_json,
    generate_schedule,
)
from repro.chaos.auditor import InvariantAuditor
from repro.chaos.conformance import (
    PROTECTION_BACKENDS,
    ConformanceOracle,
    ConformanceReport,
    ConformanceSuiteReport,
    outcome_class,
    run_conformance_suite,
    write_conformance_artifact,
)
from repro.chaos.explorer import Failure, RunResult, ScheduleExplorer
from repro.chaos.oracle import (
    PAGING_FAULT_KINDS,
    WIRE_FAULT_KINDS,
    ConvergenceReport,
    DeliveryReport,
    DifferentialOracle,
    EventualDeliveryOracle,
    IommuConvergenceOracle,
    OracleReport,
    strip_paging_faults,
    strip_wire_faults,
)
from repro.chaos.shrinker import ShrinkResult, format_repro, shrink
from repro.chaos.world import ChaosWorld

__all__ = [
    "ACTION_WEIGHTS",
    "CHURN_WEIGHTS",
    "PAGING_WEIGHTS",
    "SCHEDULE_PROFILES",
    "Action",
    "ChaosReport",
    "ChaosWorld",
    "ConformanceOracle",
    "ConformanceReport",
    "ConformanceSuiteReport",
    "ConvergenceReport",
    "PROTECTION_BACKENDS",
    "PAGING_FAULT_KINDS",
    "DeliveryReport",
    "DifferentialOracle",
    "EventualDeliveryOracle",
    "Failure",
    "InvariantAuditor",
    "IommuConvergenceOracle",
    "OracleReport",
    "RunResult",
    "ScheduleExplorer",
    "ShrinkResult",
    "WIRE_FAULT_KINDS",
    "actions_from_json",
    "actions_to_json",
    "format_repro",
    "generate_schedule",
    "outcome_class",
    "strip_paging_faults",
    "run_chaos",
    "run_conformance_suite",
    "shrink",
    "strip_wire_faults",
    "write_conformance_artifact",
]


@dataclass
class ChaosReport:
    """Everything one chaos campaign produced."""

    seed: int
    nodes: int
    actions: List[Action]
    fast: RunResult
    oracle: Optional[OracleReport] = None
    delivery: Optional[DeliveryReport] = None
    convergence: Optional[ConvergenceReport] = None
    shrunk: Optional[ShrinkResult] = None
    repro: str = ""
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.fast.ok and not self.mismatches

    @property
    def failure_message(self) -> str:
        if self.fast.failure is not None:
            return self.fast.failure.identity()
        if self.mismatches:
            return self.mismatches[0]
        return ""

    def summary(self) -> str:
        log = self.fast.audit_log
        lines = [
            f"chaos: seed={self.seed} nodes={self.nodes} "
            f"actions={len(self.actions)} applied={len(log)}",
            f"audits: {self.fast.event_audits} event-hook, "
            f"{self.fast.boundary_audits} boundary",
            f"final: t={self.fast.counters.get('now', 0)} "
            f"mem={self.fast.mem_digest}",
        ]
        if self.oracle is not None:
            lines.append(self.oracle.summary())
        if self.delivery is not None:
            lines.append(self.delivery.summary())
        if self.convergence is not None:
            lines.append(self.convergence.summary())
        if self.ok:
            lines.append("result: PASS")
        else:
            lines.append(f"result: FAIL -- {self.failure_message}")
            if self.fast.failure is not None and self.fast.failure.span_context:
                lines.append(f"spans : {self.fast.failure.span_context}")
            if self.shrunk is not None:
                lines.append(
                    f"shrunk: {len(self.actions)} -> "
                    f"{len(self.shrunk.actions)} actions "
                    f"({self.shrunk.evaluations} replays)"
                )
        return "\n".join(lines)


def run_chaos(
    seed: int = 0,
    steps: int = 100,
    nodes: int = 1,
    break_mode: Optional[str] = None,
    diff: bool = True,
    actions: Optional[Sequence[Action]] = None,
    max_shrink_evals: int = 200,
    reliability: bool = False,
    iommu: bool = False,
    profile: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
) -> ChaosReport:
    """Run one chaos campaign: explore, audit, diff, and shrink failures.

    Args:
        seed: schedule RNG seed (ignored when ``actions`` is given).
        steps: schedule length.
        nodes: 1 builds a single node + sink device; >= 2 a cluster ring.
        break_mode: plant a deliberate kernel bug (``"no-inval"`` or
            ``"stale-xlat"``) -- the acceptance check that the harness
            actually catches broken kernels.
        diff: also replay with fast paths disabled and run the oracle.
        actions: replay this explicit schedule instead of generating one.
        max_shrink_evals: ddmin replay budget when a failure needs shrinking.
        reliability: enable the ack/retransmit transport and additionally
            hold the run to the *eventual delivery* standard: wire faults
            must leave final memory bit-identical to the fault-free twin
            of the schedule, with zero lost messages (cluster runs only).
        iommu: enable the virtual-address RDMA tier on every node and
            additionally hold the run to the *convergence* standard:
            paging faults must park-and-replay, leaving logical memory
            bit-identical to the paging-free twin of the schedule with an
            exact delivery ledger (cluster runs only; composes with
            ``reliability`` and the differential oracle).
        profile: schedule profile (see SCHEDULE_PROFILES); defaults to
            ``"paging"`` for iommu campaigns, ``"default"`` otherwise.
        checkpoint_every: snapshot the live world every N actions
            (``repro.snapshot``) so shrink candidates sharing a prefix
            resume from the checkpoint instead of replaying from t=0.
            Exact: the report -- including the shrunk reproducer -- is
            bit-identical with checkpointing on or off.
    """
    if profile is None:
        profile = "paging" if iommu else "default"
    schedule = (
        list(actions)
        if actions is not None
        else generate_schedule(seed, steps, profile=profile)
    )
    explorer = ScheduleExplorer(
        nodes=nodes, break_mode=break_mode, reliability=reliability, iommu=iommu,
        checkpoint_every=checkpoint_every,
    )
    fast = explorer.run(schedule, fast_paths=True)

    report = ChaosReport(seed=seed, nodes=nodes, actions=schedule, fast=fast)
    if diff:
        report.oracle = DifferentialOracle(explorer).compare(schedule, fast=fast)
        report.mismatches = list(report.oracle.mismatches)
    if reliability and nodes >= 2:
        report.delivery = EventualDeliveryOracle(explorer).compare(
            schedule, faulted=fast
        )
        report.mismatches.extend(report.delivery.mismatches)
    if iommu and nodes >= 2:
        report.convergence = IommuConvergenceOracle(explorer).compare(
            schedule, faulted=fast
        )
        report.mismatches.extend(report.convergence.mismatches)

    if report.ok:
        return report

    oracle = DifferentialOracle(explorer) if diff else None
    delivery_oracle = (
        EventualDeliveryOracle(explorer) if reliability and nodes >= 2 else None
    )
    convergence_oracle = (
        IommuConvergenceOracle(explorer) if iommu and nodes >= 2 else None
    )

    def still_fails(candidate: List[Action]) -> bool:
        probe = explorer.run(candidate, fast_paths=True)
        if probe.failure is not None:
            return True
        if oracle is not None and not oracle.compare(candidate, fast=probe).ok:
            return True
        if delivery_oracle is not None and not delivery_oracle.compare(
            candidate, faulted=probe
        ).ok:
            return True
        if convergence_oracle is not None and not convergence_oracle.compare(
            candidate, faulted=probe
        ).ok:
            return True
        return False

    report.shrunk = shrink(schedule, still_fails, max_evals=max_shrink_evals)
    report.repro = format_repro(
        report.shrunk.actions,
        seed=seed,
        nodes=nodes,
        failure_message=report.failure_message,
        break_mode=break_mode,
        span_context=(
            fast.failure.span_context if fast.failure is not None else ""
        ),
    )
    return report
