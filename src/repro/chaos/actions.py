"""Deterministic adversarial schedules: the chaos harness's vocabulary.

A schedule is a flat list of :class:`Action` records generated from one
seeded RNG.  Every parameter an action needs is frozen into the record at
generation time (node, process, page, size, flags), so the same list can
be replayed verbatim against a fresh world -- with fast paths on or off
(the differential oracle), with a deliberately broken kernel (the
fault-finding tests), or with arbitrary subsets removed (the shrinker).
Parameters are interpreted *modulo* the world's dimensions at apply time,
which keeps a schedule meaningful for any node/process count and keeps
shrinking from invalidating later actions.

The action vocabulary is exactly the paper's threat model: UDMA
initiations racing context switches (I1), page-outs/page-ins and
proxy-mapping churn under live transfers (I2/I3), eviction pressure
against pages named by the hardware (I4), permission downgrades and
upgrades, TLB shootdowns, wire-level packet corruption / drop /
duplication / reordering, and device stalls.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, asdict
from typing import Dict, List, Sequence

#: kind -> relative weight in generated schedules.  Mutating workload
#: actions dominate; scheduling and memory-system adversity ride along at
#: rates high enough that a 100-step schedule sees each several times.
ACTION_WEIGHTS: "Dict[str, int]" = {
    "write": 10,      # CPU stores into a buffer (dirties pages, fills xlat)
    "read": 5,        # CPU loads from a buffer
    "send": 10,       # user-level UDMA transfer (sink or NIC channel)
    "recv": 5,        # receiver-side loads of landed data
    "switch": 8,      # context switch (fires the I1 Inval hook)
    "pageout": 5,     # forced eviction through the I4-guarded path
    "clean": 4,       # page cleaning (I3 write-protect / race rule)
    "touch": 4,       # demand page-in via a single load
    "downgrade": 3,   # revoke write permission on a buffer page
    "upgrade": 3,     # restore write permission on a buffer page
    "shootdown": 3,   # TLB flush (asid or full)
    "corrupt": 2,     # arm wire corruption for the next packet(s)
    "drop": 2,        # arm packet drop
    "dup": 2,         # arm packet duplication
    "reorder": 1,     # arm packet reordering (hold one, swap with next)
    "stall": 3,       # device stall: coast the clock with the CPU idle
    "drain": 4,       # run all pending hardware to completion
}

#: The "churn" profile rides two extra kinds on top of the default mix,
#: aimed at the protection surface: "churn" parks/recreates a channel
#: (NIPT clear + free-list recycle + re-export) or revokes/re-grants a
#: device window, and "rawsend" issues an un-padded UDMA transfer whose
#: size can trip the device alignment veto.  The default profile is
#: untouched -- schedules generated without a profile are byte-for-byte
#: what they were before the profile existed.
CHURN_WEIGHTS: "Dict[str, int]" = dict(
    ACTION_WEIGHTS, churn=4, rawsend=4
)

#: The "paging" profile leans hard on the memory system -- forced
#: evictions, page cleaning, and demand page-ins interleaved with sends
#: -- so virtual-address (IOMMU) campaigns reliably drive incoming
#: transfers into the park-and-resume path.  The wire is kept quiet:
#: wire-fault actions arm "the next packet", and *which* packet that is
#: shifts once paging actions are stripped for the convergence twin, so
#: the same armed fault would hit different transfers in the two runs --
#: wire adversity belongs to the reliability standard, not this one.
#: Existing profiles are untouched: same seed, same bytes, forever.
PAGING_WEIGHTS: "Dict[str, int]" = dict(
    ACTION_WEIGHTS,
    pageout=12, clean=6, touch=6, send=12, recv=6,
    corrupt=0, drop=0, dup=0, reorder=0,
)

SCHEDULE_PROFILES: "Dict[str, Dict[str, int]]" = {
    "default": ACTION_WEIGHTS,
    "churn": CHURN_WEIGHTS,
    "paging": PAGING_WEIGHTS,
}


@dataclass(frozen=True)
class Action:
    """One schedule step.  All fields are small ints; see ACTION_WEIGHTS."""

    kind: str
    node: int = 0   # target node (mod world.num_nodes)
    proc: int = 0   # target process on the node (mod processes-per-node)
    page: int = 0   # buffer page / offset selector (mod buffer pages)
    size: int = 1   # transfer / read / stall magnitude in bytes (or cycles)
    arg: int = 0    # misc flags: wait bit, flush flavour, fault count...

    def brief(self) -> str:
        """Compact, deterministic label for audit logs."""
        return (
            f"{self.kind}(n{self.node},p{self.proc},"
            f"pg{self.page},sz{self.size},a{self.arg})"
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Action":
        return cls(
            kind=str(data["kind"]),
            node=int(data.get("node", 0)),
            proc=int(data.get("proc", 0)),
            page=int(data.get("page", 0)),
            size=int(data.get("size", 1)),
            arg=int(data.get("arg", 0)),
        )


def generate_schedule(
    seed: int, steps: int, profile: str = "default"
) -> List[Action]:
    """Generate ``steps`` actions from one seeded RNG, deterministically.

    Uses only ``random.Random`` methods with stable cross-version
    behaviour (``choices`` over a fixed kind list, ``randrange``), so a
    seed printed by a failing CI run reproduces bit-identically anywhere.
    ``profile`` selects the action mix (see SCHEDULE_PROFILES); the
    default mix is frozen -- same seed, same bytes, forever.
    """
    try:
        weight_map = SCHEDULE_PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown schedule profile {profile!r}"
            f" (available: {', '.join(sorted(SCHEDULE_PROFILES))})"
        ) from None
    rng = random.Random(seed)
    kinds = list(weight_map)
    weights = [weight_map[k] for k in kinds]
    schedule: List[Action] = []
    for _ in range(steps):
        kind = rng.choices(kinds, weights=weights)[0]
        schedule.append(
            Action(
                kind=kind,
                node=rng.randrange(64),
                proc=rng.randrange(8),
                page=rng.randrange(64),
                size=1 + rng.randrange(2048),
                arg=rng.randrange(8),
            )
        )
    return schedule


def actions_to_json(actions: Sequence[Action]) -> List[dict]:
    """Schedule -> JSON-ready list (the --replay / reproducer format)."""
    return [a.to_dict() for a in actions]


def actions_from_json(data: Sequence[dict]) -> List[Action]:
    """JSON list -> schedule."""
    return [Action.from_dict(d) for d in data]
