"""Always-on invariant auditing for chaos runs.

:class:`InvariantAuditor` hooks the shared clock so the paper's
invariants are re-checked *continuously* -- after every fired simulation
event, in the middle of transfers, page-outs and context switches -- not
just at the quiet points the ordinary test suite samples.

Two subtleties make continuous auditing different from end-of-test
checking:

* **Mid-switch I1 accounting.**  Inside ``Scheduler.switch_to`` the
  per-controller Invals fire (and are counted) *before* the switch
  counter increments, and the clock advances in between -- so an event
  fired mid-switch legitimately observes ``invals_fired`` up to one
  Inval-per-controller ahead of ``switches * controllers``.  Event-hook
  audits therefore check the window ``s*n <= invals <= s*n + n``; the
  exact equality (the paper's bookkeeping) is enforced by
  :meth:`check_boundary` between actions, where no switch is in flight.

* **Temporal I1 ledger.**  Beyond the instantaneous counter equality, the
  auditor keeps per-node deltas between boundaries: every context switch
  observed since the last boundary must have fired exactly one Inval per
  controller.  This catches a kernel that "fixes up" the counters later.

The hook is a single attribute read on the clock's hot path when
disabled, so production benchmarks pay nothing (the tier-2 gate depends
on that).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import InvariantViolation
from repro.kernel.invariants import InvariantChecker


class InvariantAuditor:
    """Continuous I1-I4 auditing over one :class:`~repro.chaos.world.ChaosWorld`."""

    def __init__(self, world) -> None:
        self.world = world
        self.checkers: List[InvariantChecker] = [
            InvariantChecker(machine.kernel) for machine in world.machines
        ]
        self.event_audits = 0
        self.boundary_audits = 0
        self._installed = False
        # per-node (switches, invals) at the last boundary, for the ledger
        self._ledger: List[Tuple[int, int]] = [
            self._snapshot(i) for i in range(len(self.checkers))
        ]

    # ------------------------------------------------------------ lifecycle
    def install(self) -> None:
        """Start auditing: every fired clock event re-checks the system."""
        self.world.clock.audit_hook = self._on_event
        self._installed = True

    def uninstall(self) -> None:
        if self._installed:
            self.world.clock.audit_hook = None
            self._installed = False

    # ------------------------------------------------------------- checking
    def _on_event(self) -> None:
        """Audit fired after every simulation event (may run mid-switch)."""
        self.event_audits += 1
        for i, checker in enumerate(self.checkers):
            checker.check_i2()
            checker.check_i3()
            checker.check_i4()
            self._check_i1_window(i)

    def _check_i1_window(self, i: int) -> None:
        sched = self.checkers[i].kernel.scheduler
        n = len(sched.udma_controllers)
        low = sched.switches * n
        if not (low <= sched.invals_fired <= low + n):
            raise InvariantViolation(
                "I1",
                f"node {i}: mid-run Inval count {sched.invals_fired} outside "
                f"[{low}, {low + n}] for {sched.switches} switches x "
                f"{n} controllers",
            )

    def check_boundary(self) -> None:
        """Strict audit at an action boundary (no kernel operation mid-flight)."""
        self.boundary_audits += 1
        for i, checker in enumerate(self.checkers):
            checker.check_all()
            self._check_i1_ledger(i)

    def _check_i1_ledger(self, i: int) -> None:
        """Temporal I1: switches since the last boundary each fired n Invals."""
        sched = self.checkers[i].kernel.scheduler
        n = len(sched.udma_controllers)
        prev_switches, prev_invals = self._ledger[i]
        d_switches = sched.switches - prev_switches
        d_invals = sched.invals_fired - prev_invals
        self._ledger[i] = (sched.switches, sched.invals_fired)
        if d_switches < 0 or d_invals != d_switches * n:
            raise InvariantViolation(
                "I1",
                f"node {i}: {d_switches} switches since the last audit "
                f"boundary fired {d_invals} Invals, expected "
                f"{d_switches * n} ({n} controllers)",
            )

    def _snapshot(self, i: int) -> Tuple[int, int]:
        sched = self.checkers[i].kernel.scheduler
        return (sched.switches, sched.invals_fired)
