"""Backend conformance: protection outcomes must not depend on the scheme.

The paper's protection argument is about *outcomes*: which transfers are
allowed, which fault, what lands in memory, and what the NIPT ends up
holding.  The proxy-space decode, a capability table consulted at
initiation, and a pre-validated handler are three mechanically different
ways to make the same decision -- so the repo treats "same decision" as
a testable contract.  This module replays one adversarial schedule once
per :class:`~repro.protection.ProtectionBackend` and diffs the
*timing-free* projection of each run:

* per-action outcome **classes** (``"ok:3p0r"`` -> ``"ok"``): backends
  may legally shift cycle counts (captable/handler charge extra
  initiation-check cycles), so retry/piece counts and clock values are
  excluded from the contract;
* the **protection fault ledger** (``world.protection_faults()``): every
  backend must record the same fault kinds, in the same order;
* the failure identity, if any, compared by **kind and index** (messages
  may embed timestamps);
* the settled **memory digest** and final **NIPT state**: what actually
  landed, and what the hardware ended up trusting.

Within one backend the simulation stays bit-exact deterministic; that is
asserted separately (``check_determinism``) by twin-running the schedule
and requiring byte-identical audit logs.

A failing comparison shrinks (ddmin, via :func:`repro.chaos.shrink`) to
the minimal schedule that still splits the backends, and serialises to a
JSON artifact CI uploads and ``python -m repro chaos --backend ...
--replay`` accepts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.chaos.actions import (
    Action,
    actions_to_json,
    generate_schedule,
)
from repro.chaos.explorer import RunResult, ScheduleExplorer
from repro.chaos.oracle import strip_wire_faults
from repro.chaos.shrinker import ShrinkResult, shrink
from repro.protection import BACKEND_NAMES

#: the stock backends every conformance campaign covers by default
PROTECTION_BACKENDS = BACKEND_NAMES

#: cap on recorded mismatch lines per comparison -- a diverged run can
#: disagree on every action; the first few localise the split
_MISMATCH_CAP = 8


def outcome_class(outcome: str) -> str:
    """Timing-free projection of a world.apply() outcome label.

    Outcomes are ``"class"`` or ``"class:detail"`` where the detail may
    carry piece/retry counts that legally vary across backends (extra
    initiation cycles shift device-busy windows).  Only the class is
    part of the conformance contract.
    """
    return outcome.split(":", 1)[0]


def _failure_identity(result: RunResult) -> str:
    """Backend-comparable failure key: kind and index, not message."""
    if result.failure is None:
        return ""
    return f"{result.failure.kind}@{result.failure.index}"


@dataclass
class ConformanceReport:
    """One schedule, replayed under every backend, diffed."""

    nodes: int
    backends: List[str]
    actions: List[Action]
    #: backend spec -> its run (insertion order == self.backends)
    runs: Dict[str, RunResult] = field(default_factory=dict)
    mismatches: List[str] = field(default_factory=list)
    #: filled by the suite driver when a failing report gets shrunk
    shrunk: Optional[ShrinkResult] = None
    seed: Optional[int] = None

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        ref = self.backends[0]
        lines = [
            f"conformance: backends={','.join(self.backends)} "
            f"nodes={self.nodes} actions={len(self.actions)}"
            + (f" seed={self.seed}" if self.seed is not None else ""),
            f"reference  : {ref} "
            f"mem={self.runs[ref].mem_digest} "
            f"faults={len(self.runs[ref].protection_faults)}",
        ]
        if self.ok:
            lines.append("result: CONFORM")
        else:
            lines.append(f"result: DIVERGE ({len(self.mismatches)} mismatches)")
            lines.extend(f"  {m}" for m in self.mismatches)
            if self.shrunk is not None:
                lines.append(
                    f"shrunk: {len(self.actions)} -> "
                    f"{len(self.shrunk.actions)} actions "
                    f"({self.shrunk.evaluations} replays)"
                )
        return "\n".join(lines)

    def artifact(self) -> dict:
        """JSON-ready reproducer: what CI uploads on divergence.

        The ``actions`` list is the shrunk schedule when shrinking ran,
        the full schedule otherwise; either replays with::

            python -m repro chaos --backend all --nodes N --replay repro.json
        """
        actions = self.shrunk.actions if self.shrunk is not None else self.actions
        return {
            "kind": "protection-conformance",
            "backends": list(self.backends),
            "nodes": self.nodes,
            "seed": self.seed,
            "mismatches": list(self.mismatches),
            "digests": {
                spec: run.mem_digest for spec, run in self.runs.items()
            },
            "actions": actions_to_json(actions),
        }


class ConformanceOracle:
    """Replays one schedule per backend and diffs the projections."""

    def __init__(
        self,
        nodes: int = 2,
        backends: Sequence[str] = PROTECTION_BACKENDS,
        audit: bool = True,
        check_determinism: bool = False,
    ) -> None:
        if len(backends) < 2:
            raise ValueError("conformance needs at least two backends")
        self.nodes = nodes
        self.backends = list(backends)
        self.audit = audit
        self.check_determinism = check_determinism

    def compare(self, actions: Sequence[Action]) -> ConformanceReport:
        # Wire faults arm against "the next packet", and which packet that
        # is depends on timing -- which legitimately differs across
        # backends (captable/handler charge extra initiation cycles that
        # shift how sends from different nodes interleave).  The same
        # armed drop can therefore swallow *different* transfers under
        # different backends, diverging the memory digest without any
        # protection bug.  Strip them, exactly as IommuConvergenceOracle
        # does for its paged-vs-pinned comparison; within-backend wire
        # fault handling is covered by the differential chaos tier.
        actions = strip_wire_faults(actions)
        report = ConformanceReport(
            nodes=self.nodes,
            backends=list(self.backends),
            actions=list(actions),
        )
        for spec in self.backends:
            explorer = ScheduleExplorer(
                nodes=self.nodes, audit=self.audit, protection=spec
            )
            run = explorer.run(actions, fast_paths=True)
            report.runs[spec] = run
            if self.check_determinism:
                twin = explorer.run(actions, fast_paths=True)
                self._diff_twin(report, spec, run, twin)
        ref_spec = self.backends[0]
        for spec in self.backends[1:]:
            self._diff_backend(report, ref_spec, spec)
        return report

    # -- internal ----------------------------------------------------

    @staticmethod
    def _note(report: ConformanceReport, line: str) -> None:
        if len(report.mismatches) < _MISMATCH_CAP:
            report.mismatches.append(line)
        elif len(report.mismatches) == _MISMATCH_CAP:
            report.mismatches.append("... (mismatch cap reached)")

    def _diff_twin(
        self,
        report: ConformanceReport,
        spec: str,
        run: RunResult,
        twin: RunResult,
    ) -> None:
        """Within-backend determinism: twin runs must be bit-exact."""
        if run.audit_log != twin.audit_log:
            self._note(report, f"[{spec}] twin run audit log diverged")
        if run.counters != twin.counters:
            self._note(report, f"[{spec}] twin run counters diverged")
        if run.mem_digest != twin.mem_digest:
            self._note(report, f"[{spec}] twin run memory digest diverged")
        if _failure_identity(run) != _failure_identity(twin):
            self._note(
                report,
                f"[{spec}] twin run failure diverged: "
                f"{_failure_identity(run) or 'ok'} vs "
                f"{_failure_identity(twin) or 'ok'}",
            )

    def _diff_backend(
        self, report: ConformanceReport, ref_spec: str, spec: str
    ) -> None:
        ref = report.runs[ref_spec]
        run = report.runs[spec]
        tag = f"{ref_spec} vs {spec}"

        ref_fail = _failure_identity(ref)
        run_fail = _failure_identity(run)
        if ref_fail != run_fail:
            self._note(
                report,
                f"[{tag}] failure: {ref_fail or 'ok'} vs {run_fail or 'ok'}",
            )

        for i, (a, b) in enumerate(zip(ref.outcomes, run.outcomes)):
            ca, cb = outcome_class(a), outcome_class(b)
            if ca != cb:
                self._note(
                    report,
                    f"[{tag}] action {i} "
                    f"{report.actions[i].brief()}: {ca!r} vs {cb!r}",
                )
        if len(ref.outcomes) != len(run.outcomes):
            self._note(
                report,
                f"[{tag}] applied {len(ref.outcomes)} vs "
                f"{len(run.outcomes)} actions",
            )

        if ref.protection_faults != run.protection_faults:
            self._note(
                report,
                f"[{tag}] protection faults: "
                f"{ref.protection_faults} vs {run.protection_faults}",
            )
        if ref.nipt_state != run.nipt_state:
            self._note(report, f"[{tag}] final NIPT state diverged")
        if ref.mem_digest != run.mem_digest:
            self._note(
                report,
                f"[{tag}] memory digest: "
                f"{ref.mem_digest} vs {run.mem_digest}",
            )


@dataclass
class ConformanceSuiteReport:
    """A seeded campaign of conformance comparisons."""

    nodes: int
    backends: List[str]
    reports: List[ConformanceReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.reports)

    @property
    def first_failure(self) -> Optional[ConformanceReport]:
        for report in self.reports:
            if not report.ok:
                return report
        return None

    def summary(self) -> str:
        passed = sum(1 for r in self.reports if r.ok)
        lines = [
            f"conformance suite: {passed}/{len(self.reports)} schedules "
            f"conform across {','.join(self.backends)} (nodes={self.nodes})",
        ]
        failure = self.first_failure
        if failure is not None:
            lines.append(failure.summary())
        else:
            lines.append("result: PASS")
        return "\n".join(lines)


def run_conformance_suite(
    seeds: Sequence[int],
    steps: int = 40,
    nodes: int = 2,
    backends: Sequence[str] = PROTECTION_BACKENDS,
    profile: str = "churn",
    check_determinism: bool = False,
    max_shrink_evals: int = 200,
) -> ConformanceSuiteReport:
    """Compare backends over a batch of seeded churn schedules.

    Stops at the first diverging seed and shrinks it (every remaining
    backend replay is a full multi-world run; once one seed diverges,
    budget goes to minimising it, not to finding more).
    """
    oracle = ConformanceOracle(
        nodes=nodes, backends=backends, check_determinism=check_determinism
    )
    suite = ConformanceSuiteReport(nodes=nodes, backends=list(backends))
    for seed in seeds:
        actions = generate_schedule(seed, steps, profile=profile)
        report = oracle.compare(actions)
        report.seed = seed
        suite.reports.append(report)
        if not report.ok:
            report.shrunk = shrink(
                actions,
                lambda candidate: not oracle.compare(candidate).ok,
                max_evals=max_shrink_evals,
            )
            break
    return suite


def write_conformance_artifact(report: ConformanceReport, path: str) -> None:
    """Serialise a diverging report's reproducer to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.artifact(), handle, indent=2, sort_keys=True)
        handle.write("\n")
