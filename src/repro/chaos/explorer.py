"""Schedule execution: one deterministic run of an adversarial schedule.

:class:`ScheduleExplorer` owns the replay loop: build a fresh
:class:`~repro.chaos.world.ChaosWorld`, install the
:class:`~repro.chaos.auditor.InvariantAuditor`, apply the actions one by
one with a strict audit at every boundary, then settle all hardware and
audit once more.  The product is a :class:`RunResult`: an audit log (one
line per action, folding in outcome, cycle time and key counters), the
final curated counters and memory digest, and -- if anything went wrong
-- a :class:`Failure` pinpointing the action index.

Audit logs double as the determinism witness (two runs of the same seed
must produce byte-identical logs) and as the differential oracle's
line-by-line comparison medium.

**Checkpoint bisection** (``checkpoint_every=N``): the explorer pickles
the live (world, auditor, partial log) capsule every N actions, keyed by
the exact action prefix that produced it.  A later run whose schedule
shares a checkpointed prefix restores the capsule and replays only the
tail -- which turns ddmin shrinking from quadratic re-execution into
suffix replay, since every shrink candidate shares a long prefix with
the original schedule.  Restore-equivalence (``tests/snapshot/``)
guarantees a restored run is bit-identical to an uninterrupted one, so
checkpointing never changes a run's outcome, log, or shrunk reproducer.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.actions import Action
from repro.chaos.auditor import InvariantAuditor
from repro.chaos.world import ChaosWorld
from repro.errors import InvariantViolation
from repro.snapshot import reattach

#: retained checkpoint capsules per explorer; oldest evicted first.  Deep
#: enough for ddmin (which probes prefixes of one schedule), bounded so a
#: long campaign cannot hold hundreds of pickled worlds.
_CHECKPOINT_CACHE_CAP = 64


@dataclass
class Failure:
    """What stopped a run, and where."""

    index: int          # schedule index of the offending action (-1: settle)
    kind: str           # "invariant" | "crash"
    message: str
    #: causal transfer spans in flight when the run stopped (repro.obs);
    #: diagnostic context only -- NOT part of the failure identity, so
    #: shrinking and the differential oracle stay stable
    span_context: str = ""

    def identity(self) -> str:
        """Comparison key: same failure <=> same kind and message."""
        return f"{self.kind}@{self.index}: {self.message}"


@dataclass
class RunResult:
    """Everything observable about one schedule run."""

    fast_paths: bool
    audit_log: List[str] = field(default_factory=list)
    failure: Optional[Failure] = None
    counters: Dict[str, int] = field(default_factory=dict)
    mem_digest: str = ""
    #: digest of logical (per-address-space) memory; the IOMMU
    #: convergence oracle's comparison medium -- physical images cannot
    #: converge once paging actions are stripped from a schedule
    vm_digest: str = ""
    event_audits: int = 0
    boundary_audits: int = 0
    #: raw per-action outcome labels, in schedule order (the audit log
    #: folds these into timing-bearing lines; the conformance oracle
    #: compares their timing-free *classes* across protection backends)
    outcomes: List[str] = field(default_factory=list)
    #: canonical protection fault ledger (world.protection_faults())
    protection_faults: List[str] = field(default_factory=list)
    #: final per-NIC NIPT snapshot (world.nipt_state())
    nipt_state: Tuple[tuple, ...] = ()

    @property
    def ok(self) -> bool:
        return self.failure is None


class ScheduleExplorer:
    """Runs schedules against fresh worlds, with always-on auditing."""

    def __init__(
        self,
        nodes: int = 1,
        break_mode: Optional[str] = None,
        audit: bool = True,
        reliability: bool = False,
        protection: str = "proxy",
        iommu: bool = False,
        checkpoint_every: Optional[int] = None,
    ) -> None:
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        self.nodes = nodes
        self.break_mode = break_mode
        self.audit = audit
        self.reliability = reliability
        self.protection = protection
        self.iommu = iommu
        self.checkpoint_every = checkpoint_every
        #: (fast_paths, action prefix) -> pickled capsule; insertion order
        #: doubles as the eviction order (oldest first)
        self._checkpoints: Dict[Tuple[bool, Tuple[Action, ...]], bytes] = {}
        #: observability: runs resumed from a capsule / capsules written
        self.checkpoint_hits = 0
        self.checkpoints_stored = 0

    def run(self, actions: Sequence[Action], fast_paths: bool = True) -> RunResult:
        """Replay ``actions`` on a fresh world; never raises for findings."""
        actions = list(actions)
        world = auditor = None
        result = RunResult(fast_paths=fast_paths)
        start = 0
        if self.checkpoint_every:
            resumed = self._resume(actions, fast_paths, result)
            if resumed is not None:
                world, auditor, start = resumed
        if world is None:
            world = ChaosWorld(
                nodes=self.nodes,
                fast_paths=fast_paths,
                break_mode=self.break_mode,
                reliability=self.reliability,
                protection=self.protection,
                iommu=self.iommu,
            )
            auditor = InvariantAuditor(world)
        if self.audit:
            auditor.install()
        every = self.checkpoint_every
        try:
            for i in range(start, len(actions)):
                action = actions[i]
                try:
                    outcome = world.apply(action)
                    if self.audit:
                        auditor.check_boundary()
                except InvariantViolation as exc:
                    result.failure = Failure(i, "invariant", str(exc))
                    break
                except Exception as exc:  # unexpected: a harness/kernel crash
                    result.failure = Failure(
                        i, "crash", f"{type(exc).__name__}: {exc}"
                    )
                    break
                result.outcomes.append(outcome)
                result.audit_log.append(self._log_line(i, action, outcome, world))
                if every and (i + 1) % every == 0 and i + 1 < len(actions):
                    self._store(actions[: i + 1], fast_paths, world, auditor, result)
            if result.failure is None:
                try:
                    world.settle()
                    if self.audit:
                        auditor.check_boundary()
                except InvariantViolation as exc:
                    result.failure = Failure(-1, "invariant", str(exc))
                except Exception as exc:
                    result.failure = Failure(
                        -1, "crash", f"{type(exc).__name__}: {exc}"
                    )
        finally:
            auditor.uninstall()
        if result.failure is not None:
            result.failure.span_context = world.span_context()
        result.counters = world.counters()
        result.mem_digest = world.mem_digest()
        result.vm_digest = world.vm_digest()
        result.protection_faults = world.protection_faults()
        result.nipt_state = world.nipt_state()
        result.event_audits = auditor.event_audits
        result.boundary_audits = auditor.boundary_audits
        return result

    # ---------------------------------------------------------- checkpoints
    def _store(
        self,
        prefix: List[Action],
        fast_paths: bool,
        world: ChaosWorld,
        auditor: InvariantAuditor,
        result: RunResult,
    ) -> None:
        """Capture a capsule for ``prefix`` (the actions applied so far).

        World, auditor and the partial log pickle as one graph, so the
        auditor's checkers keep pointing at the capsule world's kernels.
        Capture must not perturb the run -- guaranteed by the
        restore-equivalence tier, which diffs checkpointed runs against
        uninterrupted ones line by line.
        """
        key = (fast_paths, tuple(prefix))
        if key in self._checkpoints:
            return
        capsule = (world, auditor, result.audit_log, result.outcomes)
        self._checkpoints[key] = pickle.dumps(
            capsule, protocol=pickle.HIGHEST_PROTOCOL
        )
        self.checkpoints_stored += 1
        while len(self._checkpoints) > _CHECKPOINT_CACHE_CAP:
            self._checkpoints.pop(next(iter(self._checkpoints)))

    def _resume(
        self, actions: List[Action], fast_paths: bool, result: RunResult
    ) -> Optional[Tuple[ChaosWorld, InvariantAuditor, int]]:
        """Restore the longest checkpointed prefix of ``actions``, if any.

        Returns ``(world, auditor, k)`` positioned after action ``k - 1``
        with the partial log already copied into ``result``, or ``None``
        when no stored prefix matches.  Every load is a fresh unpickle,
        so a capsule can seed any number of future runs.
        """
        every = self.checkpoint_every
        k = (len(actions) // every) * every
        while k > 0:
            blob = self._checkpoints.get((fast_paths, tuple(actions[:k])))
            if blob is not None:
                world, auditor, log, outcomes = pickle.loads(blob)
                reattach(world)
                result.audit_log.extend(log)
                result.outcomes.extend(outcomes)
                self.checkpoint_hits += 1
                return world, auditor, k
            k -= every
        return None

    @staticmethod
    def _log_line(i: int, action: Action, outcome: str, world: ChaosWorld) -> str:
        faults = sum(m.kernel.vm.faults_handled for m in world.machines)
        switches = sum(m.kernel.scheduler.switches for m in world.machines)
        packets = (
            world.interconnect.packets_routed
            if world.interconnect is not None
            else (world.sink.writes + world.sink.reads if world.sink else 0)
        )
        return (
            f"{i:04d} {action.brief():<36} {outcome:<18} "
            f"t={world.clock.now} f={faults} s={switches} p={packets}"
        )
