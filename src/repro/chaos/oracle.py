"""Differential oracle: the fast paths must be unobservable.

PR 2 introduced two host-side fast paths -- the CPU's generation-stamped
software translation cache and page-run (bulk) buffer I/O.  Their
correctness contract is strong: with fast paths disabled, every simulated
outcome must be **bit-identical** -- same memory contents, same fault
sequence, same cycle counts, same packets.  The oracle enforces that
contract by replaying the exact same schedule against two fresh worlds,
one per mode, and diffing everything observable:

* failure identity (did both runs fail the same way at the same action?),
* the audit log line by line (outcomes embed data checksums, cycle times
  and fault/switch/packet counters, so any drift localises to an action),
* the curated counter set (cycles, references, faults, scheduling,
  packets -- excluding stats that legitimately differ, like TLB hit
  rates),
* a digest of all of physical memory (and the sink device's buffer).

A kernel that breaks the generation discipline ("stale-xlat") passes
every invariant check -- its page tables are internally consistent -- but
cannot pass the oracle: the fast run serves stale translations the
reference run never sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.chaos.actions import Action
from repro.chaos.explorer import RunResult, ScheduleExplorer


@dataclass
class OracleReport:
    """The verdict of one fast-vs-reference comparison."""

    fast: RunResult
    slow: RunResult
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        if self.ok:
            return "oracle: fast and reference runs are bit-identical"
        head = self.mismatches[0]
        more = len(self.mismatches) - 1
        return f"oracle: {head}" + (f" (+{more} more)" if more else "")


class DifferentialOracle:
    """Replays schedules with fast paths toggled and diffs the runs."""

    def __init__(self, explorer: ScheduleExplorer) -> None:
        self.explorer = explorer

    def compare(
        self,
        actions: Sequence[Action],
        fast: Optional[RunResult] = None,
    ) -> OracleReport:
        """Run both modes (reusing ``fast`` if given) and diff them."""
        if fast is None:
            fast = self.explorer.run(actions, fast_paths=True)
        slow = self.explorer.run(actions, fast_paths=False)
        report = OracleReport(fast=fast, slow=slow)
        self._diff(report)
        return report

    # ------------------------------------------------------------- diffing
    def _diff(self, report: OracleReport) -> None:
        fast, slow = report.fast, report.slow
        out = report.mismatches

        fast_fail = fast.failure.identity() if fast.failure else "none"
        slow_fail = slow.failure.identity() if slow.failure else "none"
        if fast_fail != slow_fail:
            out.append(
                f"failure diverges: fast={fast_fail!r} vs reference={slow_fail!r}"
            )

        for i, (a, b) in enumerate(zip(fast.audit_log, slow.audit_log)):
            if a != b:
                out.append(
                    f"audit log diverges at line {i}: "
                    f"fast={a!r} vs reference={b!r}"
                )
                break
        else:
            if len(fast.audit_log) != len(slow.audit_log):
                out.append(
                    f"audit log length diverges: fast={len(fast.audit_log)} "
                    f"vs reference={len(slow.audit_log)}"
                )

        keys = sorted(set(fast.counters) | set(slow.counters))
        for key in keys:
            a, b = fast.counters.get(key), slow.counters.get(key)
            if a != b:
                out.append(f"counter {key}: fast={a} vs reference={b}")

        if fast.mem_digest != slow.mem_digest:
            out.append(
                f"memory digest diverges: fast={fast.mem_digest} "
                f"vs reference={slow.mem_digest}"
            )
