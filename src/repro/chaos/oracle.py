"""Differential oracle: the fast paths must be unobservable.

PR 2 introduced two host-side fast paths -- the CPU's generation-stamped
software translation cache and page-run (bulk) buffer I/O.  Their
correctness contract is strong: with fast paths disabled, every simulated
outcome must be **bit-identical** -- same memory contents, same fault
sequence, same cycle counts, same packets.  The oracle enforces that
contract by replaying the exact same schedule against two fresh worlds,
one per mode, and diffing everything observable:

* failure identity (did both runs fail the same way at the same action?),
* the audit log line by line (outcomes embed data checksums, cycle times
  and fault/switch/packet counters, so any drift localises to an action),
* the curated counter set (cycles, references, faults, scheduling,
  packets -- excluding stats that legitimately differ, like TLB hit
  rates),
* a digest of all of physical memory (and the sink device's buffer).

A kernel that breaks the generation discipline ("stale-xlat") passes
every invariant check -- its page tables are internally consistent -- but
cannot pass the oracle: the fast run serves stale translations the
reference run never sees.

A second oracle covers the reliable transport
(:mod:`repro.net.reliable`): with reliability enabled, wire faults must
be unobservable in the *end state*.  The
:class:`EventualDeliveryOracle` replays each schedule with every
wire-fault action stripped and requires the faulted run to converge to
the same final memory image -- plus a quiesced transport: every tracked
message delivered, nothing in flight, zero ``delivery_failed``.  Unlike
the differential oracle it deliberately ignores audit logs and cycle
counts: retransmission *changes* timing (that is its job); what it must
not change is where the bytes end up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.chaos.actions import Action
from repro.chaos.explorer import RunResult, ScheduleExplorer

#: action kinds that perturb the wire (the faults reliability must absorb)
WIRE_FAULT_KINDS = ("corrupt", "drop", "dup", "reorder")

#: action kinds that perturb paging (the faults the IOMMU's
#: park-and-resume path must absorb): forced evictions are what make a
#: receive-buffer page non-resident under an incoming virtual transfer
PAGING_FAULT_KINDS = ("pageout",)


def strip_wire_faults(actions: Sequence[Action]) -> "List[Action]":
    """The fault-free twin of a schedule: same workload, no wire faults."""
    return [a for a in actions if a.kind not in WIRE_FAULT_KINDS]


def strip_paging_faults(actions: Sequence[Action]) -> "List[Action]":
    """The paging-free twin: same workload, no forced evictions."""
    return [a for a in actions if a.kind not in PAGING_FAULT_KINDS]


@dataclass
class OracleReport:
    """The verdict of one fast-vs-reference comparison."""

    fast: RunResult
    slow: RunResult
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        if self.ok:
            return "oracle: fast and reference runs are bit-identical"
        head = self.mismatches[0]
        more = len(self.mismatches) - 1
        return f"oracle: {head}" + (f" (+{more} more)" if more else "")


class DifferentialOracle:
    """Replays schedules with fast paths toggled and diffs the runs."""

    def __init__(self, explorer: ScheduleExplorer) -> None:
        self.explorer = explorer

    def compare(
        self,
        actions: Sequence[Action],
        fast: Optional[RunResult] = None,
    ) -> OracleReport:
        """Run both modes (reusing ``fast`` if given) and diff them."""
        if fast is None:
            fast = self.explorer.run(actions, fast_paths=True)
        slow = self.explorer.run(actions, fast_paths=False)
        report = OracleReport(fast=fast, slow=slow)
        self._diff(report)
        return report

    # ------------------------------------------------------------- diffing
    def _diff(self, report: OracleReport) -> None:
        fast, slow = report.fast, report.slow
        out = report.mismatches

        fast_fail = fast.failure.identity() if fast.failure else "none"
        slow_fail = slow.failure.identity() if slow.failure else "none"
        if fast_fail != slow_fail:
            out.append(
                f"failure diverges: fast={fast_fail!r} vs reference={slow_fail!r}"
            )

        for i, (a, b) in enumerate(zip(fast.audit_log, slow.audit_log)):
            if a != b:
                out.append(
                    f"audit log diverges at line {i}: "
                    f"fast={a!r} vs reference={b!r}"
                )
                break
        else:
            if len(fast.audit_log) != len(slow.audit_log):
                out.append(
                    f"audit log length diverges: fast={len(fast.audit_log)} "
                    f"vs reference={len(slow.audit_log)}"
                )

        keys = sorted(set(fast.counters) | set(slow.counters))
        for key in keys:
            a, b = fast.counters.get(key), slow.counters.get(key)
            if a != b:
                out.append(f"counter {key}: fast={a} vs reference={b}")

        if fast.mem_digest != slow.mem_digest:
            out.append(
                f"memory digest diverges: fast={fast.mem_digest} "
                f"vs reference={slow.mem_digest}"
            )


@dataclass
class DeliveryReport:
    """The verdict of one faulted-vs-fault-free comparison."""

    faulted: RunResult
    clean: RunResult
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        if self.ok:
            return (
                "delivery oracle: faulted run converged to the fault-free "
                "memory image with zero lost messages"
            )
        head = self.mismatches[0]
        more = len(self.mismatches) - 1
        return f"delivery oracle: {head}" + (f" (+{more} more)" if more else "")


class EventualDeliveryOracle:
    """Asserts wire faults are absorbed, not merely counted.

    Requires an explorer built with ``reliability=True`` (and ``nodes >=
    2`` -- wire faults are a cluster concern).  For a given schedule it
    replays the fault-free twin (wire-fault actions stripped) and
    demands:

    * neither run failed an invariant or crashed,
    * the transport quiesced clean -- every message it tracked was
      delivered and none exhausted its retry budget,
    * the final memory digests are identical.

    Audit logs, cycle counts, and packet counters are deliberately *not*
    compared: retransmission exists to change those.
    """

    def __init__(self, explorer: ScheduleExplorer) -> None:
        if not explorer.reliability:
            raise ValueError(
                "EventualDeliveryOracle needs an explorer with reliability=True"
            )
        self.explorer = explorer

    def compare(
        self,
        actions: Sequence[Action],
        faulted: Optional[RunResult] = None,
    ) -> DeliveryReport:
        """Run faulted and fault-free twins (reusing ``faulted`` if given)."""
        if faulted is None:
            faulted = self.explorer.run(actions)
        clean = self.explorer.run(strip_wire_faults(actions))
        report = DeliveryReport(faulted=faulted, clean=clean)
        self._diff(report)
        return report

    def _diff(self, report: DeliveryReport) -> None:
        faulted, clean = report.faulted, report.clean
        out = report.mismatches
        if faulted.failure is not None:
            out.append(f"faulted run failed: {faulted.failure.identity()}")
        if clean.failure is not None:
            out.append(f"fault-free run failed: {clean.failure.identity()}")
        if out:
            return
        sent = faulted.counters.get("rel.messages_sent", 0)
        delivered = faulted.counters.get("rel.messages_delivered", 0)
        failed = faulted.counters.get("rel.delivery_failed", 0)
        if failed:
            out.append(f"{failed} message(s) exhausted the retry budget")
        if sent != delivered:
            out.append(
                f"lost messages: transport tracked {sent} but delivered "
                f"{delivered}"
            )
        if faulted.mem_digest != clean.mem_digest:
            out.append(
                f"memory digest diverges from the fault-free run: "
                f"faulted={faulted.mem_digest} vs clean={clean.mem_digest}"
            )


@dataclass
class ConvergenceReport:
    """The verdict of one paging-faulted-vs-paging-free comparison."""

    faulted: RunResult
    clean: RunResult
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        if self.ok:
            return (
                "iommu oracle: paging-faulted run converged to the "
                "paging-free logical memory image with an exact delivery "
                "ledger"
            )
        head = self.mismatches[0]
        more = len(self.mismatches) - 1
        return f"iommu oracle: {head}" + (f" (+{more} more)" if more else "")


class IommuConvergenceOracle:
    """Asserts paging faults are absorbed by park-and-resume.

    Requires an explorer built with ``iommu=True`` (and ``nodes >= 2`` --
    the virtual-address tier lives on the cluster receive path).  For a
    given schedule it replays the paging-free twin (every forced-eviction
    action stripped) and demands:

    * neither run failed an invariant or crashed,
    * the IOMMU delivery ledger is *exact* in both runs -- every
      translated transfer was delivered directly, delivered by replay, or
      aborted, with nothing unaccounted (no lost or duplicated
      deliveries),
    * parking never degraded: the faulted run aborted no more transfers
      than its paging-free twin (wire-fault actions can abort transfers
      identically in both runs; paging must not add to that),
    * the final *logical* memory digests are identical
      (:meth:`~repro.chaos.world.ChaosWorld.vm_digest` -- physical
      images cannot converge once evictions are stripped, since frame
      assignment changes).

    Audit logs, cycle counts, and physical digests are deliberately not
    compared: park-and-resume exists to change timing and placement; what
    it must not change is what each address space eventually contains.
    """

    def __init__(self, explorer: ScheduleExplorer) -> None:
        if not explorer.iommu:
            raise ValueError(
                "IommuConvergenceOracle needs an explorer with iommu=True"
            )
        self.explorer = explorer

    def compare(
        self,
        actions: Sequence[Action],
        faulted: Optional[RunResult] = None,
    ) -> ConvergenceReport:
        """Run faulted and paging-free twins (reusing ``faulted`` if given).

        Wire-fault actions are stripped from *both* sides first: an armed
        wire fault hits "the next packet", and which packet that is
        shifts once pageouts are stripped, so the same fault would hit
        different transfers in the two runs.  ``faulted`` is only reused
        when the schedule carried no wire faults (always true for the
        "paging" profile, which zeroes their weights).
        """
        base = strip_wire_faults(actions)
        if faulted is None or len(base) != len(actions):
            faulted = self.explorer.run(base)
        clean = self.explorer.run(strip_paging_faults(base))
        report = ConvergenceReport(faulted=faulted, clean=clean)
        self._diff(report)
        return report

    @staticmethod
    def _ledger(result: RunResult, out: List[str], label: str) -> "tuple[int, int]":
        """Sum the per-node IOMMU ledgers; flag any inexact one."""
        delivered = aborted = 0
        node = 0
        while f"io{node}.translations" in result.counters:
            c = result.counters
            p = f"io{node}."
            total = c[p + "delivered_direct"] + c[p + "delivered_replayed"]
            if total + c[p + "aborted"] != c[p + "translations"]:
                out.append(
                    f"{label} run's node {node} ledger is inexact: "
                    f"{c[p + 'translations']} translations vs "
                    f"{total} delivered + {c[p + 'aborted']} aborted"
                )
            if c[p + "parked_now"]:
                out.append(
                    f"{label} run left {c[p + 'parked_now']} transfer(s) "
                    f"parked on node {node} after settling"
                )
            delivered += total
            aborted += c[p + "aborted"]
            node += 1
        return delivered, aborted

    def _diff(self, report: ConvergenceReport) -> None:
        faulted, clean = report.faulted, report.clean
        out = report.mismatches
        if faulted.failure is not None:
            out.append(f"paging-faulted run failed: {faulted.failure.identity()}")
        if clean.failure is not None:
            out.append(f"paging-free run failed: {clean.failure.identity()}")
        if out:
            return
        f_delivered, f_aborted = self._ledger(faulted, out, "faulted")
        c_delivered, c_aborted = self._ledger(clean, out, "paging-free")
        if f_aborted > c_aborted:
            out.append(
                f"paging degraded {f_aborted - c_aborted} transfer(s) to "
                f"the abort outcome (faulted={f_aborted} vs "
                f"paging-free={c_aborted})"
            )
        if f_delivered != c_delivered:
            out.append(
                f"delivery count diverges: faulted={f_delivered} vs "
                f"paging-free={c_delivered} (lost or duplicated deliveries)"
            )
        if faulted.vm_digest != clean.vm_digest:
            out.append(
                f"logical memory diverges from the paging-free run: "
                f"faulted={faulted.vm_digest} vs clean={clean.vm_digest}"
            )
