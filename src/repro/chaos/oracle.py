"""Differential oracle: the fast paths must be unobservable.

PR 2 introduced two host-side fast paths -- the CPU's generation-stamped
software translation cache and page-run (bulk) buffer I/O.  Their
correctness contract is strong: with fast paths disabled, every simulated
outcome must be **bit-identical** -- same memory contents, same fault
sequence, same cycle counts, same packets.  The oracle enforces that
contract by replaying the exact same schedule against two fresh worlds,
one per mode, and diffing everything observable:

* failure identity (did both runs fail the same way at the same action?),
* the audit log line by line (outcomes embed data checksums, cycle times
  and fault/switch/packet counters, so any drift localises to an action),
* the curated counter set (cycles, references, faults, scheduling,
  packets -- excluding stats that legitimately differ, like TLB hit
  rates),
* a digest of all of physical memory (and the sink device's buffer).

A kernel that breaks the generation discipline ("stale-xlat") passes
every invariant check -- its page tables are internally consistent -- but
cannot pass the oracle: the fast run serves stale translations the
reference run never sees.

A second oracle covers the reliable transport
(:mod:`repro.net.reliable`): with reliability enabled, wire faults must
be unobservable in the *end state*.  The
:class:`EventualDeliveryOracle` replays each schedule with every
wire-fault action stripped and requires the faulted run to converge to
the same final memory image -- plus a quiesced transport: every tracked
message delivered, nothing in flight, zero ``delivery_failed``.  Unlike
the differential oracle it deliberately ignores audit logs and cycle
counts: retransmission *changes* timing (that is its job); what it must
not change is where the bytes end up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.chaos.actions import Action
from repro.chaos.explorer import RunResult, ScheduleExplorer

#: action kinds that perturb the wire (the faults reliability must absorb)
WIRE_FAULT_KINDS = ("corrupt", "drop", "dup", "reorder")


def strip_wire_faults(actions: Sequence[Action]) -> "List[Action]":
    """The fault-free twin of a schedule: same workload, no wire faults."""
    return [a for a in actions if a.kind not in WIRE_FAULT_KINDS]


@dataclass
class OracleReport:
    """The verdict of one fast-vs-reference comparison."""

    fast: RunResult
    slow: RunResult
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        if self.ok:
            return "oracle: fast and reference runs are bit-identical"
        head = self.mismatches[0]
        more = len(self.mismatches) - 1
        return f"oracle: {head}" + (f" (+{more} more)" if more else "")


class DifferentialOracle:
    """Replays schedules with fast paths toggled and diffs the runs."""

    def __init__(self, explorer: ScheduleExplorer) -> None:
        self.explorer = explorer

    def compare(
        self,
        actions: Sequence[Action],
        fast: Optional[RunResult] = None,
    ) -> OracleReport:
        """Run both modes (reusing ``fast`` if given) and diff them."""
        if fast is None:
            fast = self.explorer.run(actions, fast_paths=True)
        slow = self.explorer.run(actions, fast_paths=False)
        report = OracleReport(fast=fast, slow=slow)
        self._diff(report)
        return report

    # ------------------------------------------------------------- diffing
    def _diff(self, report: OracleReport) -> None:
        fast, slow = report.fast, report.slow
        out = report.mismatches

        fast_fail = fast.failure.identity() if fast.failure else "none"
        slow_fail = slow.failure.identity() if slow.failure else "none"
        if fast_fail != slow_fail:
            out.append(
                f"failure diverges: fast={fast_fail!r} vs reference={slow_fail!r}"
            )

        for i, (a, b) in enumerate(zip(fast.audit_log, slow.audit_log)):
            if a != b:
                out.append(
                    f"audit log diverges at line {i}: "
                    f"fast={a!r} vs reference={b!r}"
                )
                break
        else:
            if len(fast.audit_log) != len(slow.audit_log):
                out.append(
                    f"audit log length diverges: fast={len(fast.audit_log)} "
                    f"vs reference={len(slow.audit_log)}"
                )

        keys = sorted(set(fast.counters) | set(slow.counters))
        for key in keys:
            a, b = fast.counters.get(key), slow.counters.get(key)
            if a != b:
                out.append(f"counter {key}: fast={a} vs reference={b}")

        if fast.mem_digest != slow.mem_digest:
            out.append(
                f"memory digest diverges: fast={fast.mem_digest} "
                f"vs reference={slow.mem_digest}"
            )


@dataclass
class DeliveryReport:
    """The verdict of one faulted-vs-fault-free comparison."""

    faulted: RunResult
    clean: RunResult
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        if self.ok:
            return (
                "delivery oracle: faulted run converged to the fault-free "
                "memory image with zero lost messages"
            )
        head = self.mismatches[0]
        more = len(self.mismatches) - 1
        return f"delivery oracle: {head}" + (f" (+{more} more)" if more else "")


class EventualDeliveryOracle:
    """Asserts wire faults are absorbed, not merely counted.

    Requires an explorer built with ``reliability=True`` (and ``nodes >=
    2`` -- wire faults are a cluster concern).  For a given schedule it
    replays the fault-free twin (wire-fault actions stripped) and
    demands:

    * neither run failed an invariant or crashed,
    * the transport quiesced clean -- every message it tracked was
      delivered and none exhausted its retry budget,
    * the final memory digests are identical.

    Audit logs, cycle counts, and packet counters are deliberately *not*
    compared: retransmission exists to change those.
    """

    def __init__(self, explorer: ScheduleExplorer) -> None:
        if not explorer.reliability:
            raise ValueError(
                "EventualDeliveryOracle needs an explorer with reliability=True"
            )
        self.explorer = explorer

    def compare(
        self,
        actions: Sequence[Action],
        faulted: Optional[RunResult] = None,
    ) -> DeliveryReport:
        """Run faulted and fault-free twins (reusing ``faulted`` if given)."""
        if faulted is None:
            faulted = self.explorer.run(actions)
        clean = self.explorer.run(strip_wire_faults(actions))
        report = DeliveryReport(faulted=faulted, clean=clean)
        self._diff(report)
        return report

    def _diff(self, report: DeliveryReport) -> None:
        faulted, clean = report.faulted, report.clean
        out = report.mismatches
        if faulted.failure is not None:
            out.append(f"faulted run failed: {faulted.failure.identity()}")
        if clean.failure is not None:
            out.append(f"fault-free run failed: {clean.failure.identity()}")
        if out:
            return
        sent = faulted.counters.get("rel.messages_sent", 0)
        delivered = faulted.counters.get("rel.messages_delivered", 0)
        failed = faulted.counters.get("rel.delivery_failed", 0)
        if failed:
            out.append(f"{failed} message(s) exhausted the retry budget")
        if sent != delivered:
            out.append(
                f"lost messages: transport tracked {sent} but delivered "
                f"{delivered}"
            )
        if faulted.mem_digest != clean.mem_digest:
            out.append(
                f"memory digest diverges from the fault-free run: "
                f"faulted={faulted.mem_digest} vs clean={clean.mem_digest}"
            )
