"""Differential oracle for the sharded PDES engine.

The contract under test (``docs/SHARDING.md``): a sharded run is
**bit-identical** to the single-process reference on the per-node audit
logs, the per-node memory digests, and the curated counters -- for any
shard count and either engine.  The oracle runs the reference, then the
candidate, and diffs the three surfaces; a failing spec serialises to a
JSON artifact so CI can upload it and anyone can replay it:

    python -m repro chaos --shards 4 --replay-spec artifact.json
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sharding import ClusterSpec, ShardRunResult, run_sharded


@dataclass
class ShardingReport:
    """The verdict of one sharded-vs-reference comparison.

    ``mode`` names the axis under test: ``"shards"`` diffs a K-shard run
    against the single-process reference; ``"pooling"`` diffs a pooled
    run against the same schedule with the free-list fast lane disabled
    (the ``--no-pool`` differential).  Both demand bit-identity on the
    same three surfaces.
    """

    spec: ClusterSpec
    num_shards: int
    engine: str
    mode: str = "shards"
    reference: Optional[ShardRunResult] = None
    sharded: Optional[ShardRunResult] = None
    mismatches: List[str] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.mismatches and self.error is None

    def summary(self) -> str:
        if self.mode == "pooling":
            what = (
                f"pooled {self.num_shards}-shard {self.engine} run "
                f"({self.spec.num_nodes}-node {self.spec.topology}, "
                f"seed {self.spec.seed}, gap {self.spec.gap_cycles}) "
                f"vs pooling off"
            )
            name = "pooling oracle"
        else:
            what = (
                f"{self.num_shards}-shard {self.engine} run "
                f"({self.spec.num_nodes}-node {self.spec.topology}, "
                f"seed {self.spec.seed}, gap {self.spec.gap_cycles})"
            )
            name = "sharding oracle"
        if self.ok:
            return f"{name}: {what} is bit-identical to the reference"
        if self.error is not None:
            return f"{name}: {what} FAILED to run: {self.error}"
        head = self.mismatches[0]
        more = len(self.mismatches) - 1
        return (
            f"{name}: {what} DIVERGED: {head}"
            + (f" (+{more} more)" if more else "")
        )

    def artifact(self) -> str:
        """The failing schedule as a replayable JSON artifact."""
        return json.dumps(
            {
                "kind": (
                    "pooling-differential-failure"
                    if self.mode == "pooling"
                    else "sharding-differential-failure"
                ),
                "spec": self.spec.as_dict(),
                "num_shards": self.num_shards,
                "engine": self.engine,
                "mode": self.mode,
                "error": self.error,
                "mismatches": self.mismatches[:50],
            },
            indent=2,
        )


class ShardingOracle:
    """Runs reference and sharded twins of a spec and diffs them."""

    def __init__(self, audit: bool = True) -> None:
        #: audit=True additionally checks every kernel invariant at
        #: every operation boundary of both runs
        self.audit = audit

    def compare(
        self,
        spec: ClusterSpec,
        num_shards: int,
        engine: str = "in-process",
        reference: Optional[ShardRunResult] = None,
    ) -> ShardingReport:
        report = ShardingReport(
            spec=spec, num_shards=num_shards, engine=engine
        )
        try:
            if reference is None:
                reference = run_sharded(spec, num_shards=1, audit=self.audit)
            report.reference = reference
            report.sharded = run_sharded(
                spec, num_shards=num_shards, engine=engine, audit=self.audit
            )
        except Exception as exc:
            report.error = f"{type(exc).__name__}: {exc}"
            return report
        self._diff(report)
        return report

    def compare_pooling(
        self,
        spec: ClusterSpec,
        num_shards: int = 1,
        engine: str = "in-process",
    ) -> ShardingReport:
        """Diff one schedule run pooled vs with the fast lane disabled.

        The reference is the spec with ``pooling=False`` (every event,
        packet and wire buffer freshly allocated, no batched send
        initiation); the candidate re-runs the *same* schedule pooled.
        Any divergence in audit logs, memory digests or curated counters
        means the fast lane changed the simulation, not just host time.
        """
        report = ShardingReport(
            spec=spec, num_shards=num_shards, engine=engine, mode="pooling"
        )
        try:
            report.reference = run_sharded(
                dataclasses.replace(spec, pooling=False),
                num_shards=num_shards, engine=engine, audit=self.audit,
            )
            report.sharded = run_sharded(
                dataclasses.replace(spec, pooling=True),
                num_shards=num_shards, engine=engine, audit=self.audit,
            )
        except Exception as exc:
            report.error = f"{type(exc).__name__}: {exc}"
            return report
        self._diff(report)
        return report

    # ------------------------------------------------------------- diffing
    def _diff(self, report: ShardingReport) -> None:
        ref, cand = report.reference, report.sharded
        assert ref is not None and cand is not None
        out = report.mismatches

        for i, (a, b) in enumerate(zip(ref.logs, cand.logs)):
            if a != b:
                out.append(
                    f"audit log diverges at line {i}: "
                    f"reference={a!r} vs sharded={b!r}"
                )
                break
        else:
            if len(ref.logs) != len(cand.logs):
                out.append(
                    f"audit log length diverges: reference={len(ref.logs)} "
                    f"vs sharded={len(cand.logs)}"
                )

        for node in sorted(set(ref.digests) | set(cand.digests)):
            a, b = ref.digests.get(node), cand.digests.get(node)
            if a != b:
                out.append(
                    f"memory digest diverges on {node}: "
                    f"reference={a} vs sharded={b}"
                )

        ref_counters = ref.curated_counters()
        cand_counters = cand.curated_counters()
        for key in sorted(set(ref_counters) | set(cand_counters)):
            a, b = ref_counters.get(key), cand_counters.get(key)
            if a != b:
                out.append(
                    f"counter {key}: reference={a} vs sharded={b}"
                )


def suite_specs(
    num_nodes: int = 16,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    iommu: bool = False,
) -> List[ClusterSpec]:
    """The seeded schedule suite: jittered starts, contention, torus.

    Every spec is pure data -- the suite is derandomized by construction
    (the seed perturbs per-node start offsets, nothing else).  With
    ``iommu`` every spec runs the virtual-address RDMA tier: receive
    buffers start cold, so every node's first deliveries take the
    park / fault-service / replay path and the differential holds *that*
    machinery to bit-identity across shard counts.
    """
    specs = [
        ClusterSpec(
            num_nodes=num_nodes, topology="mesh2d", seed=seed, iommu=iommu
        )
        for seed in seeds
    ]
    # Contention twin: gap far below the transfer time, so every node
    # exercises the busy-device retry path.
    specs.append(
        ClusterSpec(
            num_nodes=num_nodes, topology="mesh2d", seed=seeds[0],
            gap_cycles=200, iommu=iommu,
        )
    )
    specs.append(
        ClusterSpec(
            num_nodes=num_nodes, topology="torus2d", seed=seeds[0],
            iommu=iommu,
        )
    )
    return specs


def run_sharding_suite(
    num_shards: int,
    num_nodes: int = 16,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    engine: str = "in-process",
    audit: bool = True,
    also_worker: bool = False,
    iommu: bool = False,
) -> List[ShardingReport]:
    """Run the whole differential suite; every report should be ``ok``.

    ``also_worker=True`` re-checks each spec under the multi-process
    engine (reusing the same reference run).  ``iommu=True`` runs the
    suite with the virtual-address RDMA tier on every node.
    """
    oracle = ShardingOracle(audit=audit)
    reports: List[ShardingReport] = []
    for spec in suite_specs(num_nodes=num_nodes, seeds=seeds, iommu=iommu):
        report = oracle.compare(spec, num_shards, engine=engine)
        reports.append(report)
        if also_worker:
            reports.append(
                oracle.compare(
                    spec, num_shards, engine="worker",
                    reference=report.reference,
                )
            )
    return reports


def run_pooling_suite(
    num_shards: int = 1,
    num_nodes: int = 16,
    seeds: Sequence[int] = (0, 1, 2),
    engine: str = "in-process",
    audit: bool = True,
    iommu: bool = False,
) -> List[ShardingReport]:
    """The ``--no-pool`` differential over the seeded schedule suite.

    Every spec runs twice at the *same* shard count -- fast lane off,
    then on -- and must be bit-identical on audit logs, digests and
    curated counters.
    """
    oracle = ShardingOracle(audit=audit)
    return [
        oracle.compare_pooling(spec, num_shards=num_shards, engine=engine)
        for spec in suite_specs(num_nodes=num_nodes, seeds=seeds, iommu=iommu)
    ]
