"""Schedule shrinking: reduce a failing schedule to a minimal reproducer.

Classic delta debugging (Zeller's ddmin) over the action list.  Actions
are world-shape independent -- every parameter is taken modulo the live
world's dimensions at apply time -- so *any* subsequence is a valid
schedule and the predicate can be re-evaluated on arbitrary subsets.

The predicate is "does this subsequence still fail?", where "fail" is
whatever the caller observed on the full schedule: an invariant/crash
failure in the fast run, or a differential-oracle mismatch.  Each
evaluation replays the candidate on fresh worlds, so shrinking is
deterministic and side-effect free; an evaluation budget keeps the worst
case bounded for CI.

The output is paste-ready: :func:`format_repro` emits the seed, the exact
CLI command that replays the minimal schedule, and the action list as
JSON the CLI's ``--replay`` flag accepts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.chaos.actions import Action, actions_to_json


@dataclass
class ShrinkResult:
    """The minimal failing schedule ddmin converged on."""

    actions: List[Action]
    evaluations: int
    exhausted_budget: bool


def shrink(
    actions: Sequence[Action],
    still_fails: Callable[[List[Action]], bool],
    max_evals: int = 200,
) -> ShrinkResult:
    """ddmin: smallest subsequence of ``actions`` with ``still_fails`` true.

    ``still_fails`` must be true for the full input (the caller verified
    the failure before shrinking).  Budget ``max_evals`` bounds predicate
    evaluations; on exhaustion the best reduction so far is returned.
    """
    current = list(actions)
    evals = 0
    exhausted = False
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current):
            if evals >= max_evals:
                exhausted = True
                break
            candidate = current[:start] + current[start + chunk:]
            if not candidate:
                start += chunk
                continue
            evals += 1
            if still_fails(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                # restart scanning the shrunk schedule from the beginning
                start = 0
                chunk = max(1, len(current) // granularity)
            else:
                start += chunk
        if exhausted:
            break
        if not reduced:
            if chunk == 1:
                break  # 1-minimal: no single action can be removed
            granularity = min(granularity * 2, len(current))
    return ShrinkResult(actions=current, evaluations=evals, exhausted_budget=exhausted)


def format_repro(
    actions: Sequence[Action],
    seed: int,
    nodes: int,
    failure_message: str,
    break_mode: Optional[str] = None,
    span_context: str = "",
) -> str:
    """Paste-ready minimal reproducer: CLI command + JSON schedule.

    ``span_context`` is the causal-transfer context from the failing run
    (``ChaosWorld.span_context()``); it rides along as a diagnostic line
    but is not part of the failure identity.
    """
    brk = f" --break {break_mode}" if break_mode else ""
    lines = [
        "=== chaos minimal reproducer ===",
        f"failure : {failure_message}",
    ]
    if span_context:
        lines.append(f"spans   : {span_context}")
    lines += [
        f"actions : {len(actions)} (from seed {seed})",
        "replay  : save the JSON below to repro.json, then run",
        f"          python -m repro chaos --nodes {nodes}{brk} --replay repro.json",
        json.dumps(actions_to_json(actions), indent=None, separators=(",", ":")),
    ]
    return "\n".join(lines)
