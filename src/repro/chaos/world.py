"""The chaos world: a node or cluster plus the action interpreter.

:class:`ChaosWorld` assembles a workload-ready system (single node with a
sink device, or a ShrimpCluster ring of deliberate-update channels) and
knows how to apply one :class:`~repro.chaos.actions.Action` at a time.
Everything it does is deterministic: outcomes of user-visible errors are
folded into the returned outcome string (they are *expected* under
adversarial schedules), read/recv actions fold a payload checksum into
the outcome so the audit log witnesses data contents, and the same
schedule applied to two fresh worlds -- fast paths on or off -- must
produce identical logs, cycle counts, and memory images.

The world also owns the two *deliberate kernel bugs* the acceptance tests
plant (``break_mode``):

* ``"no-inval"`` -- the scheduler forgets the I1 Inval on every context
  switch (modelled by hiding the controller list for the duration of each
  ``switch_to``, so the I1 ledger still knows how many Invals were owed).
* ``"stale-xlat"`` -- the kernel edits page tables and shoots down TLBs
  *without* bumping the generation counters the CPU's software
  translation cache is stamped with, so the fast path keeps serving stale
  translations.  The invariant checkers cannot see this (the page tables
  themselves stay consistent); only the differential oracle catches it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.bench.workloads import make_payload
from repro.chaos.actions import Action
from repro.cluster import ShrimpCluster
from repro.config import ClusterConfig, IommuConfig, MachineConfig
from repro.devices.sink import SinkDevice
from repro.errors import ConfigurationError, InvariantViolation, ReproError
from repro.kernel.process import Process
from repro.machine import Machine
from repro.obs import ObsConfig
from repro.params import shrimp
from repro.userlib.messaging import Receiver, Sender
from repro.userlib.udma import DeviceRef, MemoryRef, UdmaUser

#: bounded spin limits so adversarial schedules fail fast (DmaError
#: outcome) instead of polling for a million iterations
_RETRY_LIMIT = 16
_POLL_LIMIT = 50_000

BREAK_MODES = (None, "no-inval", "stale-xlat")

#: the IOMMU tier chaos worlds run under: bounds generous enough that an
#: adversarial paging schedule can never trip the degradation paths
#: (queue-full / park-budget aborts change the outcome, and the
#: convergence oracle requires faulted runs to *converge*, not degrade).
#: The degradation paths are exercised by directed unit tests instead.
CHAOS_IOMMU = IommuConfig(iotlb_entries=64, fault_queue_depth=256, park_budget=8)


@dataclass
class _ProcRig:
    """One workload process and its buffer (plus UDMA runtime if any)."""

    machine: Machine
    process: Process
    buffer: int
    buf_bytes: int
    buf_pages: int
    udma: Optional[UdmaUser] = None
    grant: Optional[int] = None


class _NoInvalSwitch:
    """The planted I1 bug: ``switch_to`` with the controller list hidden.

    Installed as an instance attribute shadowing the scheduler's method.
    Calls the method through ``type(sched)`` so it keeps working after a
    pickle round trip (see the deliberate-bugs note in ChaosWorld).
    """

    __slots__ = ("sched",)

    def __init__(self, sched) -> None:
        self.sched = sched

    def __call__(self, process) -> None:
        sched = self.sched
        saved = sched.udma_controllers
        sched.udma_controllers = []
        try:
            type(sched).switch_to(sched, process)
        finally:
            sched.udma_controllers = saved


class _GenerationFreeze:
    """The planted stale-xlat bug: one method with its generation bump undone.

    Shadows ``name`` on ``obj`` and restores ``obj.generation`` after
    each call, so fast-path stamps never see mapping changes.
    """

    __slots__ = ("obj", "name")

    def __init__(self, obj, name: str) -> None:
        self.obj = obj
        self.name = name

    def __call__(self, *args, **kwargs):
        obj = self.obj
        before = obj.generation
        try:
            return getattr(type(obj), self.name)(obj, *args, **kwargs)
        finally:
            obj.generation = before


class _RecordingRoute:
    """Armed-fault route shadow: remembers (src, dst) for the injector."""

    __slots__ = ("world", "ic")

    def __init__(self, world: "ChaosWorld", ic) -> None:
        self.world = world
        self.ic = ic

    def __call__(self, src: int, dst: int, wire) -> None:
        self.world._route_ctx = (src, dst)
        type(self.ic).route(self.ic, src, dst, wire)


class ChaosWorld:
    """A fresh system under test plus the action interpreter."""

    PROC_BUF_PAGES = 6    # single-node per-process buffer length
    CHANNEL_PAGES = 4     # cluster channel / send-buffer length
    SINK_PAGES = 16       # single-node sink device window

    def __init__(
        self,
        nodes: int = 1,
        fast_paths: bool = True,
        break_mode: Optional[str] = None,
        reliability: bool = False,
        protection: str = "proxy",
        iommu: bool = False,
    ) -> None:
        if break_mode not in BREAK_MODES:
            raise ConfigurationError(f"unknown break mode {break_mode!r}")
        if iommu and nodes < 2:
            raise ConfigurationError(
                "iommu chaos worlds need a cluster (nodes >= 2): the "
                "virtual-address tier lives on the receive path"
            )
        self.fast_paths = fast_paths
        self.break_mode = break_mode
        #: ack/retransmit transport under test (cluster worlds only); off
        #: keeps every audit log and counter bit-identical to history
        self.reliability = reliability
        #: protection-backend spec (see repro.protection.make_backend);
        #: the default "proxy" is bit-identical to pre-backend history
        self.protection = protection
        #: virtual-address RDMA tier under test: channels carry
        #: (asid, vpage) destinations, receive buffers are unpinned, and
        #: paging actions can force park-and-replay on the receive path
        self.iommu = iommu
        self.num_nodes = max(1, nodes)
        self.costs = shrimp()
        self.page_size = self.costs.page_size
        self.word_size = self.costs.word_size

        self.cluster: Optional[ShrimpCluster] = None
        self.sink: Optional[SinkDevice] = None
        self.senders: List[Sender] = []
        self.receivers: List[Receiver] = []
        self._rigs: List[List[_ProcRig]] = []  # [node][proc]

        # channel-churn state: at most one channel is "parked" (released)
        # at a time, so the first-fit NIPT free list hands the same base
        # back on recreate and schedules stay deterministic
        self._parked: "Optional[Tuple[int, object]]" = None
        self._rx_procs: List[Process] = []
        self._rx_bufs: List[int] = []

        # fault-injection arming state (cluster only)
        self._armed: Optional[list] = None  # [mode, remaining, salt]
        self._held: List[Tuple[int, int, bytes]] = []
        self._route_ctx: Tuple[int, int] = (0, 0)

        if self.num_nodes == 1:
            self._build_single()
        else:
            self._build_cluster()

        if break_mode == "no-inval":
            self._break_no_inval()
        elif break_mode == "stale-xlat":
            self._break_stale_xlat()

    # ------------------------------------------------------------ assembly
    def _build_single(self) -> None:
        ps = self.page_size
        machine = Machine(
            config=MachineConfig(
                costs=self.costs,
                mem_size=96 * ps,
                fast_paths=self.fast_paths,
                # Spans are host-side and deterministic, so they are safe
                # under the differential oracle; failures get causal context.
                obs=ObsConfig(spans=True),
                protection=self.protection,
            )
        )
        self.spans = machine.obs.spans
        self.machines = [machine]
        self.clock = machine.clock
        self.interconnect = None
        self.sink = SinkDevice("sink", size=self.SINK_PAGES * ps, alignment=0)
        machine.attach_device(self.sink)
        rigs: List[_ProcRig] = []
        for j in range(2):
            process = machine.create_process(f"p{j}")
            buffer = machine.kernel.syscalls.alloc(process, self.PROC_BUF_PAGES * ps)
            grant = machine.kernel.syscalls.grant_device_proxy(process, "sink")
            udma = UdmaUser(
                machine, process,
                retry_limit=_RETRY_LIMIT, poll_limit=_POLL_LIMIT,
            )
            rigs.append(
                _ProcRig(
                    machine=machine,
                    process=process,
                    buffer=buffer,
                    buf_bytes=self.PROC_BUF_PAGES * ps,
                    buf_pages=self.PROC_BUF_PAGES,
                    udma=udma,
                    grant=grant,
                )
            )
        self._rigs = [rigs]

    def _build_cluster(self) -> None:
        ps = self.page_size
        cluster = ShrimpCluster(
            config=ClusterConfig(
                num_nodes=self.num_nodes,
                costs=self.costs,
                mem_size=96 * ps,
                fast_paths=self.fast_paths,
                obs=ObsConfig(spans=True),
                reliability=self.reliability,
                protection=self.protection,
                iommu=CHAOS_IOMMU if self.iommu else False,
            )
        )
        self.spans = cluster.obs.spans
        self.cluster = cluster
        self.machines = list(cluster.nodes)
        self.clock = cluster.clock
        self.interconnect = cluster.interconnect
        nbytes = self.CHANNEL_PAGES * ps

        rx_procs: List[Process] = []
        rx_bufs: List[int] = []
        for i in range(self.num_nodes):
            proc = cluster.node(i).create_process(f"rx{i}")
            rx_procs.append(proc)
            rx_bufs.append(cluster.node(i).kernel.syscalls.alloc(proc, nbytes))
        self._rx_procs = rx_procs
        self._rx_bufs = rx_bufs

        # A ring of channels: node i sends to node (i + 1) % N.
        for i in range(self.num_nodes):
            dst = (i + 1) % self.num_nodes
            channel = cluster.create_channel(i, dst, rx_procs[dst], rx_bufs[dst], nbytes)
            tx = cluster.node(i).create_process(f"tx{i}")
            sender = Sender(cluster, tx, channel)
            sender.udma.retry_limit = _RETRY_LIMIT
            sender.udma.poll_limit = _POLL_LIMIT
            self.senders.append(sender)
            self.receivers.append(Receiver(cluster, rx_procs[dst], channel))

        self._rigs = []
        for i in range(self.num_nodes):
            sender = self.senders[i]
            rigs = [
                _ProcRig(
                    machine=cluster.node(i),
                    process=sender.process,
                    buffer=sender.buffer,
                    buf_bytes=sender.buffer_bytes,
                    buf_pages=sender.buffer_bytes // ps,
                    udma=sender.udma,
                ),
                _ProcRig(
                    machine=cluster.node(i),
                    process=rx_procs[i],
                    buffer=rx_bufs[i],
                    buf_bytes=nbytes,
                    buf_pages=self.CHANNEL_PAGES,
                ),
            ]
            if self.iommu:
                # IOMMU worlds get a third, DMA-free scratch process per
                # node and route CPU "write" actions to it (_write_rig):
                # a store racing an in-flight transfer -- a pending source
                # read of the tx buffer, or a parked delivery into the rx
                # buffer -- has a timing-dependent outcome, which is an
                # application bug, not a convergence failure.  Scratch
                # writes keep the dirty-page / eviction pressure the
                # paging campaign needs without touching DMA-visible
                # memory.
                scratch = cluster.node(i).create_process(f"sc{i}")
                sc_buf = cluster.node(i).kernel.syscalls.alloc(
                    scratch, self.PROC_BUF_PAGES * ps
                )
                rigs.append(
                    _ProcRig(
                        machine=cluster.node(i),
                        process=scratch,
                        buffer=sc_buf,
                        buf_bytes=self.PROC_BUF_PAGES * ps,
                        buf_pages=self.PROC_BUF_PAGES,
                    )
                )
            self._rigs.append(rigs)

    # ------------------------------------------------------- deliberate bugs
    # The planted bugs shadow methods with *instance* attributes.  The
    # shadows are callable classes, not closures: a broken world must
    # survive snapshot/restore (chaos checkpointing pickles worlds
    # mid-schedule), and a closure cannot pickle -- nor can a captured
    # bound method, which would resolve back to the shadowing attribute
    # after a restore.  Each shadow therefore reaches the real method
    # through the *class*.

    def _break_no_inval(self) -> None:
        """Plant the I1 bug: context switches stop firing device Invals."""
        for machine in self.machines:
            sched = machine.kernel.scheduler
            sched.switch_to = _NoInvalSwitch(sched)

    def _break_stale_xlat(self) -> None:
        """Plant the fast-path bug: mapping changes skip generation bumps.

        Models a kernel that edits PTE fields and shoots down TLB entries
        directly, without the generation discipline the CPU's software
        translation cache relies on.  The page tables and TLB stay
        *internally* consistent -- the invariant checkers see nothing --
        but cached fast-path translations go stale, which only the
        differential oracle (fast vs reference run) can expose.
        """

        def freeze(obj, names: "tuple[str, ...]") -> None:
            for name in names:
                setattr(obj, name, _GenerationFreeze(obj, name))

        for machine in self.machines:
            freeze(
                machine.mmu.tlb,
                ("invalidate", "flush_asid", "flush_all", "note_context_switch"),
            )
            for process in machine.kernel.processes.values():
                freeze(
                    process.page_table,
                    ("map", "unmap", "set_present", "set_writable", "clear_dirty"),
                )

    # ------------------------------------------------------------- helpers
    def _rig(self, action: Action) -> _ProcRig:
        node = self._rigs[action.node % len(self._rigs)]
        return node[action.proc % len(node)]

    def _write_rig(self, action: Action) -> _ProcRig:
        """The rig CPU stores may scribble: scratch-only under the IOMMU.

        See _build_cluster -- convergence requires stores to stay off
        DMA-visible buffers, whose content must be schedule-determined.
        """
        if self.iommu and self.cluster is not None:
            return self._rigs[action.node % len(self._rigs)][2]
        return self._rig(action)

    @staticmethod
    def _run_as(rig: _ProcRig) -> None:
        kernel = rig.machine.kernel
        if kernel.current is not rig.process:
            kernel.scheduler.switch_to(rig.process)

    @staticmethod
    def _span(action: Action, limit: int, cap: int) -> Tuple[int, int]:
        """Deterministic (offset, size) window inside a ``limit``-byte buffer."""
        size = 1 + action.size % min(cap, limit)
        offset = (action.page * 89) % (limit - size + 1)
        return offset, size

    @staticmethod
    def _checksum(data) -> str:
        return f"{sum(data) & 0xFFFF:04x}"

    # -------------------------------------------------------------- apply
    def apply(self, action: Action) -> str:
        """Apply one action; returns a deterministic outcome label.

        Expected, user-visible errors (protection faults, DMA failures,
        syscall refusals...) become part of the outcome -- adversarial
        schedules provoke them on purpose, and the differential oracle
        requires *identical* outcomes either way.  Invariant violations
        always propagate: they are findings, not outcomes.
        """
        try:
            return self._dispatch(action)
        except InvariantViolation:
            raise
        except ReproError as exc:
            return type(exc).__name__

    def _dispatch(self, action: Action) -> str:
        handler = getattr(self, f"_do_{action.kind}", None)
        if handler is None:
            raise ConfigurationError(f"unknown action kind {action.kind!r}")
        return handler(action)

    # -------------------------------------------------- workload actions
    def _do_write(self, action: Action) -> str:
        rig = self._write_rig(action)
        self._run_as(rig)
        offset, size = self._span(action, rig.buf_bytes, 2048)
        data = make_payload(size, seed=1 + (action.page + action.size) % 251)
        rig.machine.cpu.write_bytes(rig.buffer + offset, data)
        return "ok"

    def _do_read(self, action: Action) -> str:
        rig = self._rig(action)
        self._run_as(rig)
        offset, size = self._span(action, rig.buf_bytes, 2048)
        buf = bytearray(size)
        rig.machine.cpu.read_into(rig.buffer + offset, buf)
        return f"ok:{self._checksum(buf)}"

    def _do_send(self, action: Action) -> str:
        if self.cluster is None:
            return self._single_udma(action, to_device=not (action.arg & 2))
        sender = self.senders[action.node % len(self.senders)]
        nbytes = sender.channel.nbytes
        size = 1 + action.size % (nbytes // 2)
        offset = ((action.page * 97) % (nbytes - size + 1)) & ~3
        data = make_payload(size, seed=1 + (action.page + action.size) % 239)
        wait = bool(action.arg & 1)
        # Stage at the channel offset (the tx buffer is channel-sized), not
        # at the buffer head: a non-waited transfer reads its source lazily,
        # so head-staged back-to-back sends would race the previous
        # transfer's source read -- an incorrect UDMA application whose
        # outcome depends on timing, which the twin-comparing oracles
        # (delivery, convergence) cannot tolerate.  Offset staging makes
        # each send's source bytes its own; where two in-flight sends
        # overlap, source and destination ranges coincide, so the later
        # arrival's payload wins in both twins.
        sender._ensure_current()
        sender.machine.cpu.write_bytes(sender.buffer + offset, data)
        stats = sender.send_buffer(
            size, buffer_offset=offset, channel_offset=offset, wait=wait
        )
        return f"ok:{stats.pieces}p{stats.retries}r"

    def _do_recv(self, action: Action) -> str:
        if self.cluster is None:
            return self._single_udma(action, to_device=False, then_read=True)
        receiver = self.receivers[action.node % len(self.receivers)]
        nbytes = receiver.channel.nbytes
        offset, size = self._span(action, nbytes, nbytes)
        data = receiver.recv_bytes(size, offset)
        return f"ok:{self._checksum(data)}"

    def _single_udma(
        self, action: Action, to_device: bool, then_read: bool = False
    ) -> str:
        rig = self._rig(action)
        assert rig.udma is not None and rig.grant is not None
        self._run_as(rig)
        sink_bytes = self.SINK_PAGES * self.page_size
        mem_off, size = self._span(action, rig.buf_bytes, 1024)
        dev_off = (action.page * 131) % (sink_bytes - size + 1)
        mem = MemoryRef(rig.buffer + mem_off)
        dev = DeviceRef(rig.grant + dev_off)
        wait = bool(action.arg & 1) or then_read
        if to_device:
            stats = rig.udma.transfer(mem, dev, size, wait=wait)
        else:
            stats = rig.udma.transfer(dev, mem, size, wait=wait)
        if then_read:
            buf = bytearray(size)
            rig.machine.cpu.read_into(rig.buffer + mem_off, buf)
            return f"ok:{self._checksum(buf)}"
        return f"ok:{stats.pieces}p{stats.retries}r"

    def _do_rawsend(self, action: Action) -> str:
        """A send that bypasses the Sender's padding: sizes may be odd.

        Unaligned sizes trip the device's alignment veto (DmaError), a
        hard protection outcome every backend must classify identically
        — this is the chaos-visible surface for an alignment-skipping
        backend bug.  Aligned sizes behave exactly like a small send.
        """
        if self.cluster is None:
            return self._single_udma(action, to_device=True)
        sender = self.senders[action.node % len(self.senders)]
        nbytes = sender.channel.nbytes
        size = 1 + action.size % 256
        offset = ((action.page * 53) % (nbytes - size)) & ~3
        data = make_payload(size, seed=1 + (action.page + action.size) % 233)
        sender._ensure_current()
        # Offset staging, same reasoning as _do_send.
        sender.machine.cpu.write_bytes(sender.buffer + offset, data)
        stats = sender.udma.transfer(
            MemoryRef(sender.buffer + offset),
            sender.device_ref(offset),
            size,
            wait=bool(action.arg & 1),
        )
        return f"ok:{stats.pieces}p{stats.retries}r"

    def _do_churn(self, action: Action) -> str:
        """Protection-state churn: recycle a grant or a channel's NIPT.

        Cluster worlds toggle ONE channel at a time between parked
        (released: NIPT entries cleared, pages unpinned, free-list range
        returned) and recreated; the single-parked discipline makes the
        first-fit NIPT allocator hand back the same base, so schedules
        stay deterministic and the sender's window grant stays valid.
        Sends to a parked channel must fault cleanly (nipt-invalid /
        DmaError) on every backend — the prime divergence window for a
        stale-capability bug.  Single-node worlds revoke and re-grant
        the sink window instead, exercising grant/revoke bookkeeping.
        In-flight traffic is settled first: mid-flight teardown is a
        directed-test scenario, not a schedule-determinism hazard.
        """
        if self.cluster is None:
            rig = self._rig(action)
            self.settle()
            syscalls = rig.machine.kernel.syscalls
            syscalls.revoke_device_proxy(rig.process, "sink")
            rig.grant = syscalls.grant_device_proxy(rig.process, "sink")
            return "ok:regrant"
        self.settle()
        if self._parked is not None:
            i, _old = self._parked
            self._parked = None
            dst = (i + 1) % self.num_nodes
            nbytes = self.CHANNEL_PAGES * self.page_size
            channel = self.cluster.create_channel(
                i, dst, self._rx_procs[dst], self._rx_bufs[dst], nbytes
            )
            self.senders[i].channel = channel
            self.receivers[i].channel = channel
            return f"ok:recreate{i}"
        i = action.node % len(self.senders)
        self.cluster.release_channel(self.senders[i].channel)
        self._parked = (i, self.senders[i].channel)
        return f"ok:park{i}"

    def _do_touch(self, action: Action) -> str:
        rig = self._rig(action)
        self._run_as(rig)
        offset = (action.page % rig.buf_pages) * self.page_size
        offset += (action.size % self.page_size) & ~(self.word_size - 1)
        word = rig.machine.cpu.load(rig.buffer + offset)
        return f"ok:{word & 0xFFFF:04x}"

    # ------------------------------------------------- scheduling actions
    def _do_switch(self, action: Action) -> str:
        rig = self._rig(action)
        rig.machine.kernel.scheduler.switch_to(rig.process)
        return "ok"

    def _do_stall(self, action: Action) -> str:
        cycles = 1 + action.size % 4096
        self.clock.run(until=self.clock.now + cycles)
        return "ok"

    def _do_drain(self, action: Action) -> str:
        self.settle()
        return "ok"

    # ---------------------------------------------- memory-system actions
    def _do_pageout(self, action: Action) -> str:
        machine = self.machines[action.node % len(self.machines)]
        return "ok" if machine.kernel.vm.evict_for_pressure() else "noop"

    def _do_clean(self, action: Action) -> str:
        rig = self._rig(action)
        vpage = rig.buffer // self.page_size + action.page % rig.buf_pages
        done = rig.machine.kernel.vm.clean_page(rig.process, vpage)
        return "ok" if done else "deferred"

    def _do_downgrade(self, action: Action) -> str:
        return self._set_protection(action, writable=False)

    def _do_upgrade(self, action: Action) -> str:
        return self._set_protection(action, writable=True)

    def _set_protection(self, action: Action, writable: bool) -> str:
        rig = self._rig(action)
        vpage = rig.buffer // self.page_size + action.page % rig.buf_pages
        done = rig.machine.kernel.vm.set_page_protection(
            rig.process, vpage, writable
        )
        return "ok" if done else "noop"

    def _do_shootdown(self, action: Action) -> str:
        rig = self._rig(action)
        tlb = rig.machine.mmu.tlb
        if action.arg & 1:
            tlb.flush_asid(rig.process.asid)
            return "ok:asid"
        tlb.flush_all()
        return "ok:all"

    # -------------------------------------------------- wire-fault actions
    def _do_corrupt(self, action: Action) -> str:
        return self._arm("corrupt", action)

    def _do_drop(self, action: Action) -> str:
        return self._arm("drop", action)

    def _do_dup(self, action: Action) -> str:
        return self._arm("dup", action)

    def _do_reorder(self, action: Action) -> str:
        return self._arm("reorder", action)

    def _arm(self, mode: str, action: Action) -> str:
        """One-shot wire fault: affects the next packet(s), then disarms.

        The injector is only installed while armed, so unfaulted traffic
        keeps riding the zero-copy packet-object path (identical timing
        with and without the chaos harness in the loop).
        """
        if self.interconnect is None:
            return "skip"
        self._flush_held()
        self._disarm()
        ic = self.interconnect
        self._armed = [mode, 2 if mode == "reorder" else 1, action.size]
        # Callable class, not a closure: an armed world must pickle (see
        # the planted-bug note above).
        ic.route = _RecordingRoute(self, ic)
        ic.fault_injector = self._inject
        return "armed"

    def _inject(self, wire: bytes):
        assert self._armed is not None
        mode, remaining, salt = self._armed
        if mode == "drop":
            self._disarm()
            return None
        if mode == "corrupt":
            self._disarm()
            data = bytearray(wire)
            data[salt % len(data)] ^= 0xFF
            return bytes(data)
        if mode == "dup":
            self._disarm()
            return [wire, wire]
        # reorder: hold the first packet, release it after the second.
        if remaining == 2:
            self._held.append((*self._route_ctx, wire))
            self._armed[1] = 1
            return []
        src, dst = self._route_ctx
        hsrc, hdst, hwire = self._held.pop()
        self._disarm()
        if (hsrc, hdst) == (src, dst):
            return [wire, hwire]  # swapped arrival order on the same lane
        # Different lane: release the held packet on its own lane; it is
        # scheduled first, the current packet right after -- still a
        # deterministic perturbation of arrival order.
        self.interconnect._route_one(hsrc, hdst, hwire)
        return wire

    def _disarm(self) -> None:
        if self.interconnect is None:
            return
        self.interconnect.fault_injector = None
        # Un-shadow rather than re-assign a saved bound method: popping
        # the instance attribute re-exposes the class's route() and keeps
        # nothing unpicklable (or self-referential) behind.
        self.interconnect.__dict__.pop("route", None)
        self._armed = None

    def _flush_held(self) -> None:
        """Deliver any packet a reorder arm is still holding back."""
        if self.interconnect is None:
            return
        while self._held:
            src, dst, wire = self._held.pop(0)
            self.interconnect._route_one(src, dst, wire)

    # ------------------------------------------------------------ settling
    def settle(self) -> None:
        """Release held packets, disarm faults, and drain all hardware."""
        self._flush_held()
        self._disarm()
        self.clock.run_until_idle()

    # -------------------------------------------------------- snapshotting
    def _reattach_after_restore(self) -> None:
        """Re-attach observers after a checkpoint restore (repro.snapshot).

        The planted bugs, armed wire faults and held packets all pickle
        with the world (their shadows are callable classes, see the
        deliberate-bugs note); only the metric bindings the underlying
        machine/cluster dropped need re-attaching.
        """
        if self.cluster is not None:
            self.cluster._reattach_after_restore()
        else:
            for machine in self.machines:
                machine._reattach_after_restore()

    # ----------------------------------------------------------- observers
    def counters(self) -> "dict[str, int]":
        """Curated counters the differential oracle compares.

        Deliberately excludes stats that *legitimately* differ between the
        fast and reference paths: TLB hit/miss totals and the software
        translation cache's own hit/miss/fill counts.  Everything here --
        cycles, reference counts, faults, scheduling, packets -- must be
        bit-identical across modes.
        """
        c: "dict[str, int]" = {"now": self.clock.now}
        for i, machine in enumerate(self.machines):
            cpu, vm = machine.cpu, machine.kernel.vm
            sched = machine.kernel.scheduler
            p = f"n{i}."
            c[p + "loads"] = cpu.loads
            c[p + "stores"] = cpu.stores
            c[p + "instructions"] = cpu.instructions
            c[p + "charged"] = cpu.charged_cycles
            c[p + "faults"] = vm.faults_handled
            c[p + "proxy_faults"] = vm.proxy_faults
            c[p + "mmu_faults"] = machine.mmu.faults
            c[p + "switches"] = sched.switches
            c[p + "invals"] = sched.invals_fired
        if self.cluster is not None:
            for i, nic in enumerate(self.cluster.nics):
                p = f"nic{i}."
                c[p + "tx"] = nic.packets_sent
                c[p + "rx"] = nic.packets_received
                c[p + "rx_err"] = nic.rx_errors
                c[p + "bytes_rx"] = nic.bytes_received
            c["net.routed"] = self.interconnect.packets_routed
            c["net.dropped"] = self.interconnect.packets_dropped
            if self.cluster.reliability is not None:
                # Transport counters exist only when the transport does, so
                # reliability-off counter sets stay bit-identical to history.
                for name, value in self.cluster.reliability.counters().items():
                    c["rel." + name] = value
        if self.sink is not None:
            c["sink.reads"] = self.sink.reads
            c["sink.writes"] = self.sink.writes
        if self.iommu:
            # Only present when the tier is on, so iommu-off counter sets
            # stay bit-identical to history.
            for i, machine in enumerate(self.machines):
                assert machine.iommu is not None
                for name, value in machine.iommu.counters().items():
                    c[f"io{i}.{name}"] = value
        return c

    def protection_faults(self) -> "List[str]":
        """Canonical per-node protection fault ledger (hard refusals).

        Entries are ``"n{node}:{kind}"`` with kinds from the frozen
        :data:`repro.protection.FAULT_KINDS` vocabulary, in order of
        occurrence.  The conformance oracle requires this list to be
        identical across backends: *what* is refused and *why* is
        outcome, not timing.
        """
        out: "List[str]" = []
        for i, machine in enumerate(self.machines):
            for kind in machine.udma.backend.fault_log:
                out.append(f"n{i}:{kind}")
        return out

    def nipt_state(self) -> "Tuple[tuple, ...]":
        """Final NIPT contents per NIC, as a hashable snapshot.

        Backends must leave the OS-owned table in the same state: which
        pages are exported, and to where, is a protection *outcome*.
        """
        if self.cluster is None:
            return ()
        return tuple(
            (i,)
            + tuple(
                (index, entry.dst_node, entry.dst_page)
                for index, entry in nic.nipt.entries()
            )
            for i, nic in enumerate(self.cluster.nics)
        )

    def span_context(self, limit: int = 4) -> str:
        """Causal transfer context for a failure report.

        Open spans are the transfers in flight when the run stopped --
        usually exactly the ones implicated.  If nothing is open, the most
        recently minted spans stand in (the failure happened just after
        they settled).  One ``Span.brief()`` line each, newest first.
        """
        if self.spans is None:
            return ""
        spans = self.spans.open_spans()
        label = "open"
        if not spans:
            spans = list(self.spans)
            label = "recent"
        picked = sorted(spans, key=lambda s: s.id, reverse=True)[:limit]
        if not picked:
            return ""
        return f"{label}: " + "; ".join(s.brief() for s in picked)

    def mem_digest(self) -> str:
        """Digest of every byte of simulated memory (and the sink)."""
        h = hashlib.blake2b(digest_size=16)
        for machine in self.machines:
            h.update(machine.physmem.view(0, machine.physmem.size))
        if self.sink is not None:
            h.update(self.sink.peek(0, self.SINK_PAGES * self.page_size))
        return h.hexdigest()

    def vm_digest(self) -> str:
        """Digest of every process's *logical* memory (and the sink).

        The IOMMU convergence oracle cannot use :meth:`mem_digest`:
        stripping paging actions from a schedule changes which physical
        frame backs each page, so the raw physical image never converges.
        What must converge is the address-space *content* -- for every
        process (sorted by asid) and every valid non-proxy page (sorted
        by vpage), the page's bytes wherever they live: the resident
        frame, the swap copy (read via the counter-free
        ``BackingStore.peek`` so observing a run never perturbs it), or
        zeros for never-touched demand-zero pages.  Proxy aliases are
        skipped: pageout invalidates them (I2), so their mapped-ness
        legitimately differs between a faulted run and its twin.
        """
        h = hashlib.blake2b(digest_size=16)
        zero = bytes(self.page_size)
        for machine in self.machines:
            backing = machine.kernel.vm.backing
            for asid in sorted(machine.kernel.processes):
                process = machine.kernel.processes[asid]
                for vpage, pte in sorted(process.page_table.entries()):
                    if machine.layout.is_proxy(vpage * self.page_size):
                        continue
                    h.update(f"{asid}:{vpage}".encode())
                    if pte.present:
                        h.update(machine.physmem.read_frame(pte.pfn))
                    else:
                        data = backing.peek(asid, vpage)
                        h.update(data if data is not None else zero)
        if self.sink is not None:
            h.update(self.sink.peek(0, self.SINK_PAGES * self.page_size))
        return h.hexdigest()
