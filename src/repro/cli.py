"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info``  -- print the active cost model and its calibration anchors.
* ``fig8``  -- run the Figure 8 bandwidth sweep and print the curve.
* ``init``  -- compare UDMA vs traditional initiation cost.
* ``demo``  -- run one traced transfer and render its pipeline timeline.
* ``metrics`` -- run a small workload and dump the metrics registry.
* ``trace`` -- run one cluster transfer and print its causal span tree
  (optionally exporting a Perfetto-loadable Chrome trace).
* ``chaos`` -- deterministic adversarial schedule with always-on invariant
  auditing and a fast-vs-reference differential oracle; failures are
  shrunk to a paste-ready minimal reproducer.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import ClusterConfig, Machine, MachineConfig, ShrimpCluster
from repro.bench import (
    bandwidth_curve,
    fig8_sizes,
    make_payload,
    measure_peak_bandwidth,
)
from repro.devices import SinkDevice
from repro.params import shrimp
from repro.sim.timeline import legend, render_timeline
from repro.userlib import DeviceRef, MemoryRef, Sender, UdmaUser


def _cmd_info(args: argparse.Namespace) -> int:
    costs = shrimp()
    print("SHRIMP-calibrated cost model:")
    print(f"  CPU clock                 {costs.cpu_hz / 1e6:.0f} MHz")
    print(f"  page size                 {costs.page_size} bytes")
    print(f"  uncached I/O reference    {costs.io_ref_cycles} cycles")
    print(f"  UDMA initiation           {costs.udma_initiation_cycles} cycles "
          f"= {costs.cycles_to_us(costs.udma_initiation_cycles):.2f} us "
          "(paper anchor: ~2.8 us)")
    print(f"  traditional DMA (1 page)  "
          f"{costs.traditional_dma_overhead_cycles(1)} cycles "
          f"= {costs.cycles_to_us(costs.traditional_dma_overhead_cycles(1)):.1f} us")
    print(f"  DMA fill bandwidth        "
          f"{costs.bytes_per_second(costs.dma_bytes_per_cycle) / 1e6:.1f} MB/s")
    print(f"  wire bandwidth            "
          f"{costs.bytes_per_second(costs.wire_bytes_per_cycle) / 1e6:.1f} MB/s")
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    cluster = ShrimpCluster(config=ClusterConfig(num_nodes=2, mem_size=1 << 21))
    rx = cluster.node(1).create_process("rx")
    buf = cluster.node(1).kernel.syscalls.alloc(rx, 1 << 19)
    channel = cluster.create_channel(0, 1, rx, buf, 1 << 19)
    tx = cluster.node(0).create_process("tx")
    sender = Sender(cluster, tx, channel)
    peak = measure_peak_bandwidth(sender)
    print("Figure 8: % of peak bandwidth vs message size "
          f"(peak {cluster.costs.bytes_per_second(peak) / 1e6:.1f} MB/s)")
    for size, bw in bandwidth_curve(sender, fig8_sizes()):
        pct = bw / peak * 100
        print(f"  {size:6d} B  {pct:5.1f}%  {'#' * int(pct / 2)}")
    return 0


def _cmd_init(args: argparse.Namespace) -> int:
    machine = Machine(config=MachineConfig(mem_size=1 << 20))
    machine.attach_device(SinkDevice("sink", size=1 << 16))
    p = machine.create_process("app")
    buf = machine.kernel.syscalls.alloc(p, 4096)
    grant = machine.kernel.syscalls.grant_device_proxy(p, "sink")
    udma = UdmaUser(machine, p)
    machine.cpu.write_bytes(buf, make_payload(64))
    udma.transfer(MemoryRef(buf), DeviceRef(grant), 4)  # warm mappings
    machine.run_until_idle()

    before = machine.cpu.charged_cycles
    machine.cpu.execute(machine.costs.udma_align_check_cycles)
    status = udma.initiate(grant, machine.proxy(buf), 64)
    udma_cycles = machine.cpu.charged_cycles - before
    machine.run_until_idle()
    assert status.started

    t0 = machine.clock.now
    machine.kernel.syscalls.dma(p, "sink", 0, buf, 64, to_device=True)
    trad_cycles = machine.clock.now - t0

    us = machine.costs.cycles_to_us
    print(f"UDMA initiation:        {udma_cycles:6d} cycles = {us(udma_cycles):6.2f} us")
    print(f"traditional DMA (64 B): {trad_cycles:6d} cycles = {us(trad_cycles):6.2f} us")
    print(f"ratio: {trad_cycles / udma_cycles:.1f}x")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    machine = Machine(config=MachineConfig(mem_size=1 << 20, record_trace=True))
    machine.attach_device(SinkDevice("sink", size=1 << 16))
    p = machine.create_process("app")
    buf = machine.kernel.syscalls.alloc(p, 8192)
    grant = machine.kernel.syscalls.grant_device_proxy(p, "sink")
    udma = UdmaUser(machine, p)
    machine.cpu.write_bytes(buf, make_payload(args.nbytes))
    machine.tracer.clear()
    udma.transfer(MemoryRef(buf), DeviceRef(grant), args.nbytes)
    machine.run_until_idle()
    print(f"one {args.nbytes}-byte UDMA transfer, traced:")
    print(render_timeline(machine.tracer.events, width=64))
    print(f"\nlegend: {legend()}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.analysis import render
    from repro.userlib import DeviceRef, MemoryRef

    machine = Machine(config=MachineConfig(mem_size=1 << 20))
    machine.attach_device(SinkDevice("sink", size=1 << 16))
    p = machine.create_process("app")
    buf = machine.kernel.syscalls.alloc(p, 8192)
    grant = machine.kernel.syscalls.grant_device_proxy(p, "sink")
    udma = UdmaUser(machine, p)
    for i, size in enumerate((64, 512, 4096)):
        machine.cpu.write_bytes(buf, make_payload(size, seed=i + 1))
        udma.transfer(MemoryRef(buf), DeviceRef(grant), size)
        machine.run_until_idle()
    print("system counters after a small workload:")
    print(render(machine.metrics()))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import ObsConfig

    cluster = ShrimpCluster(
        config=ClusterConfig(
            num_nodes=2, mem_size=1 << 21, obs=ObsConfig(spans=True)
        )
    )
    rx = cluster.node(1).create_process("rx")
    buf = cluster.node(1).kernel.syscalls.alloc(rx, 1 << 16)
    channel = cluster.create_channel(0, 1, rx, buf, 1 << 16)
    tx = cluster.node(0).create_process("tx")
    sender = Sender(cluster, tx, channel)
    sender.send_bytes(make_payload(args.nbytes))
    cluster.run_until_idle()

    tracker = cluster.obs.spans
    assert tracker is not None
    print(f"one {args.nbytes}-byte transfer, as a causal span tree:")
    for root in tracker.roots():
        print(tracker.render_tree(root.id))
    if args.json:
        from repro.obs import write_chrome_trace

        write_chrome_trace(tracker, args.json, costs=cluster.costs)
        print(f"\n(Chrome trace written to {args.json}; "
              "open it at https://ui.perfetto.dev)")
    return 0


def _cmd_chaos_shards(args: argparse.Namespace) -> int:
    """The sharding differential mode of the chaos command.

    K-shard runs (in-process, optionally the worker engine too) are
    diffed bit-for-bit against the single-process reference on audit
    logs, memory digests and curated counters.  Failing specs are
    written as replayable JSON artifacts.
    """
    import json

    from repro.chaos.sharding_oracle import (
        ShardingOracle,
        run_pooling_suite,
        run_sharding_suite,
    )
    from repro.sharding import ClusterSpec

    audit = not args.no_audit
    if args.no_pool:
        nodes = args.nodes if args.nodes >= 4 else 16
        if args.suite:
            reports = run_pooling_suite(
                num_shards=args.shards or 1,
                num_nodes=nodes,
                seeds=tuple(range(args.seed, args.seed + 3)),
                engine=args.engine if args.engine != "both" else "in-process",
                audit=audit,
                iommu=args.iommu,
            )
        else:
            spec = ClusterSpec(num_nodes=nodes, seed=args.seed,
                               iommu=args.iommu)
            reports = [
                ShardingOracle(audit=audit).compare_pooling(
                    spec,
                    num_shards=args.shards or 1,
                    engine=(
                        args.engine if args.engine != "both" else "in-process"
                    ),
                )
            ]
    elif args.replay_spec is not None:
        with open(args.replay_spec, "r", encoding="utf-8") as fh:
            artifact = json.load(fh)
        spec = ClusterSpec.from_dict(artifact["spec"])
        reports = [
            ShardingOracle(audit=audit).compare(
                spec,
                artifact.get("num_shards", args.shards),
                engine=artifact.get("engine", args.engine),
            )
        ]
    elif args.suite:
        nodes = args.nodes if args.nodes >= 4 else 16
        reports = run_sharding_suite(
            args.shards,
            num_nodes=nodes,
            seeds=tuple(range(args.seed, args.seed + 3)),
            audit=audit,
            also_worker=args.engine in ("worker", "both"),
            iommu=args.iommu,
        )
    else:
        nodes = args.nodes if args.nodes >= 4 else 16
        spec = ClusterSpec(num_nodes=nodes, seed=args.seed, iommu=args.iommu)
        oracle = ShardingOracle(audit=audit)
        engines = (
            ["in-process", "worker"] if args.engine == "both"
            else [args.engine]
        )
        reports = []
        reference = None
        for engine in engines:
            report = oracle.compare(
                spec, args.shards, engine=engine, reference=reference
            )
            reference = report.reference
            reports.append(report)

    failures = [r for r in reports if not r.ok]
    for report in reports:
        print(report.summary())
    if failures:
        path = args.repro_file or "sharding-failure.json"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(failures[0].artifact() + "\n")
        print(f"\n(failing shard schedule written to {path})")
        return 1
    total_audits = sum(
        r.sharded.audits + r.reference.audits
        for r in reports
        if r.sharded is not None and r.reference is not None
    )
    print(
        f"{len(reports)} comparison(s) clean"
        + (f"; {total_audits} invariant audits" if total_audits else "")
    )
    return 0


def _parse_backend_specs(spec: str) -> List[str]:
    """``--backend`` value -> ordered backend spec list, proxy first.

    ``all`` selects the three stock backends.  A comma list selects
    specific specs (``name`` or ``name:planted-bug``); the proxy
    reference is prepended when absent, since conformance is always
    measured against the paper's scheme.
    """
    from repro.chaos import PROTECTION_BACKENDS

    if spec == "all":
        return list(PROTECTION_BACKENDS)
    names = [part.strip() for part in spec.split(",") if part.strip()]
    if all(name.partition(":")[0] != "proxy" for name in names):
        names.insert(0, "proxy")
    if len(names) < 2:
        names = list(PROTECTION_BACKENDS)
    return names


def _cmd_chaos_backend(args: argparse.Namespace) -> int:
    """The protection-backend differential mode of the chaos command.

    Replays each schedule once per backend and requires identical
    protection outcomes (fault ledgers, outcome classes, NIPT state,
    settled memory digests); simulated cycle counts may differ per
    backend.  Diverging schedules are shrunk and written as replayable
    JSON artifacts.
    """
    import json

    from repro.chaos import (
        ConformanceOracle,
        actions_from_json,
        run_conformance_suite,
        shrink,
        write_conformance_artifact,
    )
    from repro.errors import ConfigurationError
    from repro.protection import make_backend

    backends = _parse_backend_specs(args.backend)
    try:
        for name in backends:
            make_backend(name)  # validate names / planted bugs up front
    except ConfigurationError as exc:
        print(f"bad --backend spec: {exc}", file=sys.stderr)
        return 2

    if args.replay is not None:
        with open(args.replay, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        raw = payload["actions"] if isinstance(payload, dict) else payload
        actions = actions_from_json(raw)
        oracle = ConformanceOracle(
            nodes=args.nodes,
            backends=backends,
            check_determinism=args.check_determinism,
        )
        report = oracle.compare(actions)
        if not report.ok:
            report.shrunk = shrink(
                actions,
                lambda candidate: not oracle.compare(candidate).ok,
                max_evals=args.max_shrink_evals,
            )
        print(report.summary())
        failing = None if report.ok else report
    else:
        count = args.schedules if args.suite else 1
        suite = run_conformance_suite(
            seeds=range(args.seed, args.seed + count),
            steps=args.steps,
            nodes=args.nodes,
            backends=backends,
            check_determinism=args.check_determinism,
            max_shrink_evals=args.max_shrink_evals,
        )
        print(suite.summary())
        failing = suite.first_failure

    if failing is not None:
        path = args.repro_file or "protection-failure.json"
        write_conformance_artifact(failing, path)
        print(f"\n(diverging schedule written to {path})")
        return 1
    return 0


def _chaos_mode(args: argparse.Namespace) -> str:
    """The chaos command's mode: one of ``schedule | backend | shards``.

    Mode is selected by exactly one flag family; every other flag is
    either orthogonal (composes with any mode) or scoped to one mode.
    See the ``chaos --help`` epilog for the full matrix.
    """
    if args.backend is not None:
        return "backend"
    if args.shards is not None or args.no_pool:
        return "shards"
    return "schedule"


def _validate_chaos(args: argparse.Namespace, mode: str) -> Optional[str]:
    """Reject unsupported flag combinations with a one-line reason."""
    if mode == "backend":
        if args.shards is not None or args.no_pool:
            return "--backend and --shards/--no-pool are distinct modes"
        for flag, name in (
            (args.reliable, "--reliable"),
            (args.iommu, "--iommu"),
            (args.profile, "--profile"),
            (args.break_mode, "--break"),
            (args.checkpoint_every, "--checkpoint-every"),
        ):
            if flag:
                return f"{name} is not supported in --backend mode"
    elif mode == "shards":
        for flag, name in (
            (args.reliable, "--reliable"),
            (args.profile, "--profile"),
            (args.break_mode, "--break"),
            (args.checkpoint_every, "--checkpoint-every"),
        ):
            if flag:
                return f"{name} is not supported in --shards/--no-pool mode"
        if args.replay:
            return "--shards replays spec artifacts; use --replay-spec"
    else:
        if args.replay_spec:
            return "--replay-spec needs --shards; use --replay for schedules"
        if args.iommu and args.nodes is not None and args.nodes < 2:
            return "--iommu needs a cluster (--nodes 2 or more)"
        if args.checkpoint_every is not None and args.checkpoint_every <= 0:
            return "--checkpoint-every needs a positive action count"
    return None


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.chaos import SCHEDULE_PROFILES, actions_from_json, run_chaos
    from repro.chaos.world import BREAK_MODES

    mode = _chaos_mode(args)
    problem = _validate_chaos(args, mode)
    if problem is not None:
        print(f"bad flag combination: {problem}", file=sys.stderr)
        return 2
    if args.nodes is None:
        # --iommu is a cluster feature: default to the smallest ring.
        args.nodes = 2 if args.iommu else 1

    if mode == "backend":
        return _cmd_chaos_backend(args)
    if mode == "shards":
        return _cmd_chaos_shards(args)

    if args.break_mode is not None and args.break_mode not in BREAK_MODES:
        print(f"unknown --break mode {args.break_mode!r}; "
              f"choose from {[m for m in BREAK_MODES if m]}", file=sys.stderr)
        return 2
    if args.profile is not None and args.profile not in SCHEDULE_PROFILES:
        print(f"unknown --profile {args.profile!r}; "
              f"choose from {sorted(SCHEDULE_PROFILES)}", file=sys.stderr)
        return 2

    actions = None
    if args.replay is not None:
        with open(args.replay, "r", encoding="utf-8") as fh:
            actions = actions_from_json(json.load(fh))

    report = run_chaos(
        seed=args.seed,
        steps=args.steps,
        nodes=args.nodes,
        break_mode=args.break_mode,
        diff=not args.no_diff,
        actions=actions,
        max_shrink_evals=args.max_shrink_evals,
        reliability=args.reliable,
        iommu=args.iommu,
        profile=args.profile,
        checkpoint_every=args.checkpoint_every,
    )
    print(report.summary())
    if args.dump_log:
        for line in report.fast.audit_log:
            print(line)
    if not report.ok:
        if report.repro:
            print()
            print(report.repro)
            if args.repro_file:
                with open(args.repro_file, "w", encoding="utf-8") as fh:
                    fh.write(report.repro + "\n")
                print(f"\n(reproducer written to {args.repro_file})")
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SHRIMP UDMA reproduction (HPCA 1996) command-line tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="print the cost model").set_defaults(func=_cmd_info)
    sub.add_parser("fig8", help="run the Figure 8 sweep").set_defaults(func=_cmd_fig8)
    sub.add_parser("init", help="initiation cost comparison").set_defaults(func=_cmd_init)
    demo = sub.add_parser("demo", help="run one traced transfer")
    demo.add_argument("--nbytes", type=int, default=2048,
                      help="transfer size in bytes (default 2048)")
    demo.set_defaults(func=_cmd_demo)
    sub.add_parser(
        "metrics", help="run a small workload and dump every counter"
    ).set_defaults(func=_cmd_metrics)
    trace = sub.add_parser(
        "trace",
        help="run one cluster transfer and print its causal span tree",
    )
    trace.add_argument("--nbytes", type=int, default=8192,
                       help="transfer size in bytes (default 8192)")
    trace.add_argument("--json", default=None, metavar="FILE",
                       help="also write a Perfetto-loadable Chrome trace")
    trace.set_defaults(func=_cmd_trace)
    chaos = sub.add_parser(
        "chaos",
        help="adversarial schedule + invariant auditing + differential oracle",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="""\
mode matrix -- pick at most one mode; toggles compose as marked:

  mode (mutually exclusive)
    (none)          schedule campaign: seeded adversarial schedule, invariant
                    auditing, fast-vs-reference differential oracle, shrinker
    --backend SPEC  protection-backend conformance: same schedule replayed
                    under several protection backends, identical outcomes
                    required (scoped flags: --schedules, --check-determinism)
    --shards K      sharded-PDES differential: K-shard run diffed bit-for-bit
                    against the single-process reference (scoped flags:
                    --engine, --no-audit, --replay-spec)
    --no-pool       pooling differential (a shard-mode variant): fast lane
                    off vs on at --shards K (default 1)

  orthogonal toggles
    --reliable      schedule mode, cluster runs: ack/retransmit transport +
                    the eventual-delivery oracle (wire faults must converge)
    --iommu         schedule mode (cluster; --nodes defaults to 2) or shard
                    mode: virtual-address RDMA on every node + the
                    convergence oracle (paging faults must park-and-resume)
    --profile P     schedule mode: action mix (default | churn | paging);
                    defaults to "paging" with --iommu
    --suite         backend or shard mode: run the whole seeded suite

  examples
    chaos --seed 7 --steps 200 --nodes 2 --reliable
    chaos --iommu --steps 300                  # paging campaign, 2 nodes
    chaos --iommu --shards 4                   # sharded iommu differential
    chaos --backend all --suite --schedules 8
""",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="schedule RNG seed (default 0)")
    chaos.add_argument("--steps", type=int, default=100,
                       help="schedule length (default 100)")
    chaos.add_argument("--nodes", type=int, default=None,
                       help="1 = single node + sink; >= 2 = cluster ring "
                            "(default 1, or 2 with --iommu)")
    chaos.add_argument("--break", dest="break_mode", default=None,
                       metavar="MODE",
                       help="plant a kernel bug: no-inval | stale-xlat")
    chaos.add_argument("--no-diff", action="store_true",
                       help="skip the fast-vs-reference differential oracle")
    chaos.add_argument("--replay", default=None, metavar="FILE",
                       help="replay a JSON action list instead of generating")
    chaos.add_argument("--repro-file", default=None, metavar="FILE",
                       help="also write the minimal reproducer here on failure")
    chaos.add_argument("--dump-log", action="store_true",
                       help="print the full per-action audit log")
    chaos.add_argument("--max-shrink-evals", type=int, default=200,
                       help="ddmin replay budget (default 200)")
    chaos.add_argument("--shards", type=int, default=None, metavar="K",
                       help="sharding differential mode: diff a K-shard "
                            "PDES run against the single-process reference "
                            "(bit-identical logs, digests, counters)")
    chaos.add_argument("--no-pool", action="store_true",
                       help="pooling differential mode: run the same "
                            "schedule with the free-list/pipelining fast "
                            "lane off vs on (at --shards K, default 1) and "
                            "require bit-identical logs, digests, counters")
    chaos.add_argument("--engine", default="in-process",
                       choices=["in-process", "worker", "both"],
                       help="sharded engine(s) to check (with --shards)")
    chaos.add_argument("--suite", action="store_true",
                       help="run the whole seeded spec suite (with --shards)")
    chaos.add_argument("--no-audit", action="store_true",
                       help="skip per-operation invariant auditing "
                            "(with --shards)")
    chaos.add_argument("--replay-spec", default=None, metavar="FILE",
                       help="replay a failing shard-schedule artifact "
                            "(with --shards)")
    chaos.add_argument("--backend", default=None, metavar="SPEC",
                       help="protection differential mode: replay each "
                            "schedule under multiple protection backends "
                            "and require identical protection outcomes. "
                            "SPEC is proxy | captable | handler | all, or "
                            "a comma list; name:bug plants a backend bug "
                            "(e.g. captable:stale-cap)")
    chaos.add_argument("--schedules", type=int, default=8, metavar="M",
                       help="seeded schedules per --backend --suite "
                            "campaign (default 8)")
    chaos.add_argument("--check-determinism", action="store_true",
                       help="also twin-run each backend and require "
                            "bit-identical audit logs (with --backend)")
    chaos.add_argument("--reliable", action="store_true",
                       help="enable the ack/retransmit transport and hold "
                            "the run to the eventual-delivery oracle "
                            "(cluster runs)")
    chaos.add_argument("--iommu", action="store_true",
                       help="enable the virtual-address RDMA tier on every "
                            "node and hold the run to the convergence "
                            "oracle (cluster runs; composes with --shards)")
    chaos.add_argument("--profile", default=None, metavar="P",
                       help="schedule action-mix profile: default | churn | "
                            "paging (default: paging with --iommu)")
    chaos.add_argument("--checkpoint-every", type=int, default=None,
                       metavar="N",
                       help="schedule mode: snapshot the live world every N "
                            "actions so shrink candidates resume from the "
                            "checkpointed prefix instead of replaying from "
                            "t=0 (exact -- reports and shrunk reproducers "
                            "are bit-identical with or without checkpoints)")
    chaos.set_defaults(func=_cmd_chaos)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
