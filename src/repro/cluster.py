"""Multi-node assembly: the SHRIMP multicomputer.

A :class:`ShrimpCluster` builds N :class:`~repro.machine.Machine` nodes on
one shared clock, gives each a :class:`~repro.net.nic.ShrimpNic`, and
plugs them all into one routing backplane -- the shape of the real
four-node prototype ("each node ... is an Intel Pentium Xpress PC system
and the interconnect is an Intel Paragon routing backplane").

Communication setup follows the paper's model: the *receiving* side
exports physical pages, the *sending* side's OS installs NIPT entries
naming them, and from then on user processes send with pure UDMA
initiations -- no kernel involvement per message.

Design note (documented substitution): NIPT entries name physical frames
on the receiving node, so the receiving kernel must keep exported frames
resident for the lifetime of the export.  We model that as a *mapping-time*
pin, taken once per buffer export.  This preserves the paper's claim that
no **per-transfer** pinning ever happens; the export is the analogue of
SHRIMP's receive-buffer mapping setup.  Exported pages are also marked
dirty, the receiving-side I3 discipline for device-to-memory writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.config import ClusterConfig
from repro.errors import ConfigurationError, SyscallError
from repro.kernel.process import Process
from repro.machine import Machine
from repro.net.interconnect import Interconnect
from repro.net.nic import ShrimpNic
from repro.net.pool import PacketPool
from repro.net.reliable import ReliabilityConfig, ReliabilityPlane
from repro.obs import Observability, unflatten
from repro.params import shrimp
from repro.sim.clock import Clock
from repro.sim.trace import Tracer


@dataclass(frozen=True)
class Channel:
    """A configured deliberate-update path from one node to another.

    Attributes:
        src_node: sender node index.
        dst_node: receiver node index.
        nipt_base: first NIPT index of the channel on the sender's NIC.
        npages: channel length in pages.
        dst_vaddr: receiver-process virtual base address of the buffer.
        dst_frames: receiver physical frames, one per page.
        page_size: the cluster's page size (offset arithmetic).
        dst_asid: receiver address-space id when the channel rides the
            virtual-address RDMA tier (sender NIPT entries name (asid,
            vpage) and the receiver's IOMMU translates at delivery);
            -1 for the paper's physical, pin-at-export channels.
    """

    src_node: int
    dst_node: int
    nipt_base: int
    npages: int
    dst_vaddr: int
    dst_frames: Tuple[int, ...]
    page_size: int
    dst_asid: int = -1

    @property
    def virtual(self) -> bool:
        """True when this channel rides the IOMMU tier."""
        return self.dst_asid >= 0

    def device_offset(self, byte_offset: int) -> int:
        """NIC device-proxy offset addressing ``byte_offset`` in the channel."""
        if byte_offset < 0:
            raise ConfigurationError(f"negative channel offset {byte_offset}")
        return self.nipt_base * self.page_size + byte_offset

    @property
    def nbytes(self) -> int:
        """Channel capacity in bytes."""
        return self.npages * self.page_size


class ShrimpCluster:
    """N SHRIMP nodes on one backplane.

    The front door is a typed config (see :mod:`repro.config`)::

        from repro import ShrimpCluster
        from repro.config import ClusterConfig

        cluster = ShrimpCluster(config=ClusterConfig(num_nodes=2, iommu=True))

    Legacy keyword construction (``ShrimpCluster(num_nodes=...)``) still
    works through :meth:`~repro.config.ClusterConfig.from_kwargs`, which
    emits a ``DeprecationWarning``.  The ``iommu`` option is config-only:
    with it on, sender NIPT entries name (asid, virtual page) on the
    receiver, exports take no pin, and receiver-side faults
    park-and-replay through each node's IOMMU (:mod:`repro.iommu`).
    """

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        **legacy: object,
    ) -> None:
        if config is not None:
            if legacy:
                raise TypeError(
                    "ShrimpCluster() takes config= or legacy keyword "
                    f"arguments, not both (got {', '.join(sorted(legacy))})"
                )
            if not isinstance(config, ClusterConfig):
                raise ConfigurationError(
                    f"config must be a ClusterConfig, got {type(config).__name__}"
                )
        else:
            config = ClusterConfig.from_kwargs(**legacy)
        if config.num_nodes <= 0:
            raise ConfigurationError(
                f"num_nodes must be positive, got {config.num_nodes}"
            )
        self.config = config
        num_nodes = config.num_nodes
        self.costs = config.costs if config.costs is not None else shrimp()
        #: fast-lane toggles: ``pooling`` recycles events/packets/buffers,
        #: ``pipelining`` lets senders reuse cached initiation plans.  Both
        #: are exact -- simulated cycles and every curated counter are
        #: bit-identical on or off (chaos ``--no-pool`` gates this).
        self.pooling = config.pooling
        self.pipelining = config.pipelining
        #: protection-backend spec applied to every node (each node gets
        #: its own backend instance; see repro.protection)
        self.protection = (
            config.protection if config.protection is not None else "proxy"
        )
        self.clock = Clock(
            pooling=config.pooling, pool_debug=config.pool_debug
        )
        # One shared observability plane: every node registers its metrics
        # under a node{i}. namespace and all spans land on one tracker, so
        # a transfer's causality survives crossing the backplane.
        obs = config.obs
        if isinstance(obs, Observability):
            self.obs = obs
        else:
            self.obs = Observability(obs, clock=self.clock)
        self.obs.adopt_clock(self.clock)
        if self.obs.tracer is not None:
            self.tracer = self.obs.tracer
        else:
            self.tracer = Tracer(
                record=config.record_trace or self.obs.config.record_trace
            )
            self.obs.tracer = self.tracer
        self._metrics_bound = False
        self.interconnect = Interconnect(
            self.clock, self.costs, self.tracer,
            topology=config.topology, mesh_width=config.mesh_width,
        )
        # Fail fast on a node count that does not fill the configured
        # grid (ragged meshes would silently skew hop distances).
        self.interconnect.validate_topology(num_nodes)
        if config.pooling:
            self.interconnect.packet_pool = PacketPool(debug=config.pool_debug)
        if self.obs.spans is not None:
            self.interconnect._spans = self.obs.spans
        # Optional ack/retransmit transport: one shared plane for the whole
        # backplane (channels are keyed per (src, dst) node pair).  The
        # default -- no plane -- leaves every NIC exactly as before.
        self.reliability: Optional[ReliabilityPlane] = None
        if config.reliability:
            rel_config = (
                config.reliability
                if isinstance(config.reliability, ReliabilityConfig)
                else None
            )
            self.reliability = ReliabilityPlane(
                rel_config,
                clock=self.clock,
                spans=self.obs.spans,
                tracer=self.tracer,
            )
        self.nodes: List[Machine] = []
        self.nics: List[ShrimpNic] = []
        # Per-node NIPT allocator: free (base, length) ranges, first-fit.
        # Starts as one big range, so allocation order matches the old
        # bump allocator until something is released.
        self._nipt_free: List[List[Tuple[int, int]]] = []
        node_config = config.node_config().replace(
            costs=self.costs, protection=self.protection, obs=self.obs
        )
        for i in range(num_nodes):
            node = Machine(
                config=node_config,
                clock=self.clock,
                tracer=self.tracer,
                name=f"node{i}",
            )
            nic = ShrimpNic(
                node_id=i,
                costs=self.costs,
                physmem=node.physmem,
                nipt_entries=config.nipt_entries,
                cut_through=config.cut_through,
            )
            node.attach_device(nic)
            nic.connect(self.interconnect)
            if self.reliability is not None:
                nic.enable_reliability(self.reliability)
            # Wire the bus snooper for the automatic-update extension.
            node.cpu.store_snoop = nic.snoop_store
            self.nodes.append(node)
            self.nics.append(nic)
            self._nipt_free.append([(0, config.nipt_entries)])
        if self.obs.config.metrics:
            self._bind_metrics()

    # ------------------------------------------------------- observability
    def _bind_metrics(self) -> None:
        """Register backplane and NIC metrics on the shared registry.

        Node-level metrics are bound by each :class:`Machine` under its
        ``node{i}.`` namespace; the cluster adds the backplane counters
        and each NIC's (NICs are cluster-assembled, so their names live
        beside the owning node's).
        """
        if self._metrics_bound:
            return
        self._metrics_bound = True
        reg = self.obs.registry
        ic = self.interconnect
        reg.counter("backplane.packets_routed", lambda: ic.packets_routed)
        reg.counter("backplane.bytes_routed", lambda: ic.bytes_routed)
        reg.gauge("backplane.topology", lambda: ic.topology)
        reg.gauge("now_cycles", lambda: self.clock.now)
        if self.reliability is not None:
            # The net.* transport surface exists only when the transport
            # does: reliability-off clusters keep the historical name set
            # bit-identical (golden-file gated).
            plane = self.reliability
            reg.counter("net.retransmits", lambda: plane.retransmits)
            reg.counter("net.acks", lambda: plane.acks_sent)
            reg.counter("net.dup_suppressed", lambda: plane.dup_suppressed)
            reg.counter("net.delivery_failed", lambda: plane.delivery_failed)
            reg.counter("net.messages_sent", lambda: plane.messages_sent)
            reg.counter(
                "net.messages_delivered", lambda: plane.messages_delivered
            )
        for i, nic in enumerate(self.nics):
            p = f"node{i}.nic."
            reg.counter(p + "packets_sent", (lambda n: lambda: n.packets_sent)(nic))
            reg.counter(
                p + "packets_received", (lambda n: lambda: n.packets_received)(nic)
            )
            reg.counter(p + "bytes_sent", (lambda n: lambda: n.bytes_sent)(nic))
            reg.counter(
                p + "bytes_received", (lambda n: lambda: n.bytes_received)(nic)
            )
            reg.counter(p + "rx_errors", (lambda n: lambda: n.rx_errors)(nic))
            reg.gauge(
                p + "out_fifo_high_water",
                (lambda n: lambda: n.outgoing.high_water)(nic),
            )
            reg.gauge(
                p + "in_fifo_high_water",
                (lambda n: lambda: n.incoming.high_water)(nic),
            )

    def _reattach_after_restore(self) -> None:
        """Re-attach observers dropped by snapshotting (see repro.snapshot).

        Rebinds the backplane/NIC metric samples and then each node's
        (all on the one shared registry); see
        :meth:`Machine._reattach_after_restore` for the mechanism.
        """
        if self._metrics_bound:
            self._metrics_bound = False
            with self.obs.registry.rebinding():
                self._bind_metrics()
        for node in self.nodes:
            node._reattach_after_restore()

    def metrics(self) -> dict:
        """Whole-multicomputer counters: per node plus the backplane.

        The stable replacement for the deprecated
        :func:`repro.analysis.metrics.cluster_metrics` free function; a
        nested view over the shared registry, sampled at call time.
        """
        self._bind_metrics()
        for node in self.nodes:
            node._bind_metrics()
        return unflatten(self.obs.registry.snapshot())

    # ------------------------------------------------------------- access
    def node(self, index: int) -> Machine:
        """Node by index."""
        return self.nodes[index]

    def nic(self, index: int) -> ShrimpNic:
        """NIC by node index."""
        return self.nics[index]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    # ----------------------------------------------------------- channels
    def export_receive_buffer(
        self,
        node_index: int,
        process: Process,
        vaddr: int,
        npages: int,
        physical: bool = True,
    ) -> Tuple[int, ...]:
        """Receiver-side export: make pages resident, dirty, and pinned.

        Returns the physical frames backing the buffer (what NIPT entries
        will name).  See the module docstring for the pinning rationale.

        Under the virtual-address RDMA tier (``physical=False``) the
        export takes *no pin* and sets no dirty bit: it registers
        (asid, vpage) windows with the receiving node's IOMMU instead,
        and delivery-time translation marks pages dirty as the device
        actually writes them.  Pages are still touched resident once so
        the fault-free path starts warm; they may be evicted freely
        afterwards -- that is the whole point of the tier.
        """
        node = self.nodes[node_index]
        if vaddr % node.layout.page_size:
            raise SyscallError("EINVAL", "receive buffers must be page aligned")
        if not physical and node.iommu is None:
            raise ConfigurationError(
                f"node {node_index} has no IOMMU; virtual exports need "
                "ClusterConfig(iommu=...)"
            )
        frames: List[int] = []
        base_vpage = vaddr // node.layout.page_size
        for i in range(npages):
            vpage = base_vpage + i
            if not process.owns_vpage(vpage):
                raise SyscallError("EFAULT", f"vpage {vpage:#x} not owned")
            if not process.vpage_is_writable(vpage):
                raise SyscallError("EFAULT", f"vpage {vpage:#x} is read-only")
            frame = node.kernel.vm.touch_resident(process, vpage)
            if physical:
                pte = process.page_table.get(vpage)
                assert pte is not None
                pte.dirty = True  # receiving-side I3: incoming DMA will write it
                node.kernel.frames.pin(frame)
            else:
                node.iommu.register_window(process.asid, vpage, writable=True)
            frames.append(frame)
        return tuple(frames)

    def create_channel(
        self,
        src_node: int,
        dst_node: int,
        dst_process: Process,
        dst_vaddr: int,
        nbytes: int,
        physical: Optional[bool] = None,
    ) -> Channel:
        """Wire a deliberate-update channel (the OS-level setup path).

        Exports the receive buffer on ``dst_node`` and installs NIPT
        entries on ``src_node``'s NIC.  After this returns, any process on
        ``src_node`` holding a grant for the NIC window pages can send
        with pure user-level UDMA.

        ``physical`` selects the tier: ``None`` (default) follows the
        cluster config -- virtual channels when the IOMMU tier is on,
        the paper's physical channels otherwise.  ``True`` forces the
        physical path even under the tier (automatic-update bindings
        need their fixed mappings); ``False`` demands the tier.
        """
        if src_node == dst_node:
            raise ConfigurationError("loopback channels are not supported")
        if physical is None:
            physical = self.nodes[dst_node].iommu is None
        page_size = self.costs.page_size
        npages = -(-nbytes // page_size)
        frames = self.export_receive_buffer(
            dst_node, dst_process, dst_vaddr, npages, physical=physical
        )
        base = self._alloc_nipt(src_node, npages)
        nic = self.nics[src_node]
        dst_asid = -1
        if physical:
            for i, frame in enumerate(frames):
                nic.nipt.set_entry(base + i, dst_node, frame)
        else:
            # Virtual entries: name the destination (asid, vpage); the
            # receiver's IOMMU resolves frames at delivery time.
            dst_asid = dst_process.asid
            base_vpage = dst_vaddr // page_size
            for i in range(npages):
                nic.nipt.set_entry(base + i, dst_node, base_vpage + i, dst_asid)
        return Channel(
            src_node=src_node,
            dst_node=dst_node,
            nipt_base=base,
            npages=npages,
            dst_vaddr=dst_vaddr,
            dst_frames=frames,
            page_size=page_size,
            dst_asid=dst_asid,
        )

    def bind_automatic_update(
        self,
        src_node: int,
        src_process: Process,
        src_vaddr: int,
        dst_node: int,
        dst_process: Process,
        dst_vaddr: int,
        nbytes: int,
    ) -> Channel:
        """Wire an *automatic update* binding (the earlier SHRIMP strategy).

        "Our current design retains the automatic update transfer strategy
        ... which still relies upon fixed mappings between source and
        destination pages" (section 9).  Every ordinary store the source
        process makes to the bound pages is snooped off the memory bus and
        propagated, word by word, to the fixed remote page -- no
        initiation sequence at all, but one packet per store.

        Both sides' pages are made resident and pinned for the lifetime of
        the binding (the mapping is fixed by definition).  Returns a
        :class:`Channel` describing the destination side.
        """
        if src_node == dst_node:
            raise ConfigurationError("loopback bindings are not supported")
        node = self.nodes[src_node]
        page_size = self.costs.page_size
        if src_vaddr % page_size:
            raise SyscallError("EINVAL", "automatic-update source must be page aligned")
        npages = -(-nbytes // page_size)
        # Automatic update relies on fixed source->destination mappings,
        # so its channel stays on the paper's physical, pinned path even
        # when the IOMMU tier is on.
        channel = self.create_channel(
            src_node, dst_node, dst_process, dst_vaddr, nbytes, physical=True
        )
        nic = self.nics[src_node]
        base_vpage = src_vaddr // page_size
        for i in range(npages):
            vpage = base_vpage + i
            if not src_process.owns_vpage(vpage):
                raise SyscallError("EFAULT", f"vpage {vpage:#x} not owned")
            frame = node.kernel.vm.touch_resident(src_process, vpage)
            node.kernel.frames.pin(frame)  # the fixed mapping must hold
            nic.bind_automatic(frame, channel.nipt_base + i)
        return channel

    def unbind_automatic_update(
        self, src_node: int, src_process: Process, src_vaddr: int, npages: int
    ) -> None:
        """Tear down an automatic-update binding (unpins the source pages)."""
        node = self.nodes[src_node]
        nic = self.nics[src_node]
        base_vpage = src_vaddr // self.costs.page_size
        for i in range(npages):
            frame = node.kernel.vm.resident_frame(src_process, base_vpage + i)
            if frame is not None:
                nic.unbind_automatic(frame)
                if node.kernel.frames.is_pinned(frame):
                    node.kernel.frames.unpin(frame)

    def release_channel(self, channel: Channel) -> None:
        """Tear down a deliberate-update channel (the tenant-churn path).

        Invalidates the sender-side NIPT entries, returns the index range
        to the allocator, and unpins the receiver frames the export
        pinned.  This is the OS-level unmap a multi-tenant node performs
        when a process exits -- or when the kernel evicts a mapping to
        make room under NIPT pressure (see :mod:`repro.traffic.tenants`).
        In-flight packets for a physical channel are unaffected: they
        already carry resolved physical addresses, exactly like the
        hardware.  A *virtual* channel's release additionally revokes
        the receiver-side IOMMU windows (no unpin -- the export never
        pinned), so an in-flight packet that arrives after the release
        is refused at translation time: revocation is enforced at
        delivery, a protection property the physical tier cannot offer.
        """
        nic = self.nics[channel.src_node]
        for i in range(channel.npages):
            nic.nipt.clear_entry(channel.nipt_base + i)
        self._free_nipt(channel.src_node, channel.nipt_base, channel.npages)
        node = self.nodes[channel.dst_node]
        if channel.virtual:
            assert node.iommu is not None
            base_vpage = channel.dst_vaddr // channel.page_size
            for i in range(channel.npages):
                node.iommu.unregister_window(channel.dst_asid, base_vpage + i)
            return
        for frame in channel.dst_frames:
            if node.kernel.frames.is_pinned(frame):
                node.kernel.frames.unpin(frame)

    def _alloc_nipt(self, node_index: int, npages: int) -> int:
        ranges = self._nipt_free[node_index]
        for i, (base, length) in enumerate(ranges):
            if length >= npages:
                if length == npages:
                    del ranges[i]
                else:
                    ranges[i] = (base + npages, length - npages)
                return base
        raise SyscallError("ENOSPC", "sender NIPT exhausted")

    def _free_nipt(self, node_index: int, base: int, npages: int) -> None:
        """Return a NIPT index range, coalescing with neighbours."""
        ranges = self._nipt_free[node_index]
        ranges.append((base, npages))
        ranges.sort()
        merged = [ranges[0]]
        for start, length in ranges[1:]:
            prev_start, prev_len = merged[-1]
            if prev_start + prev_len == start:
                merged[-1] = (prev_start, prev_len + length)
            else:
                merged.append((start, length))
        ranges[:] = merged

    # ----------------------------------------------------------- running
    def run_until_idle(self, max_events: int = 1_000_000) -> None:
        """Drain all in-flight packets and DMA on every node.

        ``max_events`` bounds the drain (million-message traffic runs
        need head-room beyond the clock's default guard).
        """
        self.clock.run_until_idle(max_events=max_events)

    @property
    def now(self) -> int:
        """Current shared cycle time."""
        return self.clock.now
