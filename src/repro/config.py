"""Typed construction configs for :class:`Machine` and :class:`ShrimpCluster`.

The public construction surface had sprawled to ~20 ad-hoc keyword
arguments on both entry points.  This module is the redesigned front
door: one frozen dataclass per entry point, carrying every *configuration*
decision (cost model, proxy scheme, fast paths, observability, transport,
protection, IOMMU tier...), while *wiring* parameters that name live
objects owned by someone else -- ``clock``, ``tracer``, ``name`` -- stay
explicit keyword arguments on the constructors.

    from repro import Machine, MachineConfig

    m = Machine(config=MachineConfig(mem_size=1 << 21, protection="captable"))

Legacy keyword construction (``Machine(mem_size=...)``) keeps working
through :meth:`MachineConfig.from_kwargs`, which emits a
``DeprecationWarning``; every in-repo caller uses the typed configs.

The virtual-address RDMA tier is enabled *only* here: ``iommu=True`` (or
an :class:`IommuConfig`) on either config.  There is deliberately no
legacy ``iommu=`` kwarg -- new options land on the config objects.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from typing import Optional

from repro.errors import ConfigurationError
from repro.kernel.remap_guard import GuardStrategy
from repro.kernel.vm_manager import I3_WRITE_PROTECT
from repro.mem.layout import ProxyScheme
from repro.params import CostModel


@dataclass(frozen=True)
class IommuConfig:
    """The virtual-address RDMA tier (see ``docs/VM_RDMA.md``).

    Attributes:
        iotlb_entries: capacity of the IOMMU's translation cache.
        fault_queue_depth: how many incoming transfers may be parked
            awaiting fault service at once; an arriving fault beyond
            this bound degrades to the classic abort (Inval/BadLoad
            outcome: the packet is refused and counted in
            ``rx_errors``).
        park_budget: how many times one transfer may re-park before it
            degrades to the abort outcome.  The service path maps the
            page in and replays atomically, so the budget is a
            defensive bound, not a steady-state mechanism.
    """

    iotlb_entries: int = 64
    fault_queue_depth: int = 16
    park_budget: int = 4

    def __post_init__(self) -> None:
        if self.iotlb_entries <= 0:
            raise ConfigurationError("iotlb_entries must be positive")
        if self.fault_queue_depth <= 0:
            raise ConfigurationError("fault_queue_depth must be positive")
        if self.park_budget <= 0:
            raise ConfigurationError("park_budget must be positive")

    @staticmethod
    def coerce(value: "bool | IommuConfig | None") -> "Optional[IommuConfig]":
        """Normalise the ``iommu=`` option: False/None off, True defaults."""
        if value is None or value is False:
            return None
        if value is True:
            return IommuConfig()
        if isinstance(value, IommuConfig):
            return value
        raise ConfigurationError(
            f"iommu must be a bool or IommuConfig, got {value!r}"
        )


def _warn_legacy(entry: str, config_cls: str, keys) -> None:
    names = ", ".join(sorted(keys))
    warnings.warn(
        f"{entry}({names}=...) keyword construction is deprecated; build a "
        f"typed config instead: {entry}(config={config_cls}({names}=...))",
        DeprecationWarning,
        stacklevel=4,
    )


@dataclass(frozen=True)
class MachineConfig:
    """Everything a :class:`~repro.machine.Machine` is configured by.

    Wiring parameters (``clock``, ``tracer``, ``name``) are *not* here:
    they identify live objects owned by an enclosing assembly (a
    cluster's shared clock) and stay keyword arguments on ``Machine``.
    ``obs`` may be an :class:`~repro.obs.ObsConfig` (build a private
    plane) or a shared :class:`~repro.obs.Observability` instance.
    """

    costs: Optional[CostModel] = None
    mem_size: int = 1 << 22
    scheme: ProxyScheme = ProxyScheme.HIGH_BIT
    queue_depth: Optional[int] = None
    replacement_policy: str = "clock"
    i3_strategy: str = I3_WRITE_PROTECT
    guard_strategy: GuardStrategy = GuardStrategy.REGISTERS
    bounce_frames: int = 8
    record_trace: bool = False
    dma_burst_bytes: int = 0
    dma_bursts_per_event: int = 1
    swap: str = "dict"
    fast_paths: bool = True
    obs: object = None
    reliability: object = None
    pooling: bool = True
    pool_debug: bool = False
    protection: object = None
    #: the virtual-address RDMA tier: False (default, bit-identical to a
    #: pre-IOMMU machine), True for defaults, or an :class:`IommuConfig`.
    iommu: "bool | IommuConfig" = False

    @classmethod
    def from_kwargs(cls, _warn: bool = True, **kwargs: object) -> "MachineConfig":
        """Build a config from legacy ``Machine(...)`` keyword arguments.

        Emits a ``DeprecationWarning`` naming the offending keywords.
        Unknown keywords raise ``TypeError`` exactly as the old
        constructor did.
        """
        allowed = {f.name for f in fields(cls)}
        unknown = set(kwargs) - allowed
        if unknown:
            raise TypeError(
                f"Machine() got unexpected keyword argument(s): "
                f"{', '.join(sorted(unknown))}"
            )
        if "iommu" in kwargs:
            raise TypeError(
                "iommu is config-only: pass Machine(config=MachineConfig(iommu=...))"
            )
        if kwargs and _warn:
            _warn_legacy("Machine", "MachineConfig", kwargs)
        return cls(**kwargs)  # type: ignore[arg-type]

    def replace(self, **overrides: object) -> "MachineConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]

    @property
    def iommu_config(self) -> Optional[IommuConfig]:
        return IommuConfig.coerce(self.iommu)


@dataclass(frozen=True)
class ClusterConfig:
    """Everything a :class:`~repro.cluster.ShrimpCluster` is configured by.

    Per-node options mirror :class:`MachineConfig`; cluster-level options
    (topology, NIPT size, transport, pipelining) live only here.  Use
    :meth:`node_config` to see the per-node projection the cluster
    constructs its machines from.
    """

    num_nodes: int = 4
    costs: Optional[CostModel] = None
    mem_size: int = 1 << 22
    nipt_entries: int = 1 << 12
    queue_depth: Optional[int] = None
    scheme: ProxyScheme = ProxyScheme.HIGH_BIT
    record_trace: bool = False
    cut_through: bool = True
    topology: str = "linear"
    mesh_width: int = 0
    dma_burst_bytes: int = 0
    dma_bursts_per_event: int = 1
    fast_paths: bool = True
    obs: object = None
    reliability: object = None
    pooling: bool = True
    pool_debug: bool = False
    pipelining: bool = True
    protection: object = None
    #: the virtual-address RDMA tier, applied to every node: NIPT entries
    #: name (asid, virtual page) instead of physical frames, receive
    #: buffers are not pinned, and receiver-side faults park-and-replay.
    iommu: "bool | IommuConfig" = False

    @classmethod
    def from_kwargs(cls, _warn: bool = True, **kwargs: object) -> "ClusterConfig":
        """Build a config from legacy ``ShrimpCluster(...)`` keywords."""
        allowed = {f.name for f in fields(cls)}
        unknown = set(kwargs) - allowed
        if unknown:
            raise TypeError(
                f"ShrimpCluster() got unexpected keyword argument(s): "
                f"{', '.join(sorted(unknown))}"
            )
        if "iommu" in kwargs:
            raise TypeError(
                "iommu is config-only: pass "
                "ShrimpCluster(config=ClusterConfig(iommu=...))"
            )
        if kwargs and _warn:
            _warn_legacy("ShrimpCluster", "ClusterConfig", kwargs)
        return cls(**kwargs)  # type: ignore[arg-type]

    def replace(self, **overrides: object) -> "ClusterConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]

    @property
    def iommu_config(self) -> Optional[IommuConfig]:
        return IommuConfig.coerce(self.iommu)

    def node_config(self) -> MachineConfig:
        """The per-node :class:`MachineConfig` projection.

        ``obs``/``reliability`` are intentionally absent: the cluster owns
        one shared observability plane and one shared transport plane and
        wires them itself.
        """
        return MachineConfig(
            costs=self.costs,
            mem_size=self.mem_size,
            scheme=self.scheme,
            queue_depth=self.queue_depth,
            dma_burst_bytes=self.dma_burst_bytes,
            dma_bursts_per_event=self.dma_bursts_per_event,
            fast_paths=self.fast_paths,
            protection=self.protection,
            iommu=self.iommu,
        )
