"""The paper's primary contribution: protected, user-level DMA (UDMA).

This package implements the hardware side of the mechanism exactly as
specified in sections 3-5 and 7 of the paper:

* :mod:`repro.core.status` -- the status word returned by every proxy LOAD.
* :mod:`repro.core.events` -- the transition-event vocabulary of Figure 5.
* :mod:`repro.core.state_machine` -- the Idle/DestLoaded/Transferring
  machine, verbatim from Figure 5 plus the BadLoad edge.
* :mod:`repro.core.controller` -- proxy-address decode, PROXY^-1
  translation, and glue to the standard DMA engine (Figure 4).
* :mod:`repro.core.queueing` -- the section-7 extension: a hardware request
  queue supporting multi-page and gather/scatter transfers, per-page
  reference counters, and a two-priority variant.
"""

from repro.core.controller import UdmaController
from repro.core.events import UdmaEvent
from repro.core.queueing import QueuedUdmaController
from repro.core.state_machine import UdmaState, UdmaStateMachine
from repro.core.status import UdmaStatus

__all__ = [
    "QueuedUdmaController",
    "UdmaController",
    "UdmaEvent",
    "UdmaState",
    "UdmaStateMachine",
    "UdmaStatus",
]
