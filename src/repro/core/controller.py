"""The UDMA controller: Figure 4's box between the CPU and the DMA engine.

Responsibilities, in the paper's words:

* "provide translation from physical proxy addresses to real addresses"
  (PROXY^-1 for memory-proxy; window decode for device-proxy),
* "interpret the transfer initiation instruction sequence" (delegated to
  :class:`repro.core.state_machine.UdmaStateMachine`),
* "guarantee atomicity for context switches" (the :meth:`inval` line the
  kernel strobes on every switch), and
* expose the SOURCE/DESTINATION registers for the kernel's I4 remap check.

The controller is memory-mapped: the bus routes every physical access that
falls in a proxy region to :meth:`io_store` / :meth:`io_load`.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Set

from repro.core.events import UdmaEvent
from repro.core.state_machine import (
    ProxyOperand,
    SpaceKind,
    StartDirective,
    UdmaState,
    UdmaStateMachine,
)

from repro.devices.base import UDMADevice
from repro.dma.engine import DeviceEndpoint, DmaEngine, Endpoint, MemoryEndpoint
from repro.errors import AddressError, ConfigurationError
from repro.mem.layout import DeviceWindow, Layout, Region
from repro.mem.physmem import PhysicalMemory
from repro.protection import ProtectionBackend, ProxyBackend
from repro.sim.clock import Clock
from repro.sim.trace import NULL_TRACER, Tracer


class UdmaController:
    """The basic (unqueued) UDMA device of sections 3-6."""

    #: True when the send fast lane (:mod:`repro.userlib.udma`) may batch
    #: initiations and polls against this controller's state machine.  The
    #: queued controller overrides io_store/io_load with different
    #: semantics, so it opts out and every access takes the full path.
    fast_path_capable = True

    def __init__(
        self,
        layout: Layout,
        physmem: PhysicalMemory,
        engine: DmaEngine,
        clock: Clock,
        name: str = "udma",
        tracer: Tracer = NULL_TRACER,
        backend: Optional[ProtectionBackend] = None,
    ) -> None:
        self.layout = layout
        self.physmem = physmem
        self.engine = engine
        self.clock = clock
        self.name = name
        self.tracer = tracer
        self.page_size = layout.page_size
        # The protection decision for the two-instruction send lives in a
        # pluggable backend (see repro.protection).  The default proxy
        # backend is bit-identical to the pre-backend controller.
        self.backend = backend if backend is not None else ProxyBackend()
        self.backend.attach(self)
        # Live grants, kept so a backend switch can replay them into the
        # new backend's tables: (asid, device name, writable).
        self._grants: Set["tuple[int, str, bool]"] = set()
        self.sm = UdmaStateMachine(
            page_size=layout.page_size,
            remaining_in_flight=self._remaining_in_flight,
        )
        self._devices: Dict[str, UDMADevice] = {}
        self._transfer_start_time = 0
        self._transfer_duration = 0
        self._transfer_count = 0
        # Proxy-address decode cache: region boundaries are fixed at
        # construction (device windows are carved inside the device-proxy
        # region), so paddr -> ProxyOperand is a pure function.  Polling
        # reuses a handful of addresses thousands of times.
        self._operand_cache: Dict[int, ProxyOperand] = {}
        self._inval_operand: Optional[ProxyOperand] = None
        # Device-window decode cache, invalidated when a device attaches
        # (attach_device is the only way the window list grows).
        self._window_cache: Dict[int, "tuple[UDMADevice, int]"] = {}
        # Observability plane hookups (see repro.obs).  Both stay None
        # unless a Machine wires them, so the unobserved cost is one
        # attribute load per call site.
        self._spans = None
        self._latency_hist = None
        # The transfer currently owning the root "transfer" span, and
        # which phase it is in ("init": latched, "xfer": engine running).
        self._span: Optional[int] = None
        self._span_phase = ""
        self._span_dest = 0
        # (dest proxy addr, finished span id) of the last failed
        # initiation; a new initiation to the same destination is linked
        # to it with a retry_of attribute.
        self._retry_hint: "Optional[tuple[int, int]]" = None

    # ------------------------------------------------------------- devices
    def attach_device(self, device: UDMADevice) -> DeviceWindow:
        """Register a device, reserving its device-proxy window."""
        window = self.layout.register_device(device.name, device.proxy_size)
        self._devices[device.name] = device
        self._window_cache.clear()
        device.attach(self.clock, self.tracer)
        self.backend.device_attached(device)
        return window

    def device(self, name: str) -> UDMADevice:
        """Look up an attached device by name."""
        try:
            return self._devices[name]
        except KeyError:
            raise ConfigurationError(f"no device {name!r} attached to {self.name}") from None

    # -------------------------------------------------- protection backend
    def set_backend(self, backend: ProtectionBackend) -> ProtectionBackend:
        """Swap the protection backend on a live controller.

        The new backend inherits the controller's world: devices are
        re-announced (rebuilding capability tables from live NIPT state)
        and outstanding grants are replayed.  The host-side decode and
        window caches are flushed — they were populated under the old
        backend, and cache keys are only operand bits (see ISSUE 8
        satellite), so a stale entry must not survive the switch.
        """
        backend.attach(self)
        for device in self._devices.values():
            backend.device_attached(device)
        for asid, device_name, writable in sorted(self._grants):
            backend.note_grant(asid, device_name, writable)
        self.backend = backend
        self._operand_cache.clear()
        self._window_cache.clear()
        self._inval_operand = None
        return backend

    def note_grant(self, asid: int, device_name: str, writable: bool) -> None:
        """Kernel hook: a device-proxy window was granted to ``asid``."""
        self._grants.add((asid, device_name, writable))
        self.backend.note_grant(asid, device_name, writable)

    def note_revoke(self, asid: int, device_name: str) -> None:
        """Kernel hook: a device-proxy grant was torn down."""
        self._grants = {
            grant
            for grant in self._grants
            if not (grant[0] == asid and grant[1] == device_name)
        }
        self.backend.note_revoke(asid, device_name)

    # ---------------------------------------------------------- bus access
    def io_store(self, paddr: int, value: int) -> None:
        """A CPU STORE reached proxy space (value = nbytes, or <=0 = Inval)."""
        operand = self._decode(paddr)
        latched = self.sm.state is UdmaState.DEST_LOADED
        event = self.sm.store(operand, value)
        if event is UdmaEvent.INVAL and latched:
            # I1: a latched destination was thrown away before its LOAD.
            self.backend.record_fault("inval")
        if self._spans is not None:
            self._span_store(operand, value, event)
        if self.tracer.enabled:
            self.tracer.emit(
                self.clock.now,
                self.name,
                "proxy-store",
                addr=f"{paddr:#x}",
                value=value,
                event=event.value,
                state=self.sm.state.value,
            )

    def io_load(self, paddr: int) -> int:
        """A CPU LOAD reached proxy space; returns the encoded status word."""
        operand = self._decode(paddr)
        device_errors = self._prospective_device_errors(operand)
        result = self.sm.load(operand, device_errors=device_errors)
        if device_errors:
            self.backend.record_error_bits(device_errors)
        elif result.event is UdmaEvent.BAD_LOAD:
            self.backend.record_fault("bad-load")
        if self._spans is not None:
            self._span_load(operand, result)
        if result.start is not None:
            self._launch(result.start)
        if self.tracer.enabled:
            self.tracer.emit(
                self.clock.now,
                self.name,
                "proxy-load",
                addr=f"{paddr:#x}",
                event=result.event.value,
                state=self.sm.state.value,
                status=result.status.describe(),
            )
        return result.status.encode(self.page_size)

    def inval(self) -> None:
        """The kernel's context-switch Inval: one store of a negative count.

        "This can be done by causing a hardware Inval event (i.e. by
        storing a negative nbytes value to any valid proxy address)"
        (section 6).  The kernel charges the store's cost itself.
        """
        operand = self._inval_operand
        if operand is None:
            operand = self._inval_operand = ProxyOperand(
                self.layout.proxy(0), SpaceKind.MEMORY
            )
        if self.sm.state is UdmaState.DEST_LOADED:
            self.backend.record_fault("inval")
        self.sm.store(operand, -1)
        if self._spans is not None:
            self._span_inval()
        if self.tracer.enabled:
            self.tracer.emit(
                self.clock.now, self.name, "inval", state=self.sm.state.value
            )

    def terminate_transfer(self) -> bool:
        """Abort an in-flight transfer (the paper's sketched extension)."""
        if not self.sm.terminate():
            return False
        self.engine.abort()
        if self._spans is not None and self._span is not None:
            self._spans.finish(self._span, status="terminated")
            self._span = None
            self._span_phase = ""
        return True

    # --------------------------------------------------------- I4 support
    def memory_pages_in_registers(self) -> Set[int]:
        """Physical page numbers currently named by the hardware registers.

        This is what the kernel's remap guard consults before paging
        anything out: the engine's SOURCE and DESTINATION registers while
        Transferring, and the latched DESTINATION while DestLoaded.  A
        basic transfer never crosses a page, so each register names exactly
        one page.
        """
        pages: Set[int] = set()
        for base in (
            self.engine.source_memory_base(),
            self.engine.destination_memory_base(),
        ):
            if base is not None:
                pages.add(base // self.page_size)
        if (
            self.sm.state is UdmaState.DEST_LOADED
            and self.sm.destination is not None
            and self.sm.destination.space is SpaceKind.MEMORY
        ):
            real = self.layout.unproxy(self.sm.destination.proxy_addr)
            pages.add(real // self.page_size)
        return pages

    @property
    def busy(self) -> bool:
        """True while a transfer is in flight."""
        return self.sm.state is UdmaState.TRANSFERRING

    # ------------------------------------------------------- poll fast lane
    def fast_poll_ok(self) -> bool:
        """True when :meth:`fast_poll` is exactly equivalent to io_load.

        A LOAD is a pure status read whenever the machine is *not* in
        DestLoaded (Idle and Transferring loads cause no transition and
        consult no device), and nothing host-side needs the full status
        object (no spans, no tracer).  Event firing cannot enter
        DestLoaded -- only a CPU store can -- so a True answer stays valid
        across the caller's cycle charge.
        """
        return (
            self._spans is None
            and not self.tracer.enabled
            and self.sm.state is not UdmaState.DEST_LOADED
        )

    def fast_poll(self, paddr: int) -> bool:
        """The MATCH flag of a status LOAD from ``paddr``, cheaply.

        Identical simulated effects to :meth:`io_load` under the
        :meth:`fast_poll_ok` guard: the state machine's load counter is
        bumped and nothing else changes.  Only the MATCH flag is computed
        -- a completion poll never looks at the rest of the word.
        """
        sm = self.sm
        sm.loads += 1
        if sm.state is UdmaState.TRANSFERRING:
            source = sm.source
            return source is not None and source.proxy_addr == paddr
        return False

    # ------------------------------------------------------------ internal
    _OPERAND_CACHE_CAPACITY = 1 << 16

    def _decode(self, paddr: int) -> ProxyOperand:
        operand = self._operand_cache.get(paddr)
        if operand is not None:
            return operand
        operand = self.backend.decode(paddr)
        if len(self._operand_cache) >= self._OPERAND_CACHE_CAPACITY:
            self._operand_cache.clear()
        self._operand_cache[paddr] = operand
        return operand

    def _prospective_device_errors(self, source_operand: ProxyOperand) -> int:
        """Device error bits for the transfer a Load would start, if any."""
        if self.sm.state is not UdmaState.DEST_LOADED:
            return 0
        dest = self.sm.destination
        assert dest is not None
        if source_operand.space is dest.space:
            return 0  # BadLoad path; no device consulted
        count = min(
            self.sm.count,
            self.page_size - (source_operand.proxy_addr % self.page_size),
        )
        backend = self.backend
        extra = backend.initiation_check_cycles
        if extra:
            # Non-proxy backends pay for their check here: the LOAD that
            # would start the transfer stalls while the capability table
            # or the in-kernel handler renders its verdict.  The proxy
            # scheme rides the MMU and charges nothing (extra == 0).
            self.clock.advance(extra)
        errors = 0
        if source_operand.space is SpaceKind.DEVICE:
            device, offset = self._device_at(source_operand.proxy_addr)
            errors |= backend.source_errors(device, offset, count)
        if dest.space is SpaceKind.DEVICE:
            device, offset = self._device_at(dest.proxy_addr)
            errors |= backend.dest_errors(device, offset, count)
        return errors

    # ----------------------------------------------------------- span hooks
    # All host-side: span calls never touch the simulated clock, so cycles
    # and counters are bit-identical with tracing on or off.

    def _span_store(self, operand: ProxyOperand, value: int, event) -> None:
        if event is UdmaEvent.INVAL:
            self._span_inval()
            return
        if self.sm.state is not UdmaState.DEST_LOADED:
            return  # store ignored while Transferring; no span state change
        if self._span is not None and self._span_phase == "init":
            # Second STORE before the LOAD: the latch was overwritten.
            self._spans.event(
                self._span,
                "re-latch",
                dest=f"{operand.proxy_addr:#x}",
                nbytes=value,
            )
            self._span_dest = operand.proxy_addr
            return
        attrs = {
            "node": self.name,
            "dest": f"{operand.proxy_addr:#x}",
            "space": operand.space.value,
            "nbytes": value,
        }
        hint = self._retry_hint
        if hint is not None and hint[0] == operand.proxy_addr:
            attrs["retry_of"] = hint[1]
            self._retry_hint = None
        self._span = self._spans.begin("transfer", **attrs)
        self._span_phase = "init"
        self._span_dest = operand.proxy_addr

    def _span_load(self, operand: ProxyOperand, result) -> None:
        if self._span is None or self._span_phase != "init":
            return  # status poll; nothing to annotate
        if result.event is UdmaEvent.BAD_LOAD:
            self._spans.finish(self._span, status="bad-load")
            self._retry_hint = (self._span_dest, self._span)
            self._span = None
            self._span_phase = ""
        elif result.start is not None:
            self._span_phase = "xfer"
            self._spans.event(
                self._span,
                "initiated",
                source=f"{operand.proxy_addr:#x}",
                count=result.start.count,
            )
        elif self.sm.state is UdmaState.IDLE:
            # A device vetoed the transfer (check_transfer error bits).
            self._spans.finish(self._span, status="device-error")
            self._retry_hint = (self._span_dest, self._span)
            self._span = None
            self._span_phase = ""

    def _span_inval(self) -> None:
        if self._span is None:
            return
        if self._span_phase == "xfer":
            # Transfers are atomic once started; the Inval only cleared
            # the (empty) latch.  Record it as causal context.
            self._spans.event(self._span, "inval")
        else:
            self._spans.finish(self._span, status="inval")
            self._retry_hint = (self._span_dest, self._span)
            self._span = None
            self._span_phase = ""

    def _launch(self, directive: StartDirective) -> None:
        source = self._endpoint(directive.source)
        destination = self._endpoint(directive.destination)
        duration = self.engine.transfer_duration(source, destination, directive.count)
        self._transfer_start_time = self.clock.now
        self._transfer_duration = duration
        self._transfer_count = directive.count
        self.engine.start(
            source,
            destination,
            directive.count,
            self._transfer_done,
            span_id=self._span,
        )

    def _endpoint(self, operand: ProxyOperand) -> Endpoint:
        if operand.space is SpaceKind.MEMORY:
            return MemoryEndpoint(self.physmem, self.layout.unproxy(operand.proxy_addr))
        device, offset = self._device_at(operand.proxy_addr)
        return DeviceEndpoint(device, offset)

    def _device_at(self, proxy_addr: int) -> "tuple[UDMADevice, int]":
        hit = self._window_cache.get(proxy_addr)
        if hit is not None:
            return hit
        window = self.layout.window_of(proxy_addr)
        result = (self._devices[window.name], proxy_addr - window.base)
        if len(self._window_cache) < self._OPERAND_CACHE_CAPACITY:
            self._window_cache[proxy_addr] = result
        return result

    def _transfer_done(self) -> None:
        self.sm.transfer_done()
        if self._latency_hist is not None:
            self._latency_hist.observe(self.clock.now - self._transfer_start_time)
        if self._spans is not None and self._span is not None:
            self._spans.finish(self._span, status="complete")
            self._span = None
            self._span_phase = ""
        if self.tracer.enabled:
            self.tracer.emit(
                self.clock.now, self.name, "transfer-done", state=self.sm.state.value
            )

    def _remaining_in_flight(self) -> int:
        """Bytes left in the in-flight transfer.

        A word-stepping engine exposes true progress; the analytic engine
        is approximated linearly from its completion schedule (hardware
        with no progress counter would report similarly).
        """
        if self.engine.busy and self.engine.progress_bytes is not None:
            return max(0, self.engine.count - self.engine.progress_bytes)
        if self._transfer_duration <= 0:
            return self._transfer_count
        elapsed = self.clock.now - self._transfer_start_time
        frac_left = max(0.0, 1.0 - elapsed / self._transfer_duration)
        return int(math.ceil(self._transfer_count * frac_left))
