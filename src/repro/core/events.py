"""Transition-event vocabulary of the UDMA state machine (Figure 5).

The paper names four software-visible events plus the hardware completion:

* **Store** -- a STORE of a positive value to proxy space.
* **Inval** -- a STORE of a non-positive value ("a negative, and hence
  invalid, value of nbytes"); zero is not a legal byte count either, so
  this implementation folds it into Inval.
* **Load** -- a LOAD from proxy space.
* **BadLoad** -- a LOAD, while DestLoaded, from a proxy address in the
  *same* proxy region (memory or device) as the DESTINATION register: a
  request for a memory-to-memory or device-to-device transfer, which the
  basic device does not support.
* **TransferDone** -- the DMA engine's completion line.

Store/Inval classification from the stored value lives here so the state
machine and the controller agree on it.
"""

from __future__ import annotations

import enum


class UdmaEvent(enum.Enum):
    """The five transition events."""

    STORE = "Store"
    LOAD = "Load"
    INVAL = "Inval"
    BAD_LOAD = "BadLoad"
    TRANSFER_DONE = "TransferDone"


def classify_store(value: int) -> UdmaEvent:
    """Store-vs-Inval classification of a proxy-space STORE.

    "Store events represent STOREs of positive values to proxy space ...
    Inval events represent STOREs of negative values."  A stored zero is
    not a positive byte count, so it classifies as Inval as well (the
    safest hardware reading; documented deviation from the strictly
    negative wording).
    """
    return UdmaEvent.STORE if value > 0 else UdmaEvent.INVAL
