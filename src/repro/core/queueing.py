"""Section 7: multi-page transfers with hardware request queueing.

The queued device accepts the same two-instruction initiation sequence,
but a successful LOAD *enqueues* the request and immediately frees the
initiation latch, so a user process can start a multi-page transfer with
"only two instructions per page in the best case".  "A transfer request is
refused only when the queue is full; otherwise the hardware accepts it and
performs the transfer when it reaches the head of the queue."

Design decisions the paper leaves open, resolved here:

* On queue-full refusal the DESTINATION/COUNT latch is *kept*, so the user
  retries by repeating only the LOAD.  The refusal status has the
  initiation flag set (failed) plus the transferring flag (device busy),
  marking it transient.
* The REMAINING-BYTES field reports the head (in-flight) transfer only;
  its width is page-based and cannot express a whole backlog.
* MATCH is set while *any* queued or in-flight request's source base
  equals the referenced proxy address, so "wait for the completion of the
  last transfer" works by repeating the last initiating LOAD.

Both of the paper's I4 strategies are provided: a per-page reference
counter (:meth:`QueuedUdmaController.page_reference_count`) and an
associative queue query (:meth:`QueuedUdmaController.query_page`); the
remap guard may use either.

Two priorities are implemented ("implementing just two queues, with the
higher priority queue reserved for the system, would certainly be
useful"): the kernel enqueues via :meth:`QueuedUdmaController.enqueue_system`,
which always drains first.
"""

from __future__ import annotations


from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Set

from repro.core.controller import UdmaController
from repro.core.events import UdmaEvent, classify_store
from repro.core.state_machine import ProxyOperand, SpaceKind, UdmaState
from repro.core.status import UdmaStatus
from repro.dma.engine import DmaEngine
from repro.errors import ConfigurationError, QueueFull
from repro.mem.layout import Layout
from repro.mem.physmem import PhysicalMemory
from repro.sim.clock import Clock
from repro.sim.trace import NULL_TRACER, Tracer


@dataclass
class QueuedRequest:
    """One accepted transfer waiting in (or at the head of) the queue."""

    source: ProxyOperand
    destination: ProxyOperand
    count: int
    system: bool = False
    #: observability sidecar: root span id riding with the request (None
    #: when tracing is off or the request is kernel-originated)
    span: Optional[int] = None
    #: cycle the request was accepted (per-transfer latency histogram)
    accepted_at: int = 0


class QueuedUdmaController(UdmaController):
    """A UDMA device with a bounded hardware request queue (section 7).

    Args:
        queue_depth: capacity of the user queue (and, separately, of the
            system queue).  Must be positive.
    """

    #: the queued latch/queue semantics differ from the base three-state
    #: machine, so the userlib send fast lane must not batch against it
    fast_path_capable = False

    def __init__(
        self,
        layout: Layout,
        physmem: PhysicalMemory,
        engine: DmaEngine,
        clock: Clock,
        queue_depth: int = 16,
        name: str = "udmaq",
        tracer: Tracer = NULL_TRACER,
        backend=None,
    ) -> None:
        super().__init__(
            layout, physmem, engine, clock, name=name, tracer=tracer, backend=backend
        )
        if queue_depth <= 0:
            raise ConfigurationError(
                f"queue_depth must be positive, got {queue_depth}"
            )
        self.queue_depth = queue_depth
        self._user_queue: Deque[QueuedRequest] = deque()
        self._system_queue: Deque[QueuedRequest] = deque()
        self._in_flight: Optional[QueuedRequest] = None
        # Latch of the two-instruction sequence (the queued device keeps
        # its own, simpler latch; the base class's three-state machine is
        # bypassed).
        self._dest: Optional[ProxyOperand] = None
        self._count = 0
        # Per-page reference counters (first I4 strategy).
        self._page_refs: Dict[int, int] = {}
        self.accepted = 0
        self.refused = 0

    # ---------------------------------------------------------- bus access
    def io_store(self, paddr: int, value: int) -> None:
        operand = self._decode(paddr)
        event = classify_store(value)
        if event is UdmaEvent.INVAL:
            # Clears the initiation latch only; accepted requests are
            # hardware property and keep flowing (section 6 statelessness).
            if self._dest is not None:
                self.backend.record_fault("inval")
            self._dest = None
            self._count = 0
            if self._spans is not None:
                self._span_drop_latch("inval")
        else:
            self._dest = operand
            self._count = min(
                value, self.page_size - (operand.proxy_addr % self.page_size)
            )
            if self._spans is not None:
                self._span_store_queued(operand, value)
        if self.tracer.enabled:
            self.tracer.emit(
                self.clock.now,
                self.name,
                "proxy-store",
                addr=f"{paddr:#x}",
                value=value,
                event=event.value,
                backlog=self.backlog_requests,
            )

    def io_load(self, paddr: int) -> int:
        operand = self._decode(paddr)
        status = self._load(operand, system=False)
        if self.tracer.enabled:
            self.tracer.emit(
                self.clock.now,
                self.name,
                "proxy-load",
                addr=f"{paddr:#x}",
                status=status.describe(),
                backlog=self.backlog_requests,
            )
        return status.encode(self.page_size)

    def inval(self) -> None:
        """Context-switch Inval: clears the latch, never queued requests."""
        if self._dest is not None:
            self.backend.record_fault("inval")
        self._dest = None
        self._count = 0
        if self._spans is not None:
            self._span_drop_latch("inval")
        if self.tracer.enabled:
            self.tracer.emit(self.clock.now, self.name, "inval")

    # ----------------------------------------------------------- span hooks
    # Host-side only, like the base class's: the queued device's root span
    # lives on the latch until the request is accepted, then rides the
    # QueuedRequest to completion.

    def _span_store_queued(self, operand: ProxyOperand, value: int) -> None:
        if self._span is not None:
            self._spans.event(
                self._span,
                "re-latch",
                dest=f"{operand.proxy_addr:#x}",
                nbytes=value,
            )
            self._span_dest = operand.proxy_addr
            return
        attrs = {
            "node": self.name,
            "dest": f"{operand.proxy_addr:#x}",
            "space": operand.space.value,
            "nbytes": value,
        }
        hint = self._retry_hint
        if hint is not None and hint[0] == operand.proxy_addr:
            attrs["retry_of"] = hint[1]
            self._retry_hint = None
        self._span = self._spans.begin("transfer", **attrs)
        self._span_dest = operand.proxy_addr

    def _span_drop_latch(self, status: str) -> None:
        if self._span is None:
            return
        self._spans.finish(self._span, status=status)
        self._retry_hint = (self._span_dest, self._span)
        self._span = None

    # ----------------------------------------------------------- privileged
    def enqueue_system(
        self, source_proxy: int, dest_proxy: int, count: int
    ) -> None:
        """Kernel-only: queue a transfer on the high-priority system queue.

        Raises :class:`QueueFull` when the system queue is at capacity
        (the kernel, unlike user code, gets a trap-style error).
        """
        if len(self._system_queue) >= self.queue_depth:
            raise QueueFull(f"{self.name}: system queue full")
        source = self._decode(source_proxy)
        dest = self._decode(dest_proxy)
        count = min(
            count,
            self.page_size - (source.proxy_addr % self.page_size),
            self.page_size - (dest.proxy_addr % self.page_size),
        )
        request = QueuedRequest(
            source, dest, count, system=True, accepted_at=self.clock.now
        )
        self._system_queue.append(request)
        self._note_pages(request, +1)
        self.accepted += 1
        self._maybe_launch()

    # --------------------------------------------------------- I4 support
    def page_reference_count(self, page: int) -> int:
        """How often a physical memory page appears in the queue/engine.

        The paper's "readable reference-count register for each page".
        """
        return self._page_refs.get(page, 0)

    def query_page(self, page: int) -> bool:
        """Associative query: is the page involved in any pending transfer?

        The paper's alternative I4 strategy -- "the hardware can support an
        associative query that searches the hardware queue for a page".
        """
        for request in self._all_pending():
            if page in self._request_pages(request):
                return True
        return False

    def memory_pages_in_registers(self) -> Set[int]:
        """All pages pinned-by-presence: queue + engine + latch."""
        pages = {page for page, refs in self._page_refs.items() if refs > 0}
        if self._dest is not None and self._dest.space is SpaceKind.MEMORY:
            pages.add(self.layout.unproxy(self._dest.proxy_addr) // self.page_size)
        return pages

    # ------------------------------------------------------------- queries
    @property
    def backlog_requests(self) -> int:
        """Pending request count, including the in-flight one."""
        return (
            len(self._user_queue)
            + len(self._system_queue)
            + (1 if self._in_flight is not None else 0)
        )

    @property
    def backlog_bytes(self) -> int:
        """Total bytes not yet transferred."""
        return sum(r.count for r in self._all_pending())

    @property
    def busy(self) -> bool:
        return self.backlog_requests > 0

    # ------------------------------------------------------------ internal
    def _load(self, operand: ProxyOperand, system: bool) -> UdmaStatus:
        if self._dest is None:
            # No initiation in progress: pure status read.
            return self._status_snapshot(operand)
        if operand.space is self._dest.space:
            # BadLoad, as in the basic device: drop the latch.
            self.backend.record_fault("bad-load")
            self._dest = None
            self._count = 0
            if self._spans is not None:
                self._span_drop_latch("bad-load")
            snapshot = self._status_snapshot(operand)
            return UdmaStatus(
                initiation=True,
                transferring=snapshot.transferring,
                invalid=snapshot.invalid,
                match=snapshot.match,
                wrong_space=True,
                remaining_bytes=snapshot.remaining_bytes,
            )
        count = min(
            self._count,
            self.page_size - (operand.proxy_addr % self.page_size),
        )
        errors = self._endpoint_errors(operand, self._dest, count)
        if errors:
            self.backend.record_error_bits(errors)
            self._dest = None
            self._count = 0
            if self._spans is not None:
                self._span_drop_latch("device-error")
            snapshot = self._status_snapshot(operand)
            return UdmaStatus(
                initiation=True,
                transferring=snapshot.transferring,
                invalid=snapshot.invalid,
                device_errors=errors,
                remaining_bytes=snapshot.remaining_bytes,
            )
        queue = self._system_queue if system else self._user_queue
        if len(queue) >= self.queue_depth:
            # Refused; keep the latch so the user can retry the LOAD alone.
            self.refused += 1
            if self._spans is not None and self._span is not None:
                # The span stays open with the latch; the retry is part of
                # the same transfer's life.
                self._spans.event(
                    self._span, "queue-refused", backlog=self.backlog_requests
                )
            snapshot = self._status_snapshot(operand)
            return UdmaStatus(
                initiation=True,
                transferring=True,
                match=snapshot.match,
                remaining_bytes=snapshot.remaining_bytes,
            )
        request = QueuedRequest(
            operand,
            self._dest,
            count,
            system=system,
            accepted_at=self.clock.now,
        )
        self._dest = None
        self._count = 0
        if self._spans is not None and self._span is not None:
            self._spans.event(
                self._span,
                "queued",
                source=f"{operand.proxy_addr:#x}",
                count=count,
                backlog=self.backlog_requests,
            )
            request.span = self._span
            self._span = None
        queue.append(request)
        self._note_pages(request, +1)
        self.accepted += 1
        self._maybe_launch()
        return UdmaStatus(
            initiation=False,
            transferring=True,
            remaining_bytes=min(self.page_size, count),
        )

    def _endpoint_errors(
        self, source: ProxyOperand, dest: ProxyOperand, count: int
    ) -> int:
        backend = self.backend
        extra = backend.initiation_check_cycles
        if extra:
            # Same charging point as the basic controller: the initiating
            # LOAD stalls for the backend's verdict.
            self.clock.advance(extra)
        errors = 0
        if source.space is SpaceKind.DEVICE:
            device, offset = self._device_at(source.proxy_addr)
            errors |= backend.source_errors(device, offset, count)
        if dest.space is SpaceKind.DEVICE:
            device, offset = self._device_at(dest.proxy_addr)
            errors |= backend.dest_errors(device, offset, count)
        return errors

    def _status_snapshot(self, operand: Optional[ProxyOperand]) -> UdmaStatus:
        busy = self.busy
        match = operand is not None and any(
            request.source.proxy_addr == operand.proxy_addr
            for request in self._all_pending()
        )
        return UdmaStatus(
            initiation=True,
            transferring=busy,
            invalid=not busy and self._dest is None,
            match=match,
            remaining_bytes=self._head_remaining(),
        )

    def _maybe_launch(self) -> None:
        if self.engine.busy or self._in_flight is not None:
            return
        if self._system_queue:
            request = self._system_queue.popleft()
        elif self._user_queue:
            request = self._user_queue.popleft()
        else:
            return
        self._in_flight = request
        source = self._endpoint(request.source)
        destination = self._endpoint(request.destination)
        duration = self.engine.transfer_duration(source, destination, request.count)
        self._transfer_start_time = self.clock.now
        self._transfer_duration = duration
        self._transfer_count = request.count
        if self._spans is not None and request.span is not None:
            self._spans.event(request.span, "launch")
        self.engine.start(
            source,
            destination,
            request.count,
            self._head_done,
            span_id=request.span,
        )

    def _head_done(self) -> None:
        finished = self._in_flight
        self._in_flight = None
        if finished is not None:
            self._note_pages(finished, -1)
            if self._latency_hist is not None:
                self._latency_hist.observe(self.clock.now - finished.accepted_at)
            if self._spans is not None and finished.span is not None:
                self._spans.finish(finished.span, status="complete")
        if self.tracer.enabled:
            self.tracer.emit(
                self.clock.now,
                self.name,
                "transfer-done",
                backlog=self.backlog_requests,
            )
        self._maybe_launch()

    def _head_remaining(self) -> int:
        if self._in_flight is None:
            return 0
        return min(self.page_size, self._remaining_in_flight())

    def _all_pending(self):
        if self._in_flight is not None:
            yield self._in_flight
        yield from self._system_queue
        yield from self._user_queue

    def _request_pages(self, request: QueuedRequest) -> Set[int]:
        pages: Set[int] = set()
        for operand in (request.source, request.destination):
            if operand.space is SpaceKind.MEMORY:
                real = self.layout.unproxy(operand.proxy_addr)
                pages.add(real // self.page_size)
        return pages

    def _note_pages(self, request: QueuedRequest, delta: int) -> None:
        for page in self._request_pages(request):
            new = self._page_refs.get(page, 0) + delta
            if new <= 0:
                self._page_refs.pop(page, None)
            else:
                self._page_refs[page] = new
