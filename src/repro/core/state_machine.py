"""The UDMA hardware state machine (Figure 5), implemented verbatim.

States: **Idle**, **DestLoaded**, **Transferring**.  Transitions:

====================  ==============  =======================================
state                 event           action / next state
====================  ==============  =======================================
Idle                  Store           latch DESTINATION+COUNT -> DestLoaded
Idle                  Load            status only (INVALID flag); stay Idle
Idle                  Inval           stay Idle
DestLoaded            Store           overwrite DESTINATION+COUNT; stay
DestLoaded            Inval           clear latch -> Idle
DestLoaded            Load (good)     latch SOURCE, start engine -> Transferring
DestLoaded            Load (BadLoad)  same-region request -> Idle, WRONG-SPACE
DestLoaded            Load (dev err)  device vetoed -> Idle, error bits set
Transferring          Store/Load/...  status only; no state change
Transferring          TransferDone    -> Idle
====================  ==============  =======================================

"If no transition is depicted for a given event in a given state, then that
event does not cause a state transition."

The machine is deliberately ignorant of address translation, devices and
timing: it sees pre-decoded :class:`ProxyOperand` values and returns a
:class:`StartDirective` when a transfer should begin.  The controller
(:mod:`repro.core.controller`) owns everything physical.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.events import UdmaEvent, classify_store
from repro.core.status import UdmaStatus


class UdmaState(enum.Enum):
    """The three states of Figure 5."""

    IDLE = "Idle"
    DEST_LOADED = "DestLoaded"
    TRANSFERRING = "Transferring"


class SpaceKind(enum.Enum):
    """Which proxy region an operand came from (for BadLoad detection)."""

    MEMORY = "memory"
    DEVICE = "device"


@dataclass(frozen=True)
class ProxyOperand:
    """A decoded proxy-space access as the state machine sees it.

    Attributes:
        proxy_addr: the physical proxy address the CPU referenced.
        space: memory-proxy or device-proxy.
    """

    proxy_addr: int
    space: SpaceKind


@dataclass(frozen=True)
class StartDirective:
    """Instruction from the state machine to the controller: start DMA."""

    source: ProxyOperand
    destination: ProxyOperand
    count: int


@dataclass(slots=True)
class LoadResult:
    """Outcome of a Load event: a status word, maybe a transfer to start.

    A plain (slotted, non-frozen) dataclass: one is built per proxy LOAD,
    so construction cost is on the polling hot path.
    """

    status: UdmaStatus
    start: Optional[StartDirective]
    event: UdmaEvent


class UdmaStateMachine:
    """The Figure 5 machine plus status-word generation.

    Args:
        page_size: hardware page size.  The COUNT register is only wide
            enough for one page, and "a basic UDMA transfer cannot cross a
            page boundary in either the source or destination spaces"
            (section 4) -- so the hardware clamps the latched count to the
            destination page span at Store time and to the source page span
            at Load time.  User code issues follow-up transfers for the
            remainder (section 8: "an additional transfer may be required
            if a page boundary is crossed").
        remaining_in_flight: callback giving the bytes still to move for
            the transfer currently in the engine (used for the
            REMAINING-BYTES field while Transferring).  Defaults to "all of
            it", which is the conservative hardware answer when the engine
            exposes no progress counter.
    """

    def __init__(
        self,
        page_size: int = 4096,
        remaining_in_flight: Optional[Callable[[], int]] = None,
    ) -> None:
        self.page_size = page_size
        self.state = UdmaState.IDLE
        self.destination: Optional[ProxyOperand] = None
        self.count = 0
        self.source: Optional[ProxyOperand] = None
        self._in_flight_count = 0
        self._remaining_in_flight = remaining_in_flight
        # Counters for tests and traces.
        self.stores = 0
        self.loads = 0
        self.invals = 0
        self.bad_loads = 0
        self.initiations = 0
        self.completions = 0
        # Interned status words: UdmaStatus is frozen, so identical field
        # combinations can share one instance (and its memoised encoding).
        # A polling loop sees the same handful of combinations per page.
        self._status_cache: "dict[tuple, UdmaStatus]" = {}

    # -------------------------------------------------------------- events
    def store(self, operand: ProxyOperand, value: int) -> UdmaEvent:
        """Process a STORE to proxy space; returns the classified event."""
        event = classify_store(value)
        if event is UdmaEvent.INVAL:
            self.invals += 1
            # "An Inval event moves the machine into the Idle state and is
            # used to terminate an incomplete transfer initiation sequence."
            # In Transferring, no transition is depicted: the in-flight
            # transfer continues ("once started, a UDMA transfer continues
            # regardless", section 6).
            if self.state is not UdmaState.TRANSFERRING:
                self._clear_latch()
                self.state = UdmaState.IDLE
            return event
        self.stores += 1
        if self.state is UdmaState.TRANSFERRING:
            # No transition depicted; the store is ignored.
            return event
        # Idle or DestLoaded: latch (or overwrite) DESTINATION and COUNT.
        # The count is clamped to the destination page span (see __init__).
        self.destination = operand
        self.count = min(value, self._page_span(operand.proxy_addr))
        self.state = UdmaState.DEST_LOADED
        return event

    def load(self, operand: ProxyOperand, device_errors: int = 0) -> LoadResult:
        """Process a LOAD from proxy space.

        ``device_errors`` carries the device-specific error bits computed
        by the controller for the *prospective* transfer; non-zero vetoes
        initiation (e.g. an alignment error) and returns the machine to
        Idle.
        """
        self.loads += 1

        if self.state is UdmaState.DEST_LOADED:
            assert self.destination is not None
            if operand.space is self.destination.space:
                # BadLoad: memory-to-memory or device-to-device request,
                # "which the (basic) UDMA device does not support".
                self.bad_loads += 1
                self._clear_latch()
                self.state = UdmaState.IDLE
                return LoadResult(
                    status=self._intern_status(
                        initiation=True,
                        invalid=True,  # now in Idle
                        wrong_space=True,
                    ),
                    start=None,
                    event=UdmaEvent.BAD_LOAD,
                )
            if device_errors:
                # The device refused the transfer; report its error bits.
                self._clear_latch()
                self.state = UdmaState.IDLE
                return LoadResult(
                    status=self._intern_status(
                        initiation=True,
                        invalid=True,
                        device_errors=device_errors,
                    ),
                    start=None,
                    event=UdmaEvent.LOAD,
                )
            # Successful initiation: DestLoaded -> Transferring.  Clamp to
            # the source page span too (hardware boundary enforcement).
            effective = min(self.count, self._page_span(operand.proxy_addr))
            directive = StartDirective(
                source=operand,
                destination=self.destination,
                count=effective,
            )
            self.source = operand
            self._in_flight_count = effective
            self.state = UdmaState.TRANSFERRING
            self.initiations += 1
            return LoadResult(
                status=self._intern_status(
                    initiation=False,  # zero flag == started
                    transferring=True,
                    remaining_bytes=self._remaining(),
                ),
                start=directive,
                event=UdmaEvent.LOAD,
            )

        # Idle or Transferring: pure status read, no transition.
        return LoadResult(
            status=self._status_snapshot(operand),
            start=None,
            event=UdmaEvent.LOAD,
        )

    def transfer_done(self) -> None:
        """The DMA engine's completion line: Transferring -> Idle."""
        if self.state is not UdmaState.TRANSFERRING:
            return
        self.completions += 1
        self._clear_latch()
        self.source = None
        self._in_flight_count = 0
        self.state = UdmaState.IDLE

    def terminate(self) -> bool:
        """Software abort of an in-flight transfer (paper's sketched edge).

        Returns True if a transfer was actually aborted.  The controller is
        responsible for aborting the engine too.
        """
        if self.state is not UdmaState.TRANSFERRING:
            return False
        self._clear_latch()
        self.source = None
        self._in_flight_count = 0
        self.state = UdmaState.IDLE
        return True

    # ------------------------------------------------------------- queries
    def status(self, operand: Optional[ProxyOperand] = None) -> UdmaStatus:
        """Status word as a non-initiating LOAD from ``operand`` would see."""
        return self._status_snapshot(operand)

    @property
    def transfer_source_base(self) -> Optional[int]:
        """Proxy address of the in-flight transfer's source base (for MATCH)."""
        return self.source.proxy_addr if self.source is not None else None

    # ------------------------------------------------------------ internal
    def _status_snapshot(self, operand: Optional[ProxyOperand]) -> UdmaStatus:
        transferring = self.state is UdmaState.TRANSFERRING
        match = (
            transferring
            and operand is not None
            and self.source is not None
            and operand.proxy_addr == self.source.proxy_addr
        )
        return self._intern_status(
            initiation=True,
            transferring=transferring,
            invalid=self.state is UdmaState.IDLE,
            match=match,
            remaining_bytes=self._remaining(),
        )

    _STATUS_CACHE_CAPACITY = 1 << 13

    def _intern_status(
        self,
        initiation: bool = True,
        transferring: bool = False,
        invalid: bool = False,
        match: bool = False,
        wrong_space: bool = False,
        remaining_bytes: int = 0,
        device_errors: int = 0,
    ) -> UdmaStatus:
        key = (
            initiation,
            transferring,
            invalid,
            match,
            wrong_space,
            remaining_bytes,
            device_errors,
        )
        status = self._status_cache.get(key)
        if status is None:
            status = UdmaStatus(*key)
            if len(self._status_cache) >= self._STATUS_CACHE_CAPACITY:
                self._status_cache.clear()
            self._status_cache[key] = status
        return status

    def _remaining(self) -> int:
        if self.state is UdmaState.DEST_LOADED:
            return self.count
        if self.state is UdmaState.TRANSFERRING:
            if self._remaining_in_flight is not None:
                return max(0, min(self._in_flight_count, self._remaining_in_flight()))
            return self._in_flight_count
        return 0

    def _page_span(self, proxy_addr: int) -> int:
        """Bytes from ``proxy_addr`` to the end of its (proxy) page."""
        return self.page_size - (proxy_addr % self.page_size)

    def _clear_latch(self) -> None:
        self.destination = None
        self.count = 0
