"""The UDMA status word.

Section 5, "Status Returned by Proxy LOADs": every LOAD from proxy space
returns a word with five single-bit flags, a REMAINING-BYTES field whose
width depends on the page size, and device-specific error bits above that.

Note the *inverted* sense of the initiation flag: **zero** means the access
started a transfer.  The :attr:`UdmaStatus.started` property exists so
user-level code never has to remember that.

Word layout (little end first)::

    bit 0              INITIATION   (0 = this access started a transfer)
    bit 1              TRANSFERRING (device is in the Transferring state)
    bit 2              INVALID      (device is in the Idle state)
    bit 3              MATCH        (Transferring and address == transfer base)
    bit 4              WRONG-SPACE  (this access was a BadLoad)
    bits 5 .. 5+R-1    REMAINING-BYTES (R = bits to express one page, +1)
    bits 5+R ..        DEVICE-SPECIFIC ERRORS
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import DEFAULT_PAGE_SIZE

_INITIATION_BIT = 1 << 0
_TRANSFERRING_BIT = 1 << 1
_INVALID_BIT = 1 << 2
_MATCH_BIT = 1 << 3
_WRONG_SPACE_BIT = 1 << 4
_FLAG_BITS = 5

#: memoised decode results; bounded so adversarial word streams (fuzz
#: tests sweeping the whole 32-bit space) cannot grow it without limit
_DECODE_CACHE: "dict[tuple[int, int], UdmaStatus]" = {}
_DECODE_CACHE_CAPACITY = 1 << 14


def remaining_field_bits(page_size: int) -> int:
    """Width of the REMAINING-BYTES field ("variable size, based on page size").

    A basic transfer never exceeds one page, so the field must express the
    inclusive range 0..page_size.
    """
    return page_size.bit_length()  # e.g. 4096 -> 13 bits (0..4096 inclusive)


@dataclass(frozen=True)
class UdmaStatus:
    """Decoded status word.

    Attributes mirror the paper's flag list; ``remaining_bytes`` and
    ``device_errors`` are the two variable-width fields.
    """

    initiation: bool = True  # True = "one" = did NOT start a transfer
    transferring: bool = False
    invalid: bool = False
    match: bool = False
    wrong_space: bool = False
    remaining_bytes: int = 0
    device_errors: int = 0

    # ------------------------------------------------------- user-friendly
    @property
    def started(self) -> bool:
        """True if this very access initiated a DMA transfer.

        (The raw flag is zero on success -- see module docstring.)
        """
        return not self.initiation

    @property
    def hard_error(self) -> bool:
        """True when retrying is pointless ("a real error has occurred").

        Wrong-space and device-specific errors are real errors; a set
        transferring or invalid flag merely means "re-try your
        two-instruction sequence" (section 5).
        """
        return self.wrong_space or self.device_errors != 0

    @property
    def should_retry(self) -> bool:
        """True when the initiation failed for a transient reason."""
        return (not self.started) and not self.hard_error

    # ------------------------------------------------------------ encoding
    def encode(self, page_size: int = DEFAULT_PAGE_SIZE) -> int:
        """Pack into the integer the hardware actually returns.

        The word is memoised on the (frozen, hence immutable) instance:
        the state machine interns its status snapshots, so a polling loop
        re-encodes the same object every load.
        """
        memo = self.__dict__.get("_encoded")
        if memo is not None and memo[0] == page_size:
            return memo[1]
        rem_bits = remaining_field_bits(page_size)
        if not 0 <= self.remaining_bytes <= page_size:
            raise ValueError(
                f"remaining_bytes {self.remaining_bytes} out of range "
                f"0..{page_size}"
            )
        if self.device_errors < 0:
            raise ValueError(f"device_errors must be non-negative")
        word = 0
        if self.initiation:
            word |= _INITIATION_BIT
        if self.transferring:
            word |= _TRANSFERRING_BIT
        if self.invalid:
            word |= _INVALID_BIT
        if self.match:
            word |= _MATCH_BIT
        if self.wrong_space:
            word |= _WRONG_SPACE_BIT
        word |= self.remaining_bytes << _FLAG_BITS
        word |= self.device_errors << (_FLAG_BITS + rem_bits)
        object.__setattr__(self, "_encoded", (page_size, word))
        return word

    @classmethod
    def decode(cls, word: int, page_size: int = DEFAULT_PAGE_SIZE) -> "UdmaStatus":
        """Unpack a status integer (inverse of :meth:`encode`).

        Decoded words are memoised: the instance is frozen, decoding is a
        pure function of ``(word, page_size)``, and a polling loop sees
        the same handful of words thousands of times.
        """
        key = (word, page_size)
        cached = _DECODE_CACHE.get(key)
        if cached is not None:
            return cached
        if word < 0:
            raise ValueError(f"status word must be non-negative, got {word}")
        rem_bits = remaining_field_bits(page_size)
        status = cls(
            initiation=bool(word & _INITIATION_BIT),
            transferring=bool(word & _TRANSFERRING_BIT),
            invalid=bool(word & _INVALID_BIT),
            match=bool(word & _MATCH_BIT),
            wrong_space=bool(word & _WRONG_SPACE_BIT),
            remaining_bytes=(word >> _FLAG_BITS) & ((1 << rem_bits) - 1),
            device_errors=word >> (_FLAG_BITS + rem_bits),
        )
        if len(_DECODE_CACHE) >= _DECODE_CACHE_CAPACITY:
            _DECODE_CACHE.clear()
        _DECODE_CACHE[key] = status
        return status

    def describe(self) -> str:
        """Compact human-readable form for traces and examples."""
        flags = []
        if self.started:
            flags.append("STARTED")
        if self.transferring:
            flags.append("TRANSFERRING")
        if self.invalid:
            flags.append("INVALID")
        if self.match:
            flags.append("MATCH")
        if self.wrong_space:
            flags.append("WRONG-SPACE")
        if self.device_errors:
            flags.append(f"DEVERR={self.device_errors:#x}")
        if self.remaining_bytes:
            flags.append(f"remaining={self.remaining_bytes}")
        return "|".join(flags) if flags else "(none)"
