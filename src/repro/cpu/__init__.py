"""The CPU model: issues loads/stores through the MMU onto the bus."""

from repro.cpu.cpu import CPU

__all__ = ["CPU"]
