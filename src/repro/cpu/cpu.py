"""The CPU: the only agent that issues virtual-address loads and stores.

Every user-level access is translated by the MMU; page faults trap to the
kernel's fault handler, which either repairs the mapping (demand paging,
proxy-page materialisation, I3 dirty upgrade -- section 6's three cases)
and lets the access retry, or refuses, in which case the access raises
:class:`ProtectionFault` to the application.

After translation the access is routed by physical region:

* real memory -> the RAM array;
* memory-proxy or device-proxy -> the UDMA controller's I/O port
  (uncachable, so each reference costs a full I/O bus round trip --
  this is where the "two user-level memory references" of an initiation
  get their 2.8 us).

The CPU charges every instruction to the shared clock, so device activity
(DMA bursts, packets in flight) interleaves with instruction execution at
cycle granularity.

Translation fast path
---------------------
Repeated accesses to the same page dominate every workload (polling a
proxy status word, streaming a buffer), so the CPU keeps a small software
translation cache in front of :meth:`repro.vm.mmu.MMU.translate`: one
entry per ``(asid, vpage)`` holding the physical page base, the region
routing, the write permission, and a reference to the authoritative PTE
(so referenced/dirty bits keep being set exactly as the MMU would set
them).  Each entry is stamped with two generation counters at fill time:

* :attr:`repro.vm.tlb.TLB.generation` -- bumped by every kernel shootdown
  (``invalidate`` / ``flush_asid`` / ``flush_all``) and by the
  scheduler's context-switch hook; and
* :attr:`repro.vm.page_table.PageTable.generation` -- bumped by every
  structural page-table edit (map / unmap / present / writable flips).

A stale stamp -- or a write through an entry cached non-writable, or any
miss -- falls back to the full ``MMU.translate`` walk, which preserves
every fault reason, the permission-upgrade re-walk, and the hardware
TLB's snapshot semantics.  The cache therefore changes *host* cost only:
simulated cycles, instruction/load/store counters and fault behaviour are
bit-identical to the slow path (the ``Machine`` assembly charges walk
penalties through the CPU cost model, not through the MMU clock).  See
``docs/PERFORMANCE.md`` ("Translation fast path").
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.controller import UdmaController
from repro.errors import AddressError, PageFault, ProtectionFault
from repro.mem.layout import Layout, Region
from repro.mem.physmem import PhysicalMemory
from repro.params import CostModel
from repro.sim.clock import Clock
from repro.sim.trace import NULL_TRACER, Tracer
from repro.vm.mmu import MMU, Access
from repro.vm.page_table import PageTable
from repro.snapshot.protocol import SnapshotMixin

#: fault handler signature: (vaddr, access, reason) -> repaired?
FaultHandler = Callable[[int, str, str], bool]

#: How many times one access may fault-and-retry before the CPU declares
#: the kernel's handler broken.  Two legitimate faults can stack (page-in,
#: then a dirty upgrade), so the bound is generous.
_MAX_FAULT_RETRIES = 8

#: Per-address-space bound on cached translations.  Wholesale clearing on
#: overflow keeps the structure a plain dict with no LRU bookkeeping on
#: the hit path; refills cost one slow walk per page.
_XLAT_CAPACITY = 4096


class _Translation:
    """One cached ``(asid, vpage)`` translation (internal to the CPU)."""

    __slots__ = ("paddr_base", "region", "writable", "pte", "table", "tlb_gen", "pt_gen")

    def __init__(self, paddr_base, region, writable, pte, table, tlb_gen, pt_gen):
        self.paddr_base = paddr_base
        self.region = region
        self.writable = writable
        self.pte = pte
        self.table = table
        self.tlb_gen = tlb_gen
        self.pt_gen = pt_gen


class CPU(SnapshotMixin):
    """One node's processor.

    Args:
        clock: the node's shared cycle clock.
        costs: cost model for instruction charging.
        mmu: the node's MMU.
        layout: physical address map (for region routing).
        physmem: the RAM array.
        udma: the UDMA controller servicing proxy regions (optional for
            memory-only configurations).
    """

    def __init__(
        self,
        clock: Clock,
        costs: CostModel,
        mmu: MMU,
        layout: Layout,
        physmem: PhysicalMemory,
        udma: Optional[UdmaController] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.clock = clock
        self.costs = costs
        self.mmu = mmu
        self.layout = layout
        self.physmem = physmem
        self.udma = udma
        self.tracer = tracer
        # Execution context, set by the kernel on context switch.
        self.page_table: Optional[PageTable] = None
        self.asid = 0
        self.fault_handler: Optional[FaultHandler] = None
        #: optional bus snooper for the automatic-update extension: called
        #: with (paddr, bytes) after every store that lands in real memory
        self.store_snoop: Optional[Callable[[int, bytes], None]] = None
        # Metrics.
        self.loads = 0
        self.stores = 0
        self.instructions = 0
        self.charged_cycles = 0
        # Translation fast path (see module docstring): per-asid vpage ->
        # _Translation dicts, swapped wholesale on set_context so the hit
        # path never builds (asid, vpage) tuples.  The cost model is
        # frozen and the MMU's TLB is fixed at construction, so both are
        # bound once here to keep the per-access attribute chase short.
        self._page_shift = costs.page_size.bit_length() - 1
        self._page_mask = costs.page_size - 1
        self._tlb = mmu.tlb
        self._mem_ref_cycles = costs.mem_ref_cycles
        self._io_ref_cycles = costs.io_ref_cycles
        self._advance = clock.advance
        self._xlat_by_asid: "dict[int, dict[int, _Translation]]" = {}
        self._xlat: "dict[int, _Translation]" = self._xlat_by_asid.setdefault(0, {})
        self.xlat_hits = 0
        self.xlat_misses = 0
        self.xlat_fills = 0
        #: fast-path toggles (the chaos differential oracle replays
        #: workloads with these off and asserts bit-identical simulated
        #: outcomes).  ``xlat_enabled=False`` stops the translation cache
        #: from filling, so every access takes the full MMU walk;
        #: ``bulk_io_enabled=False`` makes the buffer I/O paths charge and
        #: move word-at-a-time instead of per page run.
        self.xlat_enabled = True
        self.bulk_io_enabled = True

    # ------------------------------------------------------------- context
    def set_context(self, page_table: PageTable, asid: int) -> None:
        """Install an address space (the MMU part of a context switch)."""
        self.page_table = page_table
        self.asid = asid
        self._xlat = self._xlat_by_asid.setdefault(asid, {})

    # --------------------------------------------------------- word access
    def load(self, vaddr: int) -> int:
        """User-level word LOAD; returns the loaded value.

        For proxy addresses the returned value is the UDMA status word.
        """
        entry = self._xlat.get(vaddr >> self._page_shift)
        if (
            entry is not None
            and entry.table is self.page_table
            and entry.pt_gen == entry.table.generation
            and entry.tlb_gen == self._tlb.generation
        ):
            self.xlat_hits += 1
            entry.pte.referenced = True
            self.loads += 1
            self.instructions += 1
            paddr = entry.paddr_base | (vaddr & self._page_mask)
            if entry.region is Region.MEMORY:
                self._charge(self._mem_ref_cycles)
                return self.physmem.read_word(paddr)
            self._charge(self._io_ref_cycles)
            udma = self.udma
            if udma is None:
                return self._require_udma().io_load(paddr)
            return udma.io_load(paddr)
        paddr, region = self._access(vaddr, Access.READ)
        self.loads += 1
        self.instructions += 1
        if region is Region.MEMORY:
            self._charge(self.costs.mem_ref_cycles)
            return self.physmem.read_word(paddr)
        self._charge(self.costs.io_ref_cycles)
        return self._require_udma().io_load(paddr)

    def store(self, vaddr: int, value: int) -> None:
        """User-level word STORE.

        For proxy addresses ``value`` is the byte count (or a non-positive
        Inval); for memory it is stored as a little-endian word.
        """
        entry = self._xlat.get(vaddr >> self._page_shift)
        if (
            entry is not None
            and entry.writable
            and entry.table is self.page_table
            and entry.pt_gen == entry.table.generation
            and entry.tlb_gen == self._tlb.generation
        ):
            self.xlat_hits += 1
            pte = entry.pte
            pte.referenced = True
            pte.dirty = True
            self.stores += 1
            self.instructions += 1
            paddr = entry.paddr_base | (vaddr & self._page_mask)
            if entry.region is Region.MEMORY:
                self._charge(self._mem_ref_cycles)
                self.physmem.write_word(paddr, value)
                if self.store_snoop is not None:
                    self.store_snoop(
                        paddr, self.physmem.read(paddr, self.costs.word_size)
                    )
                return
            self._charge(self._io_ref_cycles)
            self._require_udma().io_store(paddr, value)
            return
        paddr, region = self._access(vaddr, Access.WRITE)
        self.stores += 1
        self.instructions += 1
        if region is Region.MEMORY:
            self._charge(self.costs.mem_ref_cycles)
            self.physmem.write_word(paddr, value)
            if self.store_snoop is not None:
                self.store_snoop(paddr, self.physmem.read(paddr, self.costs.word_size))
            return
        self._charge(self.costs.io_ref_cycles)
        self._require_udma().io_store(paddr, value)

    def poll_proxy(self, vaddr: int) -> Optional[bool]:
        """Completion-poll fast lane: the MATCH flag of ``load(vaddr)``.

        Returns None -- with **no** simulated effects -- whenever the
        access needs the full path (translation miss or stale, a non-proxy
        address, tracing/spans active, or a controller state where the
        LOAD would not be a pure status read).  Otherwise performs
        bookkeeping and charging bit-identical to :meth:`load` on a proxy
        status read and returns the MATCH flag, skipping the status-word
        construction/encode/decode round trip a poll loop never looks at.
        """
        entry = self._xlat.get(vaddr >> self._page_shift)
        if (
            entry is None
            or entry.region is Region.MEMORY
            or entry.table is not self.page_table
            or entry.pt_gen != entry.table.generation
            or entry.tlb_gen != self._tlb.generation
        ):
            return None
        udma = self.udma
        if (
            udma is None
            or not udma.fast_path_capable
            or not udma.fast_poll_ok()
        ):
            return None
        self.xlat_hits += 1
        entry.pte.referenced = True
        self.loads += 1
        self.instructions += 1
        self._charge(self._io_ref_cycles)
        return udma.fast_poll(entry.paddr_base | (vaddr & self._page_mask))

    def fence(self) -> None:
        """Order the STORE before the LOAD of an initiation sequence.

        "It is imperative that the order of the two memory references be
        maintained ... all [processors] provide some mechanism that
        software can use to ensure program order execution for
        memory-mapped I/O" (section 3).
        """
        self.instructions += 1
        self._charge(self.costs.fence_cycles)

    def execute(self, instructions: int) -> None:
        """Charge ``instructions`` cycles of plain computation."""
        self.instructions += instructions
        self._charge(instructions * self.costs.alu_cycles)

    # --------------------------------------------------------- buffer I/O
    # Page-run loops: one translation, one cycle charge and one snoop per
    # page run, with bytes moved through physmem memoryviews.  Protection
    # still applies to every byte (each run is translated), and the
    # counters come out identical to the historical word-stepped loop:
    # the per-word charges within one page were always consecutive, so
    # charging ``words * mem_ref_cycles`` in one call advances the clock
    # through exactly the same event sequence.
    def read_bytes(self, vaddr: int, nbytes: int) -> bytes:
        """Read a user buffer (charging one cached reference per word)."""
        out = bytearray(nbytes)
        self.read_into(vaddr, out)
        return bytes(out)

    def read_into(self, vaddr: int, buf) -> int:
        """Read ``len(buf)`` bytes at ``vaddr`` into a writable buffer.

        The zero-copy variant of :meth:`read_bytes`: the caller's buffer
        is filled in place (UDMA/packetiser snapshot capture uses this to
        skip the trailing ``bytes()`` copy).  Returns the byte count.
        """
        mv = memoryview(buf)
        nbytes = len(mv)
        page_size = self.costs.page_size
        word_size = self.costs.word_size
        offset = 0
        while offset < nbytes:
            addr = vaddr + offset
            chunk = min(page_size - (addr & self._page_mask), nbytes - offset)
            paddr, region = self._translate_run(addr, write=False)
            if region is not Region.MEMORY:
                raise AddressError(addr, "buffer reads must target memory")
            words = -(-chunk // word_size)
            self.loads += words
            self.instructions += words
            if self.bulk_io_enabled:
                self._charge(words * self.costs.mem_ref_cycles)
                mv[offset : offset + chunk] = self.physmem.view(paddr, chunk)
            else:
                # Word-stepped reference mode: same total charge, advanced
                # in per-word increments (events still fire at identical
                # cycle times), then the bytes move word-at-a-time.
                for _ in range(words):
                    self._charge(self.costs.mem_ref_cycles)
                src = self.physmem.view(paddr, chunk)
                for w in range(0, chunk, word_size):
                    end = min(w + word_size, chunk)
                    mv[offset + w : offset + end] = src[w:end]
            offset += chunk
        return nbytes

    def write_bytes(self, vaddr: int, data: "bytes | bytearray | memoryview") -> None:
        """Write a user buffer (charging one cached reference per word)."""
        mv = memoryview(data)
        nbytes = len(mv)
        page_size = self.costs.page_size
        word_size = self.costs.word_size
        offset = 0
        while offset < nbytes:
            addr = vaddr + offset
            chunk = min(page_size - (addr & self._page_mask), nbytes - offset)
            paddr, region = self._translate_run(addr, write=True)
            if region is not Region.MEMORY:
                raise AddressError(addr, "buffer writes must target memory")
            words = -(-chunk // word_size)
            self.stores += words
            self.instructions += words
            segment = mv[offset : offset + chunk]
            if self.bulk_io_enabled:
                self._charge(words * self.costs.mem_ref_cycles)
                self.physmem.write(paddr, segment)
            else:
                # Word-stepped reference mode (see read_into); the snoop
                # stays at run granularity in both modes so the
                # automatic-update packet stream is identical.
                for _ in range(words):
                    self._charge(self.costs.mem_ref_cycles)
                for w in range(0, chunk, word_size):
                    end = min(w + word_size, chunk)
                    self.physmem.write(paddr + w, segment[w:end])
            if self.store_snoop is not None:
                self.store_snoop(paddr, bytes(segment))
            offset += chunk

    # ------------------------------------------------------------ internal
    def _translate_run(self, vaddr: int, write: bool) -> "tuple[int, Region]":
        """Fast-path translation for one page run of a buffer access."""
        entry = self._xlat.get(vaddr >> self._page_shift)
        if (
            entry is not None
            and (entry.writable or not write)
            and entry.table is self.page_table
            and entry.pt_gen == entry.table.generation
            and entry.tlb_gen == self._tlb.generation
        ):
            self.xlat_hits += 1
            pte = entry.pte
            pte.referenced = True
            if write:
                pte.dirty = True
            return entry.paddr_base | (vaddr & self._page_mask), entry.region
        return self._access(vaddr, Access.WRITE if write else Access.READ)

    def _access(self, vaddr: int, access: Access) -> "tuple[int, Region]":
        if self.page_table is None:
            raise ProtectionFault(vaddr, access.value, "no address space installed")
        self.xlat_misses += 1
        for _ in range(_MAX_FAULT_RETRIES):
            try:
                paddr = self.mmu.translate(
                    self.page_table, self.asid, vaddr, access, user_mode=True
                )
            except PageFault as fault:
                if self.fault_handler is None:
                    raise ProtectionFault(vaddr, access.value, fault.reason) from fault
                if self.tracer.enabled:
                    self.tracer.emit(
                        self.clock.now,
                        "cpu",
                        "page-fault",
                        vaddr=f"{vaddr:#x}",
                        access=access.value,
                        reason=fault.reason,
                    )
                if not self.fault_handler(vaddr, access.value, fault.reason):
                    raise ProtectionFault(vaddr, access.value, fault.reason) from fault
                continue  # mapping repaired; retry the access
            region = self.layout.region_of(paddr)
            if region is Region.UNMAPPED:
                raise AddressError(paddr, "translation produced an unmapped physical address")
            self._fill_xlat(vaddr, paddr, region)
            return paddr, region
        raise ProtectionFault(
            vaddr,
            access.value,
            f"access still faulting after {_MAX_FAULT_RETRIES} kernel repairs",
        )

    def _fill_xlat(self, vaddr: int, paddr: int, region: Region) -> None:
        """Cache a successful translation for the fast path.

        Only entries whose authoritative PTE agrees with the translation
        just served are cached: if the hardware TLB served a stale
        snapshot (possible when the kernel skipped a shootdown), caching
        it would extend the stale window beyond the TLB's own capacity,
        so we let those keep going through ``MMU.translate``.
        """
        if not self.xlat_enabled:
            return
        table = self.page_table
        vpage = vaddr >> self._page_shift
        pte = table.get(vpage)
        if (
            pte is None
            or not pte.present
            or not pte.user
            or (pte.pfn << self._page_shift) != paddr & ~self._page_mask
        ):
            return
        cache = self._xlat
        if len(cache) >= _XLAT_CAPACITY and vpage not in cache:
            cache.clear()
        cache[vpage] = _Translation(
            paddr & ~self._page_mask,
            region,
            pte.writable,
            pte,
            table,
            self._tlb.generation,
            table.generation,
        )
        self.xlat_fills += 1

    def _require_udma(self) -> UdmaController:
        if self.udma is None:
            raise AddressError(0, "no UDMA controller attached but proxy space accessed")
        return self.udma

    def _charge(self, cycles: int) -> None:
        self.charged_cycles += cycles
        self._advance(cycles)

    # ------------------------------------------------------------- metrics
    @property
    def xlat_hit_rate(self) -> float:
        """Fraction of translations served by the fast path."""
        total = self.xlat_hits + self.xlat_misses
        return self.xlat_hits / total if total else 0.0
