"""The CPU: the only agent that issues virtual-address loads and stores.

Every user-level access is translated by the MMU; page faults trap to the
kernel's fault handler, which either repairs the mapping (demand paging,
proxy-page materialisation, I3 dirty upgrade -- section 6's three cases)
and lets the access retry, or refuses, in which case the access raises
:class:`ProtectionFault` to the application.

After translation the access is routed by physical region:

* real memory -> the RAM array;
* memory-proxy or device-proxy -> the UDMA controller's I/O port
  (uncachable, so each reference costs a full I/O bus round trip --
  this is where the "two user-level memory references" of an initiation
  get their 2.8 us).

The CPU charges every instruction to the shared clock, so device activity
(DMA bursts, packets in flight) interleaves with instruction execution at
cycle granularity.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.controller import UdmaController
from repro.errors import AddressError, PageFault, ProtectionFault
from repro.mem.layout import Layout, Region
from repro.mem.physmem import PhysicalMemory
from repro.params import CostModel
from repro.sim.clock import Clock
from repro.sim.trace import NULL_TRACER, Tracer
from repro.vm.mmu import MMU, Access
from repro.vm.page_table import PageTable

#: fault handler signature: (vaddr, access, reason) -> repaired?
FaultHandler = Callable[[int, str, str], bool]

#: How many times one access may fault-and-retry before the CPU declares
#: the kernel's handler broken.  Two legitimate faults can stack (page-in,
#: then a dirty upgrade), so the bound is generous.
_MAX_FAULT_RETRIES = 8


class CPU:
    """One node's processor.

    Args:
        clock: the node's shared cycle clock.
        costs: cost model for instruction charging.
        mmu: the node's MMU.
        layout: physical address map (for region routing).
        physmem: the RAM array.
        udma: the UDMA controller servicing proxy regions (optional for
            memory-only configurations).
    """

    def __init__(
        self,
        clock: Clock,
        costs: CostModel,
        mmu: MMU,
        layout: Layout,
        physmem: PhysicalMemory,
        udma: Optional[UdmaController] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.clock = clock
        self.costs = costs
        self.mmu = mmu
        self.layout = layout
        self.physmem = physmem
        self.udma = udma
        self.tracer = tracer
        # Execution context, set by the kernel on context switch.
        self.page_table: Optional[PageTable] = None
        self.asid = 0
        self.fault_handler: Optional[FaultHandler] = None
        #: optional bus snooper for the automatic-update extension: called
        #: with (paddr, bytes) after every store that lands in real memory
        self.store_snoop: Optional[Callable[[int, bytes], None]] = None
        # Metrics.
        self.loads = 0
        self.stores = 0
        self.instructions = 0
        self.charged_cycles = 0

    # ------------------------------------------------------------- context
    def set_context(self, page_table: PageTable, asid: int) -> None:
        """Install an address space (the MMU part of a context switch)."""
        self.page_table = page_table
        self.asid = asid

    # --------------------------------------------------------- word access
    def load(self, vaddr: int) -> int:
        """User-level word LOAD; returns the loaded value.

        For proxy addresses the returned value is the UDMA status word.
        """
        paddr, region = self._access(vaddr, Access.READ)
        self.loads += 1
        self.instructions += 1
        if region is Region.MEMORY:
            self._charge(self.costs.mem_ref_cycles)
            return self.physmem.read_word(paddr)
        self._charge(self.costs.io_ref_cycles)
        return self._require_udma().io_load(paddr)

    def store(self, vaddr: int, value: int) -> None:
        """User-level word STORE.

        For proxy addresses ``value`` is the byte count (or a non-positive
        Inval); for memory it is stored as a little-endian word.
        """
        paddr, region = self._access(vaddr, Access.WRITE)
        self.stores += 1
        self.instructions += 1
        if region is Region.MEMORY:
            self._charge(self.costs.mem_ref_cycles)
            self.physmem.write_word(paddr, value)
            if self.store_snoop is not None:
                self.store_snoop(paddr, self.physmem.read(paddr, self.costs.word_size))
            return
        self._charge(self.costs.io_ref_cycles)
        self._require_udma().io_store(paddr, value)

    def fence(self) -> None:
        """Order the STORE before the LOAD of an initiation sequence.

        "It is imperative that the order of the two memory references be
        maintained ... all [processors] provide some mechanism that
        software can use to ensure program order execution for
        memory-mapped I/O" (section 3).
        """
        self.instructions += 1
        self._charge(self.costs.fence_cycles)

    def execute(self, instructions: int) -> None:
        """Charge ``instructions`` cycles of plain computation."""
        self.instructions += instructions
        self._charge(instructions * self.costs.alu_cycles)

    # --------------------------------------------------------- buffer I/O
    # Word-by-word through the MMU, so protection applies to every byte.
    def read_bytes(self, vaddr: int, nbytes: int) -> bytes:
        """Read a user buffer (charging one cached reference per word)."""
        out = bytearray()
        offset = 0
        while offset < nbytes:
            chunk = min(self.costs.page_size - ((vaddr + offset) % self.costs.page_size),
                        nbytes - offset)
            paddr, region = self._access(vaddr + offset, Access.READ)
            if region is not Region.MEMORY:
                raise AddressError(vaddr + offset, "buffer reads must target memory")
            words = -(-chunk // self.costs.word_size)
            self.loads += words
            self.instructions += words
            self._charge(words * self.costs.mem_ref_cycles)
            out += self.physmem.read(paddr, chunk)
            offset += chunk
        return bytes(out)

    def write_bytes(self, vaddr: int, data: bytes) -> None:
        """Write a user buffer (charging one cached reference per word)."""
        offset = 0
        nbytes = len(data)
        while offset < nbytes:
            chunk = min(self.costs.page_size - ((vaddr + offset) % self.costs.page_size),
                        nbytes - offset)
            paddr, region = self._access(vaddr + offset, Access.WRITE)
            if region is not Region.MEMORY:
                raise AddressError(vaddr + offset, "buffer writes must target memory")
            words = -(-chunk // self.costs.word_size)
            self.stores += words
            self.instructions += words
            self._charge(words * self.costs.mem_ref_cycles)
            self.physmem.write(paddr, data[offset : offset + chunk])
            if self.store_snoop is not None:
                self.store_snoop(paddr, data[offset : offset + chunk])
            offset += chunk

    # ------------------------------------------------------------ internal
    def _access(self, vaddr: int, access: Access) -> "tuple[int, Region]":
        if self.page_table is None:
            raise ProtectionFault(vaddr, access.value, "no address space installed")
        for _ in range(_MAX_FAULT_RETRIES):
            try:
                paddr = self.mmu.translate(
                    self.page_table, self.asid, vaddr, access, user_mode=True
                )
            except PageFault as fault:
                if self.fault_handler is None:
                    raise ProtectionFault(vaddr, access.value, fault.reason) from fault
                if self.tracer.enabled:
                    self.tracer.emit(
                        self.clock.now,
                        "cpu",
                        "page-fault",
                        vaddr=f"{vaddr:#x}",
                        access=access.value,
                        reason=fault.reason,
                    )
                if not self.fault_handler(vaddr, access.value, fault.reason):
                    raise ProtectionFault(vaddr, access.value, fault.reason) from fault
                continue  # mapping repaired; retry the access
            region = self.layout.region_of(paddr)
            if region is Region.UNMAPPED:
                raise AddressError(paddr, "translation produced an unmapped physical address")
            return paddr, region
        raise ProtectionFault(
            vaddr,
            access.value,
            f"access still faulting after {_MAX_FAULT_RETRIES} kernel repairs",
        )

    def _require_udma(self) -> UdmaController:
        if self.udma is None:
            raise AddressError(0, "no UDMA controller attached but proxy space accessed")
        return self.udma

    def _charge(self, cycles: int) -> None:
        self.charged_cycles += cycles
        self.clock.advance(cycles)
