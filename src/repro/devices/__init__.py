"""I/O devices that accept UDMA transfers.

The paper claims UDMA "can be used with a wide variety of I/O devices
including network interfaces, data storage devices such as disks and tape
drives, and memory-mapped devices such as graphics frame-buffers"
(abstract).  This package provides that variety; the SHRIMP network
interface lives in :mod:`repro.net`.
"""

from repro.devices.audio import AudioDevice
from repro.devices.base import (
    ERR_ALIGNMENT,
    ERR_RANGE,
    ERR_READONLY,
    ERR_DEVICE_BASE,
    UDMADevice,
)
from repro.devices.disk import Disk
from repro.devices.framebuffer import FrameBuffer
from repro.devices.sink import SinkDevice
from repro.devices.tape import TapeDrive

__all__ = [
    "AudioDevice",
    "Disk",
    "ERR_ALIGNMENT",
    "ERR_DEVICE_BASE",
    "ERR_RANGE",
    "ERR_READONLY",
    "FrameBuffer",
    "SinkDevice",
    "TapeDrive",
    "UDMADevice",
]
