"""A streaming audio playback device.

The paper lists "audio and video devices" among UDMA's targets (section
1).  Audio adds a property the other devices lack: a *real-time
consumption rate*.  The device drains its ring buffer continuously while
playing; if the application cannot refill it fast enough -- for example
because each refill pays a traditional-DMA syscall -- the output
underruns.  The audio example and tests use this to show fine-grained,
low-overhead refills are exactly what UDMA provides.

Device-proxy interpretation: the offset is the *stream position* in
bytes.  Writes must be sequential (an append-only stream), which
exercises a device-specific error bit beyond the usual alignment check.
"""

from __future__ import annotations

from repro.devices.base import ERR_DEVICE_BASE, UDMADevice
from repro.errors import DeviceError

#: device-specific error: write not at the current stream position
ERR_NOT_SEQUENTIAL = ERR_DEVICE_BASE


class AudioDevice(UDMADevice):
    """A playback device consuming buffered samples at a fixed rate.

    Args:
        stream_bytes: size of the device-proxy window = maximum stream
            length addressable (positions wrap is not modelled; streams
            are bounded, like a sample being played).
        ring_bytes: size of the device's internal sample buffer.
        bytes_per_cycle: playback consumption rate.  44.1 kHz stereo
            16-bit audio is ~176 KB/s; at 60 MHz that is ~3e-3 B/cycle.
    """

    def __init__(
        self,
        name: str = "audio",
        stream_bytes: int = 1 << 20,
        ring_bytes: int = 16384,
        bytes_per_cycle: float = 0.003,
        alignment: int = 4,
    ) -> None:
        super().__init__(name, proxy_size=stream_bytes, alignment=alignment)
        if ring_bytes <= 0 or bytes_per_cycle <= 0:
            raise DeviceError(f"{name}: ring and rate must be positive")
        self.ring_bytes = ring_bytes
        self.bytes_per_cycle = bytes_per_cycle
        self._playing = False
        self._buffered = 0
        self._stream_position = 0
        self._last_drain_time = 0
        self._played = bytearray()
        self._pending = bytearray()
        self._starved = False
        self._underruns = 0
        self._drain_debt = 0.0  # fractional bytes carried between drains

    # ------------------------------------------------------------ playback
    def play(self) -> None:
        """Start consuming buffered samples."""
        self._drain_to_now()
        self._playing = True

    def pause(self) -> None:
        """Stop consuming (buffer holds)."""
        self._drain_to_now()
        self._playing = False

    @property
    def playing(self) -> bool:
        return self._playing

    @property
    def buffered_bytes(self) -> int:
        """Bytes currently queued in the ring (after draining to now)."""
        self._drain_to_now()
        return self._buffered

    @property
    def bytes_played(self) -> int:
        """Bytes that have reached the speaker (after draining to now)."""
        self._drain_to_now()
        return len(self._played)

    @property
    def underruns(self) -> int:
        """Starvation periods observed so far (after draining to now)."""
        self._drain_to_now()
        return self._underruns

    def played_data(self) -> bytes:
        """Every byte that has reached the speaker so far."""
        self._drain_to_now()
        return bytes(self._played)

    # ----------------------------------------------------------- DMA hooks
    def dma_read(self, offset: int, nbytes: int) -> bytes:
        raise DeviceError(f"{self.name}: audio playback is write-only")

    def dma_write(self, offset: int, data: bytes) -> None:
        self._drain_to_now()
        if offset != self._stream_position:
            raise DeviceError(
                f"{self.name}: non-sequential write at {offset} "
                f"(stream position is {self._stream_position})"
            )
        if self._buffered + len(data) > self.ring_bytes:
            raise DeviceError(
                f"{self.name}: ring overflow ({self._buffered}+{len(data)} "
                f"> {self.ring_bytes})"
            )
        self._pending += data
        self._buffered += len(data)
        self._stream_position += len(data)
        self._starved = False  # refilled; a new starvation counts afresh

    def check_transfer(self, as_source: bool, offset: int, nbytes: int) -> int:
        errors = super().check_transfer(as_source, offset, nbytes)
        if as_source:
            errors |= ERR_NOT_SEQUENTIAL  # write-only device
            return errors
        self._drain_to_now()
        if offset != self._stream_position:
            errors |= ERR_NOT_SEQUENTIAL
        return errors

    # ------------------------------------------------------------ internal
    def _drain_to_now(self) -> None:
        """Advance playback state to the current clock time (lazy model)."""
        if self.clock is None:
            return
        now = self.clock.now
        if not self._playing:
            self._last_drain_time = now
            return
        elapsed = now - self._last_drain_time
        self._last_drain_time = now
        want_exact = elapsed * self.bytes_per_cycle + self._drain_debt
        want = int(want_exact)
        self._drain_debt = want_exact - want
        if want <= 0:
            return
        take = min(want, self._buffered)
        if take:
            self._played += self._pending[:take]
            del self._pending[:take]
            self._buffered -= take
        if want > take and not self._starved:
            # The speaker wanted samples the buffer did not have; one
            # underrun per starvation period, not per query.
            self._starved = True
            self._underruns += 1
