"""The device protocol for UDMA-capable devices.

"The precise interpretation of addresses in device proxy space is device
specific" (section 4): each device defines what an offset into its
device-proxy window *means* -- a pixel, a disk block, a NIPT entry -- by
implementing :meth:`UDMADevice.dma_read` / :meth:`UDMADevice.dma_write`
against those offsets.

Devices also supply the DEVICE-SPECIFIC ERRORS field of the status word
through :meth:`UDMADevice.check_transfer`; the controller calls it before
committing an initiation, so a device can veto (for example) a misaligned
transfer, exactly as the paper's 4-byte-alignment example describes.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.errors import DeviceError
from repro.sim.clock import Clock
from repro.sim.trace import NULL_TRACER, Tracer

#: Standardised low error bits (devices may define more from
#: :data:`ERR_DEVICE_BASE` upward).
ERR_ALIGNMENT = 1 << 0
ERR_RANGE = 1 << 1
ERR_READONLY = 1 << 2
ERR_DEVICE_BASE = 1 << 3


class UDMADevice(abc.ABC):
    """Base class for devices that accept UDMA transfers.

    Args:
        name: unique device name (also names its proxy window).
        proxy_size: bytes of device-proxy space the device needs.
        alignment: required alignment of transfer base addresses and
            lengths; 0 disables the check.  (The SHRIMP interface
            "transfers outgoing message data aligned on 4-byte boundaries".)
    """

    def __init__(self, name: str, proxy_size: int, alignment: int = 0) -> None:
        if proxy_size <= 0:
            raise DeviceError(f"{name}: proxy_size must be positive")
        self.name = name
        self.proxy_size = proxy_size
        self.alignment = alignment
        self.clock: Optional[Clock] = None
        self.tracer: Tracer = NULL_TRACER
        # Span tracker when the owning Machine traces spans (repro.obs);
        # None otherwise, so call sites stay one attribute load.
        self._spans = None

    def attach(self, clock: Clock, tracer: Tracer = NULL_TRACER) -> None:
        """Wire the device to a node's clock and tracer."""
        self.clock = clock
        self.tracer = tracer

    # --------------------------------------------------------- device side
    @abc.abstractmethod
    def dma_read(self, offset: int, nbytes: int) -> bytes:
        """Produce ``nbytes`` for a device-to-memory transfer.

        ``offset`` is the device-proxy offset naming the source inside the
        device.
        """

    @abc.abstractmethod
    def dma_write(self, offset: int, data: bytes) -> None:
        """Consume ``data`` from a memory-to-device transfer."""

    def dma_extra_cycles(self, offset: int, nbytes: int) -> int:
        """Device latency added to the DMA duration (e.g. a disk seek)."""
        return 0

    # ------------------------------------------------------------ checking
    def check_transfer(self, as_source: bool, offset: int, nbytes: int) -> int:
        """Return DEVICE-SPECIFIC ERROR bits for a prospective transfer.

        Zero means the device accepts.  The default implementation checks
        alignment (when configured) and that the range fits the proxy
        window; subclasses extend it.
        """
        errors = 0
        if self.alignment and (offset % self.alignment or nbytes % self.alignment):
            errors |= ERR_ALIGNMENT
        if offset < 0 or offset + nbytes > self.proxy_size:
            errors |= ERR_RANGE
        return errors

    def physical_errors(self, as_source: bool, offset: int, nbytes: int) -> int:
        """The *physical* subset of :meth:`check_transfer`.

        Alignment, range and direction constraints are properties of the
        device hardware; protection backends that bring their own access
        verdict (e.g. a capability table) still consult these.  Devices
        whose ``check_transfer`` folds in a protection lookup (the NIC's
        NIPT walk) override this to expose only the physical part; by
        default the two checks coincide.
        """
        return self.check_transfer(as_source, offset, nbytes)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} proxy_size={self.proxy_size:#x}>"
