"""A block-storage device.

"If the device is a disk, a device address might name a block" (section
4): the device-proxy offset, divided by the block size, names the block;
the remainder is the offset within it.  Transfers add a seek cost when the
head moves, so traditional-vs-UDMA comparisons on the disk keep realistic
device latencies.
"""

from __future__ import annotations

from repro.devices.base import UDMADevice
from repro.errors import DeviceError
from repro.sim.clock import transfer_cycles


class Disk(UDMADevice):
    """A seek-modelled block device.

    Args:
        num_blocks: capacity in blocks.
        block_size: bytes per block (power of two).
        seek_cycles: head-move cost when the target block differs from the
            previous one (taken from the cost model by the machine builder).
        bytes_per_cycle: streaming rate after the seek.
    """

    def __init__(
        self,
        name: str = "disk",
        num_blocks: int = 4096,
        block_size: int = 512,
        seek_cycles: int = 600_000,
        bytes_per_cycle: float = 0.17,
        alignment: int = 4,
    ) -> None:
        if block_size <= 0 or block_size & (block_size - 1):
            raise DeviceError(f"block_size must be a power of two, got {block_size}")
        super().__init__(name, proxy_size=num_blocks * block_size, alignment=alignment)
        self.num_blocks = num_blocks
        self.block_size = block_size
        self.seek_cycles = seek_cycles
        self.bytes_per_cycle = bytes_per_cycle
        self._data = bytearray(num_blocks * block_size)
        self._head_block = 0
        self.seeks = 0
        self.reads = 0
        self.writes = 0

    # ----------------------------------------------------------- DMA hooks
    def dma_read(self, offset: int, nbytes: int) -> bytes:
        self._check(offset, nbytes)
        self._seek(offset // self.block_size)
        self.reads += 1
        return bytes(self._data[offset : offset + nbytes])

    def dma_write(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        self._seek(offset // self.block_size)
        self.writes += 1
        self._data[offset : offset + len(data)] = data

    def dma_extra_cycles(self, offset: int, nbytes: int) -> int:
        extra = transfer_cycles(nbytes, self.bytes_per_cycle)
        if offset // self.block_size != self._head_block:
            extra += self.seek_cycles
        return extra

    # ----------------------------------------------------------- test aids
    def read_block(self, block: int) -> bytes:
        """Direct (non-DMA) block read for tests and examples."""
        self._check_block(block)
        base = block * self.block_size
        return bytes(self._data[base : base + self.block_size])

    def write_block(self, block: int, data: bytes) -> None:
        """Direct (non-DMA) block write for tests and examples."""
        self._check_block(block)
        if len(data) > self.block_size:
            raise DeviceError(
                f"{self.name}: {len(data)} bytes exceed block size {self.block_size}"
            )
        base = block * self.block_size
        self._data[base : base + len(data)] = data

    # ------------------------------------------------------------ internal
    def _seek(self, block: int) -> None:
        if block != self._head_block:
            self.seeks += 1
            self._head_block = block

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or offset + nbytes > self.proxy_size:
            raise DeviceError(
                f"{self.name}: access [{offset}, {offset + nbytes}) outside disk"
            )

    def _check_block(self, block: int) -> None:
        if not 0 <= block < self.num_blocks:
            raise DeviceError(f"{self.name}: no block {block}")
