"""A graphics frame-buffer device.

"If the device is a graphics frame-buffer, a device address might specify
a pixel" (section 4).  The proxy offset is a byte offset into the pixel
array (row-major, ``bytes_per_pixel`` wide).  This is also the paper's
example of a memory-mapped device benefitting from UDMA bursts.
"""

from __future__ import annotations

from typing import Tuple

from repro.devices.base import UDMADevice
from repro.errors import DeviceError


class FrameBuffer(UDMADevice):
    """A ``width x height`` pixel array accepting UDMA blits."""

    def __init__(
        self,
        name: str = "fb",
        width: int = 640,
        height: int = 480,
        bytes_per_pixel: int = 4,
    ) -> None:
        if width <= 0 or height <= 0 or bytes_per_pixel <= 0:
            raise DeviceError("frame-buffer dimensions must be positive")
        super().__init__(
            name,
            proxy_size=width * height * bytes_per_pixel,
            alignment=bytes_per_pixel,
        )
        self.width = width
        self.height = height
        self.bytes_per_pixel = bytes_per_pixel
        self._pixels = bytearray(self.proxy_size)
        self.blits = 0

    # ----------------------------------------------------------- DMA hooks
    def dma_read(self, offset: int, nbytes: int) -> bytes:
        self._check(offset, nbytes)
        return bytes(self._pixels[offset : offset + nbytes])

    def dma_write(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        self.blits += 1
        self._pixels[offset : offset + len(data)] = data

    # -------------------------------------------------------------- pixels
    def pixel_offset(self, x: int, y: int) -> int:
        """Device-proxy byte offset of pixel ``(x, y)``."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise DeviceError(f"{self.name}: pixel ({x}, {y}) out of bounds")
        return (y * self.width + x) * self.bytes_per_pixel

    def get_pixel(self, x: int, y: int) -> bytes:
        """Raw bytes of one pixel."""
        base = self.pixel_offset(x, y)
        return bytes(self._pixels[base : base + self.bytes_per_pixel])

    def row(self, y: int) -> bytes:
        """One scanline's raw bytes."""
        base = self.pixel_offset(0, y)
        return bytes(self._pixels[base : base + self.width * self.bytes_per_pixel])

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or offset + nbytes > self.proxy_size:
            raise DeviceError(
                f"{self.name}: blit [{offset}, {offset + nbytes}) outside frame-buffer"
            )
