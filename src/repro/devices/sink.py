"""A trivial loop-back device for unit tests and microbenchmarks.

The sink stores whatever is written into a flat buffer and serves reads
from it, with configurable alignment so tests can exercise the
DEVICE-SPECIFIC ERRORS path.  Its device-proxy addresses are simply byte
offsets into the buffer.
"""

from __future__ import annotations

from repro.devices.base import UDMADevice
from repro.errors import DeviceError


class SinkDevice(UDMADevice):
    """Byte-bucket device; proxy offset == buffer offset."""

    def __init__(
        self,
        name: str = "sink",
        size: int = 1 << 20,
        alignment: int = 0,
    ) -> None:
        super().__init__(name, proxy_size=size, alignment=alignment)
        self._buffer = bytearray(size)
        self.reads = 0
        self.writes = 0

    def dma_read(self, offset: int, nbytes: int) -> bytes:
        self._check(offset, nbytes)
        self.reads += 1
        return bytes(self._buffer[offset : offset + nbytes])

    def dma_write(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        self.writes += 1
        self._buffer[offset : offset + len(data)] = data

    # ----------------------------------------------------------- test aids
    def peek(self, offset: int, nbytes: int) -> bytes:
        """Inspect buffer contents without counting a DMA read."""
        self._check(offset, nbytes)
        return bytes(self._buffer[offset : offset + nbytes])

    def poke(self, offset: int, data: bytes) -> None:
        """Preload buffer contents without counting a DMA write."""
        self._check(offset, len(data))
        self._buffer[offset : offset + len(data)] = data

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or offset + nbytes > self.proxy_size:
            raise DeviceError(
                f"{self.name}: access [{offset}, {offset + nbytes}) outside "
                f"device of size {self.proxy_size}"
            )
