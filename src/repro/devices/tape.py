"""A sequential tape drive.

Tape is the paper's example of a device where sequential access matters
("data storage devices such as disks and tape drives").  The proxy offset
names a position on the tape; non-sequential access pays a (large) wind
cost proportional to the distance moved, which makes tape a good stress
case for the device-specific extra-cycles hook.
"""

from __future__ import annotations

from repro.devices.base import UDMADevice
from repro.errors import DeviceError
from repro.sim.clock import transfer_cycles


class TapeDrive(UDMADevice):
    """A linear store with distance-proportional positioning cost."""

    def __init__(
        self,
        name: str = "tape",
        length: int = 1 << 22,
        wind_cycles_per_kb: int = 100,
        bytes_per_cycle: float = 0.05,
        alignment: int = 0,
    ) -> None:
        super().__init__(name, proxy_size=length, alignment=alignment)
        self.length = length
        self.wind_cycles_per_kb = wind_cycles_per_kb
        self.bytes_per_cycle = bytes_per_cycle
        self._data = bytearray(length)
        self._position = 0
        self.winds = 0

    def dma_read(self, offset: int, nbytes: int) -> bytes:
        self._check(offset, nbytes)
        self._wind(offset)
        data = bytes(self._data[offset : offset + nbytes])
        self._position = offset + nbytes
        return data

    def dma_write(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        self._wind(offset)
        self._data[offset : offset + len(data)] = data
        self._position = offset + len(data)

    def dma_extra_cycles(self, offset: int, nbytes: int) -> int:
        distance = abs(offset - self._position)
        wind = (distance // 1024) * self.wind_cycles_per_kb
        return wind + transfer_cycles(nbytes, self.bytes_per_cycle)

    @property
    def position(self) -> int:
        """Current head position (for tests)."""
        return self._position

    def _wind(self, offset: int) -> None:
        if offset != self._position:
            self.winds += 1

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or offset + nbytes > self.length:
            raise DeviceError(
                f"{self.name}: access [{offset}, {offset + nbytes}) off the tape"
            )
