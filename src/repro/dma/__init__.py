"""Classic DMA substrate: the transfer engine and the traditional controller."""

from repro.dma.engine import DeviceEndpoint, DmaEngine, MemoryEndpoint
from repro.dma.traditional import DmaDescriptor, TraditionalDmaController

__all__ = [
    "DeviceEndpoint",
    "DmaDescriptor",
    "DmaEngine",
    "MemoryEndpoint",
    "TraditionalDmaController",
]
