"""The standard DMA transfer engine (Figure 1).

One engine moves ``COUNT`` bytes between a source and a destination
endpoint, burst by burst, then raises its completion line.  Both the
traditional controller and the UDMA controller are thin layers over this
engine -- exactly the structure of the paper's Figure 4, where the UDMA
additions sit *between* the CPU and an unmodified DMA engine.

Endpoints hide whether a side is memory or a device port.  Unlike 1980s
DMA, the engine increments the device offset along with the memory address
("the UDMA mechanism can increment the device address along with the
memory address as the transfer progresses", section 4).

Host-side data movement is zero-copy: memory endpoints hand out
``memoryview`` windows onto physical RAM (:meth:`MemoryEndpoint.view`),
and the engine passes them straight to the destination, so an analytic
memory-to-memory transfer is a single ``memcpy``-equivalent slice
assignment with no staging buffer.  Views are *loans*: a destination must
consume (or copy) the data inside its ``write`` call and never retain the
view -- see ``docs/PERFORMANCE.md`` for the ownership rules.
"""

from __future__ import annotations

import math
from functools import partial
from typing import Callable, List, Optional, Protocol, Union

from repro.errors import DmaError
from repro.mem.physmem import PhysicalMemory
from repro.params import CostModel
from repro.sim.clock import Clock, Event, transfer_cycles
from repro.sim.trace import NULL_TRACER, Tracer

#: anything the buffer protocol accepts for a write
Buffer = Union[bytes, bytearray, memoryview]


class Endpoint(Protocol):
    """One side of a DMA transfer."""

    def read(self, nbytes: int) -> bytes:
        """Produce ``nbytes`` from this endpoint (endpoint is the source)."""
        ...

    def write(self, data: Buffer) -> None:
        """Consume ``data`` into this endpoint (endpoint is the destination).

        ``data`` may be a borrowed :class:`memoryview`; the endpoint must
        not retain it past this call.
        """
        ...

    def extra_cycles(self, nbytes: int) -> int:
        """Endpoint-specific latency added to the transfer (e.g. disk seek)."""
        ...

    def memory_base(self) -> Optional[int]:
        """Physical base address if this endpoint is memory, else None."""
        ...

    def describe(self) -> str:
        """Short label for traces."""
        ...


class MemoryEndpoint:
    """A physical-memory endpoint starting at ``paddr``."""

    def __init__(self, physmem: PhysicalMemory, paddr: int) -> None:
        self.physmem = physmem
        self.paddr = paddr

    def read(self, nbytes: int) -> bytes:
        return self.physmem.read(self.paddr, nbytes)

    def write(self, data: Buffer) -> None:
        self.physmem.write(self.paddr, data)

    def view(self, nbytes: int) -> memoryview:
        """Zero-copy window onto this endpoint's RAM (a loan)."""
        return self.physmem.view(self.paddr, nbytes)

    def view_slice(self, offset: int, nbytes: int) -> memoryview:
        """Zero-copy burst-granular window (word-stepping mode)."""
        return self.physmem.view(self.paddr + offset, nbytes)

    def read_slice(self, offset: int, nbytes: int) -> bytes:
        """Burst-granular read (word-stepping mode)."""
        return self.physmem.read(self.paddr + offset, nbytes)

    def write_slice(self, offset: int, data: Buffer) -> None:
        """Burst-granular write (word-stepping mode)."""
        self.physmem.write(self.paddr + offset, data)

    def supports_incremental_write(self) -> bool:
        return True

    def extra_cycles(self, nbytes: int) -> int:
        return 0

    def memory_base(self) -> Optional[int]:
        return self.paddr

    def describe(self) -> str:
        return f"mem[{self.paddr:#x}]"


class DeviceEndpoint:
    """A device endpoint at a device-specific offset.

    The ``device`` must provide ``dma_read(offset, nbytes)``,
    ``dma_write(offset, data)`` and ``dma_extra_cycles(direction, offset,
    nbytes)`` (see :class:`repro.devices.base.UDMADevice`).
    """

    def __init__(self, device: object, offset: int) -> None:
        self.device = device
        self.offset = offset

    def read(self, nbytes: int) -> bytes:
        return self.device.dma_read(self.offset, nbytes)  # type: ignore[attr-defined]

    def write(self, data: Buffer) -> None:
        self.device.dma_write(self.offset, data)  # type: ignore[attr-defined]

    def read_slice(self, offset: int, nbytes: int) -> bytes:
        """Burst-granular device read (word-stepping mode)."""
        return self.device.dma_read(self.offset + offset, nbytes)  # type: ignore[attr-defined]

    def write_slice(self, offset: int, data: Buffer) -> None:  # pragma: no cover
        raise DmaError(
            "devices receive their payload in one delivery; incremental "
            "writes are staged by the engine"
        )

    def supports_incremental_write(self) -> bool:
        # Devices (a NIC packetizer, an audio ring) consume a transfer as
        # one unit; the stepping engine stages bursts and delivers once.
        return False

    def extra_cycles(self, nbytes: int) -> int:
        return self.device.dma_extra_cycles(self.offset, nbytes)  # type: ignore[attr-defined]

    def memory_base(self) -> Optional[int]:
        return None

    def describe(self) -> str:
        name = getattr(self.device, "name", type(self.device).__name__)
        return f"{name}[{self.offset:#x}]"


class DmaEngine:
    """The state machine + register file of a standard DMA engine.

    The engine is busy from :meth:`start` until the scheduled completion
    event fires; data is materialised at completion time (the registers,
    which is all the kernel's I4 check can see, hold the *base* addresses
    throughout, matching the paper's MATCH-flag definition).
    """

    def __init__(
        self,
        clock: Clock,
        costs: CostModel,
        name: str = "dma",
        tracer: Tracer = NULL_TRACER,
        burst_bytes: int = 0,
        bursts_per_event: int = 1,
    ) -> None:
        """``burst_bytes > 0`` selects *word-stepping* mode: the transfer
        advances in bursts of that many bytes, each moving real data at
        its own simulated time.  Progress is then observable
        (:attr:`progress_bytes`) and an abort leaves partially written
        memory behind -- higher fidelity at higher event cost.  The
        default (0) is the analytic mode: one completion event, data
        materialised at completion.

        ``bursts_per_event`` batches consecutive bursts into one clock
        event (stepping mode only).  Data still lands at the simulated
        time the *last* burst of each batch would complete, so final
        memory contents and the completion cycle are identical to
        ``bursts_per_event=1``; only the granularity at which progress is
        *observable* coarsens.  Host event cost drops from O(count/burst)
        to O(count/(burst*batch))."""
        if bursts_per_event < 1:
            raise DmaError(
                f"{name}: bursts_per_event must be >= 1, got {bursts_per_event}"
            )
        self.clock = clock
        self.costs = costs
        self.name = name
        self.tracer = tracer
        self.burst_bytes = burst_bytes
        self.bursts_per_event = bursts_per_event
        self.busy = False
        self.source: Optional[Endpoint] = None
        self.destination: Optional[Endpoint] = None
        self.count = 0
        self.transfers_completed = 0
        self.bytes_transferred = 0
        #: bytes moved so far for the in-flight transfer (stepping mode
        #: only; None in analytic mode)
        self.progress_bytes: Optional[int] = None
        self._completion_event: Optional[Event] = None
        self._burst_events: List[Event] = []
        self._staged: Optional[bytearray] = None
        #: private copy of a device source's bytes (kept as bytes, not
        #: a memoryview, so an in-flight transfer can be pickled)
        self._source_snapshot: "Optional[bytes | bytearray]" = None
        self._oneshot: List[Callable[[], None]] = []
        self._listeners: List[Callable[[], None]] = []
        # Observability (see repro.obs): the span tracker when tracing is
        # on, the open "dma" child span, and the root transfer span whose
        # data this engine is moving (published as current_data_span while
        # delivering, so a NIC can parent its packet spans).
        self._spans = None
        self._dma_span: Optional[int] = None
        self._parent_span: Optional[int] = None

    # ------------------------------------------------------------ controls
    def start(
        self,
        source: Endpoint,
        destination: Endpoint,
        count: int,
        on_complete: Optional[Callable[[], None]] = None,
        span_id: Optional[int] = None,
    ) -> None:
        """Begin moving ``count`` bytes; raises :class:`DmaError` if busy."""
        if self.busy:
            raise DmaError(f"{self.name}: engine started while busy")
        if count <= 0:
            raise DmaError(f"{self.name}: byte count must be positive, got {count}")
        self.busy = True
        self.source = source
        self.destination = destination
        self.count = count
        if on_complete is not None:
            self._oneshot.append(on_complete)
        duration = self.transfer_duration(source, destination, count)
        if self._spans is not None and span_id is not None:
            self._parent_span = span_id
            self._dma_span = self._spans.begin(
                "dma",
                parent=span_id,
                engine=self.name,
                src=source.describe(),
                dst=destination.describe(),
                count=count,
            )
        if self.burst_bytes > 0:
            self._start_stepping(duration)
        else:
            self._completion_event = self.clock.schedule(duration, self._complete)
        if self.tracer.enabled:
            self.tracer.emit(
                self.clock.now,
                self.name,
                "dma-start",
                src=source.describe(),
                dst=destination.describe(),
                count=count,
                duration=duration,
            )

    def transfer_duration(
        self, source: Endpoint, destination: Endpoint, count: int
    ) -> int:
        """Cycles the engine will stay busy for this transfer."""
        return (
            self.costs.dma_start_cycles
            + transfer_cycles(count, self.costs.dma_bytes_per_cycle)
            + source.extra_cycles(count)
            + destination.extra_cycles(count)
        )

    def abort(self) -> None:
        """Cancel an in-flight transfer.

        This implements the terminate edge the paper sketches ("it is not
        hard to imagine adding one", section 5) -- for memory-system errors
        the hardware cannot handle transparently.  In analytic mode no
        data has moved yet; in word-stepping mode the bursts already
        delivered stay delivered, exactly like real hardware.
        """
        if not self.busy:
            return
        if self._completion_event is not None:
            self._completion_event.cancel()
        for event in self._burst_events:
            event.cancel()
        if self.tracer.enabled:
            self.tracer.emit(self.clock.now, self.name, "dma-abort", count=self.count)
        if self._spans is not None and self._dma_span is not None:
            self._spans.finish(self._dma_span, status="aborted")
        self._reset()

    def add_completion_listener(self, callback: Callable[[], None]) -> None:
        """Register a persistent completion callback (the interrupt line)."""
        self._listeners.append(callback)

    # ------------------------------------------------------------ register
    # The kernel's I4 remap guard reads these ("the kernel reads the two
    # registers to perform the check", section 6).
    def source_memory_base(self) -> Optional[int]:
        """Physical base in the SOURCE register, if it names memory."""
        return self.source.memory_base() if self.busy and self.source else None

    def destination_memory_base(self) -> Optional[int]:
        """Physical base in the DESTINATION register, if it names memory."""
        return (
            self.destination.memory_base()
            if self.busy and self.destination
            else None
        )

    # --------------------------------------------------------- word stepping
    def _start_stepping(self, duration: int) -> None:
        """Schedule chunked burst events, spaced over the data time.

        Each event covers ``bursts_per_event`` consecutive bursts and
        fires when the *last* burst of its chunk completes, so the final
        event -- and therefore the completion cycle -- lands exactly where
        per-burst scheduling would put it.
        """
        assert self.source is not None and self.destination is not None
        self.progress_bytes = 0
        # Staging buffer for destinations that take one delivery; filled
        # in place, handed over as a view (the device copies what it keeps).
        if not self.destination.supports_incremental_write():
            self._staged = bytearray(self.count)
        # A device source streams into the engine FIFO as the transfer
        # starts (device reads can have side effects, so exactly once).
        if not isinstance(self.source, MemoryEndpoint):
            self._source_snapshot = self.source.read(self.count)
        bursts = max(1, math.ceil(self.count / self.burst_bytes))
        lead = duration - transfer_cycles(self.count, self.costs.dma_bytes_per_cycle)
        data_cycles = duration - lead
        self._burst_events = []
        step = self.bursts_per_event
        for first in range(1, bursts + 1, step):
            i = min(first + step - 1, bursts)  # last burst of this chunk
            at = lead + math.ceil(data_cycles * i / bursts)
            offset = (first - 1) * self.burst_bytes
            size = min(self.count, i * self.burst_bytes) - offset
            # partial (not a closure): pending burst events are snapshot
            # state and must pickle with the event queue.
            event = self.clock.schedule(
                at, partial(self._chunk_event, offset, size, i == bursts)
            )
            self._burst_events.append(event)

    def _chunk_event(self, offset: int, size: int, last: bool) -> None:
        assert self.source is not None and self.destination is not None
        if self._source_snapshot is not None:
            chunk: Buffer = memoryview(self._source_snapshot)[
                offset : offset + size
            ]
        else:
            chunk = self.source.view_slice(offset, size)  # type: ignore[attr-defined]
        if self._staged is not None:
            self._staged[offset : offset + size] = chunk
        else:
            self.destination.write_slice(offset, chunk)  # type: ignore[attr-defined]
        self.progress_bytes = offset + size
        if last:
            if self._staged is not None:
                self._deliver(memoryview(self._staged))
            self._finish()

    def _deliver(self, data: Buffer) -> None:
        """Hand the payload to the destination, tagging the data's span.

        While the write runs, ``current_data_span`` names the transfer
        that produced these bytes, so a destination that fans the data out
        (a NIC carving packets) can attach its own child spans.
        """
        spans = self._spans
        if spans is not None and self._parent_span is not None:
            spans.current_data_span = self._parent_span
            try:
                self.destination.write(data)
            finally:
                spans.current_data_span = None
        else:
            self.destination.write(data)

    def _finish(self) -> None:
        self.transfers_completed += 1
        self.bytes_transferred += self.count
        if self.tracer.enabled:
            self.tracer.emit(
                self.clock.now, self.name, "dma-complete", count=self.count
            )
        if self._spans is not None and self._dma_span is not None:
            self._spans.finish(self._dma_span, status="complete")
        callbacks = self._oneshot + list(self._listeners)
        self._reset()
        for callback in callbacks:
            callback()

    # ------------------------------------------------------------ internal
    def _complete(self) -> None:
        assert self.source is not None and self.destination is not None
        # Analytic mode: one view-to-endpoint handoff, no staging buffer.
        # A memory source lends a view of its RAM; a device source
        # materialises bytes (device reads may have side effects).
        viewer = getattr(self.source, "view", None)
        data: Buffer = (
            viewer(self.count) if viewer is not None else self.source.read(self.count)
        )
        self._deliver(data)
        self.transfers_completed += 1
        self.bytes_transferred += self.count
        if self.tracer.enabled:
            self.tracer.emit(
                self.clock.now, self.name, "dma-complete", count=self.count
            )
        if self._spans is not None and self._dma_span is not None:
            self._spans.finish(self._dma_span, status="complete")
        callbacks = self._oneshot + list(self._listeners)
        self._reset()
        for callback in callbacks:
            callback()

    def _reset(self) -> None:
        self.busy = False
        self.source = None
        self.destination = None
        self.count = 0
        self.progress_bytes = None
        self._completion_event = None
        self._burst_events = []
        self._staged = None
        self._source_snapshot = None
        self._oneshot = []
        self._dma_span = None
        self._parent_span = None
