"""The traditional, kernel-programmed DMA controller (section 2 baseline).

The controller exposes exactly the interface of Figure 1: the kernel loads
physical source/destination/count registers (or a descriptor chain for
multi-page transfers) and pokes the control register.  All the expensive
work -- the system call, translation, permission verification, pinning --
happens in the kernel driver (:mod:`repro.kernel.syscalls`); this module is
only the device side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.dma.engine import DmaEngine, Endpoint
from repro.errors import DmaError
from repro.sim.trace import NULL_TRACER, Tracer


@dataclass
class DmaDescriptor:
    """A chain of simple transfers, one entry per (contiguous) piece.

    This is the "DMA descriptor specifying the pages to transfer" the
    kernel builds in step 2 of the traditional recipe.
    """

    entries: List["DescriptorEntry"] = field(default_factory=list)

    def add(self, source: Endpoint, destination: Endpoint, count: int) -> None:
        """Append one transfer to the chain."""
        if count <= 0:
            raise DmaError(f"descriptor entry count must be positive, got {count}")
        self.entries.append(DescriptorEntry(source, destination, count))

    @property
    def total_bytes(self) -> int:
        """Total payload of the chain."""
        return sum(entry.count for entry in self.entries)

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class DescriptorEntry:
    """One contiguous piece of a descriptor chain."""

    source: Endpoint
    destination: Endpoint
    count: int


class TraditionalDmaController:
    """Processes descriptor chains on a :class:`DmaEngine`.

    Completion of the whole chain raises the (simulated) interrupt line:
    every callback registered with :meth:`on_interrupt` fires once per
    completed chain.
    """

    def __init__(
        self,
        engine: DmaEngine,
        name: str = "tdma",
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.engine = engine
        self.name = name
        self.tracer = tracer
        self._interrupt_handlers: List[Callable[[], None]] = []
        self._chain: List[DescriptorEntry] = []
        self._chain_pos = 0  # cursor into _chain; avoids O(n) pop(0) per piece
        self._active = False
        self.chains_completed = 0

    @property
    def busy(self) -> bool:
        """True while a chain is being processed."""
        return self._active

    def on_interrupt(self, handler: Callable[[], None]) -> None:
        """Attach a completion-interrupt handler (normally the kernel)."""
        self._interrupt_handlers.append(handler)

    def remove_interrupt_handler(self, handler: Callable[[], None]) -> None:
        """Detach a previously attached handler (ignored if absent)."""
        if handler in self._interrupt_handlers:
            self._interrupt_handlers.remove(handler)

    def start(self, descriptor: DmaDescriptor) -> None:
        """Begin processing a descriptor chain; raises if already busy."""
        if self._active:
            raise DmaError(f"{self.name}: start while a chain is active")
        if not descriptor.entries:
            raise DmaError(f"{self.name}: empty descriptor chain")
        self._chain = list(descriptor.entries)
        self._chain_pos = 0
        self._active = True
        if self.tracer.enabled:
            self.tracer.emit(
                self.engine.clock.now,
                self.name,
                "chain-start",
                pieces=len(self._chain),
                bytes=descriptor.total_bytes,
            )
        self._start_next()

    # ------------------------------------------------------------ internal
    def _start_next(self) -> None:
        entry = self._chain[self._chain_pos]
        self._chain_pos += 1
        self.engine.start(
            entry.source, entry.destination, entry.count, self._piece_done
        )

    def _piece_done(self) -> None:
        if self._chain_pos < len(self._chain):
            self._start_next()
            return
        self._active = False
        self._chain = []
        self.chains_completed += 1
        if self.tracer.enabled:
            self.tracer.emit(self.engine.clock.now, self.name, "chain-complete")
        for handler in self._interrupt_handlers:
            handler()
