"""Exception hierarchy for the UDMA/SHRIMP simulation.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  Faults that the simulated hardware
reports *architecturally* (page faults, protection faults) are modelled as
exceptions because the simulated CPU delivers them synchronously to the
kernel's fault dispatcher, exactly like a trap.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was built or wired with inconsistent parameters."""


class AddressError(ReproError):
    """An address fell outside every region of the address map."""

    def __init__(self, address: int, detail: str = "") -> None:
        self.address = address
        message = f"address {address:#x} is not mapped to any region"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class AlignmentError(ReproError):
    """An access violated the alignment requirement of a bus or device."""

    def __init__(self, address: int, alignment: int) -> None:
        self.address = address
        self.alignment = alignment
        super().__init__(
            f"address {address:#x} is not aligned to {alignment} bytes"
        )


class PageFault(ReproError):
    """An architectural page fault raised by the MMU.

    The simulated CPU catches this and invokes the kernel's fault handler,
    which either repairs the mapping (demand paging, proxy-page
    materialisation, dirty-bit upgrade) and restarts the access, or kills
    the faulting process.

    Attributes:
        vaddr: faulting virtual address.
        access: the attempted access ("read" or "write").
        reason: machine-readable fault cause (``"not-present"``,
            ``"protection"``, ``"not-mapped"``).
    """

    def __init__(self, vaddr: int, access: str, reason: str) -> None:
        self.vaddr = vaddr
        self.access = access
        self.reason = reason
        super().__init__(
            f"page fault at {vaddr:#x} on {access} ({reason})"
        )


class ProtectionFault(ReproError):
    """A fatal protection violation (the kernel decided to kill the access).

    Raised back to the application after the kernel's fault handler
    concludes the access is illegal — the simulation analogue of SIGSEGV.
    """

    def __init__(self, vaddr: int, access: str, detail: str = "") -> None:
        self.vaddr = vaddr
        self.access = access
        message = f"illegal {access} at {vaddr:#x}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class DeviceError(ReproError):
    """A device rejected an operation (bad block, out-of-range offset...)."""


class DmaError(ReproError):
    """The DMA engine or its driver was used incorrectly."""


class QueueFull(ReproError):
    """The UDMA hardware request queue refused a new transfer (section 7)."""


class NetworkError(ReproError):
    """The interconnect or a NIC detected a malformed or undeliverable packet."""


class SyscallError(ReproError):
    """A system call failed; carries a unix-flavoured error name."""

    def __init__(self, errno: str, detail: str = "") -> None:
        self.errno = errno
        message = errno
        if detail:
            message = f"{errno}: {detail}"
        super().__init__(message)


class SimulationLimitError(ReproError):
    """An event-loop guard tripped (e.g. ``run_until_idle`` max_events).

    Distinguishes "the simulation is livelocked / runaway" from silent
    truncation: the clock stops *before* exceeding the budget, leaves the
    queue accounting consistent, and reports where it stopped so the
    failure is diagnosable.

    Attributes:
        limit: the event budget that was exhausted.
        fired: events fired within this call before stopping.
        pending: live events still queued when the guard tripped.
        now: simulated time when the guard tripped.
        next_event_time: due time of the event that was *not* fired.
    """

    def __init__(
        self,
        limit: int,
        fired: int,
        pending: int,
        now: int,
        next_event_time: "int | None",
    ) -> None:
        self.limit = limit
        self.fired = fired
        self.pending = pending
        self.now = now
        self.next_event_time = next_event_time
        super().__init__(
            f"event budget exhausted: fired {fired} events "
            f"(limit {limit}) with {pending} still pending at t={now} "
            f"(next due at t={next_event_time}); a component appears to "
            "reschedule itself unboundedly"
        )


class InvariantViolation(ReproError):
    """One of the paper's invariants I1-I4 was found violated.

    Only raised by the runtime checkers in :mod:`repro.kernel.invariants`;
    a correct system never triggers it.  Tests use it to prove the
    maintenance rules actually hold under adversarial workloads.
    """

    def __init__(self, invariant: str, detail: str) -> None:
        self.invariant = invariant
        super().__init__(f"invariant {invariant} violated: {detail}")


class PoolIntegrityError(ReproError):
    """An object pool's recycling discipline was violated.

    Raised only in pool-debug mode (``pool_debug=True`` /
    ``REPRO_POOL_DEBUG=1``): a double release, a release of a still-live
    object, or an acquire of an object the pool does not own.  A correct
    fast lane never triggers it; the chaos differential suite runs with
    the checks on to prove recycling never aliases two tenants.
    """

    def __init__(self, detail: str) -> None:
        super().__init__(f"pool integrity violated: {detail}")


class SnapshotError(ReproError):
    """A machine snapshot could not be captured or restored.

    Covers structural failures: a blob that is not a snapshot at all
    (bad magic), a truncated or corrupted payload, or an object graph
    that cannot be serialised.  Version skew raises the more specific
    :class:`SnapshotVersionError`.
    """


class SnapshotVersionError(SnapshotError):
    """A snapshot blob's format version is not the one this code writes.

    Snapshots are point-in-time serialisations of internal object
    graphs, so there is no cross-version compatibility promise: the
    reader refuses anything but its own version, naming both versions so
    the mismatch is diagnosable from the message alone.
    """

    def __init__(self, found: int, expected: int) -> None:
        self.found = found
        self.expected = expected
        super().__init__(
            f"snapshot format version {found} is not readable by this "
            f"build (expects version {expected}); re-capture the snapshot "
            "with the current code"
        )
