"""Virtual-address RDMA: IOMMU translation plus page-fault-and-resume.

See :mod:`repro.iommu.iommu` for the model and ``docs/VM_RDMA.md`` for
the design narrative.  Enabled only through the typed configs
(:class:`repro.config.MachineConfig` / :class:`repro.config.ClusterConfig`
with ``iommu=True`` or an :class:`repro.config.IommuConfig`); off by
default and bit-identical-off.
"""

from repro.config import IommuConfig
from repro.iommu.iommu import (
    Iommu,
    IoPageTable,
    Iotlb,
    ParkedTransfer,
    RxVerdict,
)

__all__ = [
    "Iommu",
    "IommuConfig",
    "IoPageTable",
    "Iotlb",
    "ParkedTransfer",
    "RxVerdict",
]
