"""The virtual-address RDMA tier: an IOMMU in front of the receive DMA.

The paper's NIPT names *physical* frames on the receiving node, which
forces the receiving kernel to keep exported pages resident (the
mapping-time pin of :mod:`repro.cluster`).  The two Psistakis theses in
PAPERS.md develop the alternative this module reproduces: NIPT entries
name a destination *address space* and *virtual* page, packets carry the
tagged virtual destination word across the wire unchanged (see
:mod:`repro.net.packet`), and the receiving NIC translates at delivery
time through an I/O page table -- so exported pages need no pin and may
be evicted like any other memory.

Translation path (per delivered data packet):

* **IOTLB hit** -- the (asid, vpage) entry is cached and both its
  generation stamps are current; costs :attr:`CostModel.iommu_iotlb_hit_cycles`
  of receive-DMA occupancy.
* **IOTLB miss** -- the NIC-side walker reads the I/O page table and the
  CPU page table (:attr:`CostModel.iommu_walk_cycles`); a resident page
  fills the IOTLB and delivers.
* **Page fault** -- the target page is valid but not resident: the
  transfer is *parked* in a bounded fault queue and the kernel services
  it (map-in or swap-in through the existing :class:`VmManager` paths,
  via the advance-free :meth:`VmManager.dma_map_in`), after which the
  receive DMA *replays* the parked payload from the faulting offset --
  page-fault-and-resume instead of the paper's abort.
* **Degradation** -- a full fault queue, an exhausted park budget, a
  revoked window or a dead address space degrade to the classic SHRIMP
  outcome: the packet is refused and counted in ``rx_errors``, exactly
  the Inval/BadLoad contract the paper's hardware gives.

Shootdown coherence costs zero new kernel hooks: every IOTLB entry is
stamped with the *CPU* page table's generation and the I/O page table's
generation at fill time, and is honoured only while both are current.
Any remap, unmap, page-out or protection change bumps the CPU
generation (see :mod:`repro.vm.page_table`); any export or revocation
bumps the I/O generation.  A stale entry silently re-walks.

Delivery ordering: arrivals targeting a page with parked transfers park
*behind* them (FIFO per page) even if the page has become resident in
the meantime, and a replay delivers the whole per-page queue in arrival
order -- so the bytes a receive buffer ends up holding are exactly what
a fault-free execution of the same sends produces.  The chaos harness's
IOMMU convergence oracle (``repro.chaos``) is built on that guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.config import IommuConfig
from repro.errors import ConfigurationError
from repro.net.packet import Packet, unpack_virtual
from repro.sim.trace import NULL_TRACER, Tracer
from repro.snapshot.protocol import SnapshotMixin

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel
    from repro.net.nic import ShrimpNic
    from repro.sim.clock import Clock


class IoPageTable:
    """The per-node I/O page table: exported (asid, vpage) windows.

    The OS registers a window when a receive buffer is exported and
    unregisters it at channel release.  The *write permission* of a
    window is fixed at export time: a later CPU-side ``mprotect`` changes
    what the process may store, not what the device may deliver -- the
    same decoupling real IOMMUs give (the IOPTE, not the CPU PTE,
    authorises device access).
    """

    def __init__(self) -> None:
        self._windows: Dict[Tuple[int, int], bool] = {}
        #: bumped on every register/unregister; IOTLB entries are stamped
        #: with this and die with it
        self.generation = 0

    def register(self, asid: int, vpage: int, writable: bool = True) -> None:
        """OS-side: export one page of a receive window."""
        self._windows[(asid, vpage)] = writable
        self.generation += 1

    def unregister(self, asid: int, vpage: int) -> None:
        """OS-side: revoke one exported page (channel release)."""
        if self._windows.pop((asid, vpage), None) is not None:
            self.generation += 1

    def lookup(self, asid: int, vpage: int) -> Optional[bool]:
        """Walker-side: the window's write permission, or None."""
        return self._windows.get((asid, vpage))

    @property
    def windows(self) -> int:
        """Number of registered window pages."""
        return len(self._windows)


class Iotlb:
    """The IOMMU's translation cache, FIFO-evicted and generation-stamped.

    Each entry carries ``(frame, pte, cpu_generation, io_generation)``;
    a lookup is a hit only while *both* stamps are current, which makes
    the cache shootdown-coherent with the CPU MMU for free (see module
    docstring).  The cached PTE reference lets a hit set the dirty bit
    (a use-bit write, no shootdown needed) without re-walking.
    """

    def __init__(self, entries: int) -> None:
        if entries <= 0:
            raise ConfigurationError(f"IOTLB needs a positive size, got {entries}")
        self.capacity = entries
        self._entries: Dict[Tuple[int, int], Tuple[int, object, int, int]] = {}
        self.hits = 0
        self.misses = 0

    def lookup(
        self, asid: int, vpage: int, cpu_gen: int, io_gen: int
    ) -> Optional[Tuple[int, object]]:
        """(frame, pte) when cached and current, else None."""
        cached = self._entries.get((asid, vpage))
        if cached is not None:
            frame, pte, stamp_cpu, stamp_io = cached
            if stamp_cpu == cpu_gen and stamp_io == io_gen:
                self.hits += 1
                return frame, pte
            # Stale: a remap or revocation happened since the fill.
            del self._entries[(asid, vpage)]
        self.misses += 1
        return None

    def fill(
        self, asid: int, vpage: int, frame: int, pte: object, cpu_gen: int, io_gen: int
    ) -> None:
        key = (asid, vpage)
        if key not in self._entries and len(self._entries) >= self.capacity:
            # FIFO eviction: dicts iterate in insertion order.
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = (frame, pte, cpu_gen, io_gen)

    def invalidate(self, asid: int, vpage: int) -> None:
        self._entries.pop((asid, vpage), None)

    @property
    def occupancy(self) -> int:
        return len(self._entries)


@dataclass
class ParkedTransfer:
    """One incoming transfer awaiting fault service (or a predecessor's).

    The payload is snapshotted at park time, so a pooled packet shell can
    go home immediately and the sender-side buffer reuse rules are
    unchanged.  ``packet`` retains the original object only when
    something downstream (spans, reliability, receive hooks) must see it
    again at replay.
    """

    nic: "ShrimpNic"
    asid: int
    vpage: int
    offset: int              # byte offset within the destination page
    payload: bytes
    dst_word: int            # the original tagged destination word
    src_node: int
    seq: int
    span: Optional[int]
    packet: Optional[Packet] = None
    #: service attempts consumed (bounded by ``IommuConfig.park_budget``)
    parks: int = 0


@dataclass
class RxVerdict:
    """The IOMMU's decision for one delivered packet."""

    kind: str                # "deliver" | "park" | "abort"
    paddr: int = 0           # resolved physical address (kind == "deliver")
    stall: int = 0           # receive-DMA occupancy charged for translation
    reason: str = ""         # abort cause (kind == "abort")


class Iommu(SnapshotMixin):
    """One node's IOMMU: translate, park, service, replay.

    Built by :class:`~repro.machine.Machine` when its config carries an
    :class:`~repro.config.IommuConfig`; wired to every attached device
    that exposes ``attach_iommu`` (the :class:`~repro.net.nic.ShrimpNic`).
    """

    def __init__(
        self,
        config: IommuConfig,
        clock: "Clock",
        costs,
        kernel: "Kernel",
        name: str = "iommu",
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.config = config
        self.clock = clock
        self.costs = costs
        self.kernel = kernel
        self.name = name
        self.tracer = tracer
        self.page_size = costs.page_size
        self.table = IoPageTable()
        self.iotlb = Iotlb(config.iotlb_entries)
        #: per-page FIFO queues of parked transfers, keyed by (asid, vpage)
        self._parked: Dict[Tuple[int, int], List[ParkedTransfer]] = {}
        self._parked_count = 0
        # Counters (exactly-once ledger: every translated data packet ends
        # up in exactly one of delivered_direct / delivered_replayed /
        # aborted).
        self.translations = 0
        self.delivered_direct = 0
        self.delivered_replayed = 0
        self.faults_parked = 0
        self.faults_reparked = 0
        self.aborted = 0
        self.aborts_by_reason: Dict[str, int] = {}

    # ------------------------------------------------------------- windows
    def register_window(self, asid: int, vpage: int, writable: bool = True) -> None:
        """Export one receive-buffer page to the device side."""
        self.table.register(asid, vpage, writable)

    def unregister_window(self, asid: int, vpage: int) -> None:
        """Revoke one exported page; parked transfers for it degrade."""
        self.table.unregister(asid, vpage)
        self.iotlb.invalidate(asid, vpage)
        if (asid, vpage) in self._parked:
            self._abort_page((asid, vpage), "window-revoked")

    # ------------------------------------------------------------ receive
    def receive(self, nic: "ShrimpNic", packet: Packet) -> RxVerdict:
        """Translate one virtual-destination packet at delivery time.

        Called by the NIC's receive-DMA completion; returns the verdict
        the NIC acts on.  Never advances the clock (this runs inside an
        event callback); timing is conveyed as ``stall`` cycles of
        receive-DMA occupancy, and fault service latency via scheduled
        events.
        """
        self.translations += 1
        asid, vaddr = unpack_virtual(packet.dst_paddr)
        vpage, offset = divmod(vaddr, self.page_size)
        if offset + len(packet.payload) > self.page_size:
            # A basic UDMA transfer cannot cross a page boundary; a tagged
            # word saying otherwise is corrupt.
            return self._abort(nic, packet, "page-cross", self.costs.iommu_walk_cycles)
        key = (asid, vpage)
        if key in self._parked:
            # Predecessors are parked on this page: queue behind them even
            # if translation would now succeed -- delivery order within a
            # page must match the fault-free execution.
            return self._park(nic, packet, key, offset, follow=True)
        writable = self.table.lookup(asid, vpage)
        if writable is None:
            return self._abort(nic, packet, "unmapped", self.costs.iommu_walk_cycles)
        if not writable:
            return self._abort(nic, packet, "readonly", self.costs.iommu_walk_cycles)
        process = self.kernel.processes.get(asid)
        if process is None:
            return self._abort(nic, packet, "no-asid", self.costs.iommu_walk_cycles)
        cpu_gen = process.page_table.generation
        io_gen = self.table.generation
        cached = self.iotlb.lookup(asid, vpage, cpu_gen, io_gen)
        if cached is not None:
            frame, pte = cached
            pte.dirty = True  # receiving-side I3: the device wrote the page
            self.delivered_direct += 1
            return RxVerdict(
                "deliver",
                paddr=frame * self.page_size + offset,
                stall=self.costs.iommu_iotlb_hit_cycles,
            )
        pte = process.page_table.get(vpage)
        if pte is not None and pte.present:
            self.iotlb.fill(asid, vpage, pte.pfn, pte, cpu_gen, io_gen)
            pte.dirty = True
            self.delivered_direct += 1
            return RxVerdict(
                "deliver",
                paddr=pte.pfn * self.page_size + offset,
                stall=self.costs.iommu_walk_cycles,
            )
        # Valid window, page not resident: page-fault-and-resume.
        return self._park(nic, packet, key, offset, follow=False)

    # ------------------------------------------------------------- parking
    def _park(
        self,
        nic: "ShrimpNic",
        packet: Packet,
        key: Tuple[int, int],
        offset: int,
        follow: bool,
    ) -> RxVerdict:
        if self._parked_count >= self.config.fault_queue_depth:
            return self._abort(
                nic, packet, "queue-full", self.costs.iommu_walk_cycles
            )
        retain = packet.span is not None or nic.reliability is not None or bool(
            nic.on_receive
        )
        parked = ParkedTransfer(
            nic=nic,
            asid=key[0],
            vpage=key[1],
            offset=offset,
            payload=bytes(packet.payload),
            dst_word=packet.dst_paddr,
            src_node=packet.src_node,
            seq=packet.seq,
            span=packet.span,
            packet=packet if retain else None,
        )
        queue = self._parked.get(key)
        if queue is None:
            self._parked[key] = [parked]
            # Head of a new queue: schedule the kernel's fault service.
            # partial (not a lambda): parked fault-service events are
            # snapshot state and must pickle with the event queue.
            self.clock.schedule(
                self.costs.iommu_fault_service_cycles,
                partial(self._service, key),
            )
        else:
            queue.append(parked)
        self._parked_count += 1
        self.faults_parked += 1
        if self.tracer.enabled:
            self.tracer.emit(
                self.clock.now,
                self.name,
                "rx-park",
                asid=key[0],
                vpage=f"{key[1]:#x}",
                bytes=len(parked.payload),
                follow=follow,
            )
        return RxVerdict("park", stall=self.costs.iommu_walk_cycles)

    def _service(self, key: Tuple[int, int]) -> None:
        """Kernel fault service for one parked page (scheduled event)."""
        queue = self._parked.get(key)
        if not queue:
            return  # revoked and aborted while the event was in flight
        head = queue[0]
        asid, vpage = key
        process = self.kernel.processes.get(asid)
        if process is None or self.table.lookup(asid, vpage) is None:
            self._abort_page(key, "window-revoked")
            return
        pte = process.page_table.get(vpage)
        if pte is not None and pte.present:
            frame, extra = pte.pfn, 0
        else:
            mapped = self.kernel.vm.dma_map_in(process, vpage)
            if mapped is None:
                # No free frame right now: re-park, bounded by the budget.
                head.parks += 1
                self.faults_reparked += 1
                if head.parks >= self.config.park_budget:
                    self._abort_page(key, "park-budget")
                    return
                self.clock.schedule(
                    self.costs.iommu_fault_service_cycles,
                    partial(self._service, key),
                )
                return
            frame, extra = mapped
        # Pin the frame through the replay window so eviction cannot race
        # the queued payload writes.  Pins are booleans, not refcounts:
        # only release a pin this path took.
        was_pinned = self.kernel.frames.is_pinned(frame)
        if not was_pinned:
            self.kernel.frames.pin(frame)
        if extra > 0:
            # Swap-in I/O: the replay happens when the disk transfer lands.
            self.clock.schedule(
                extra, partial(self._replay, key, frame, was_pinned)
            )
        else:
            self._replay(key, frame, was_pinned)

    def _replay(self, key: Tuple[int, int], frame: int, was_pinned: bool) -> None:
        """Deliver every transfer parked on a now-resident page, in order."""
        queue = self._parked.pop(key, None)
        if queue is None:
            return
        asid, vpage = key
        base = frame * self.page_size
        process = self.kernel.processes.get(asid)
        pte = process.page_table.get(vpage) if process is not None else None
        for parked in queue:
            self._parked_count -= 1
            if pte is not None:
                pte.dirty = True
            parked.nic.complete_parked(parked, base + parked.offset)
            self.delivered_replayed += 1
        if not was_pinned and self.kernel.frames.is_pinned(frame):
            self.kernel.frames.unpin(frame)
        if self.tracer.enabled:
            self.tracer.emit(
                self.clock.now,
                self.name,
                "rx-replay",
                asid=asid,
                vpage=f"{vpage:#x}",
                frame=frame,
                transfers=len(queue),
            )

    # -------------------------------------------------------------- aborts
    def _abort(
        self, nic: "ShrimpNic", packet: Packet, reason: str, stall: int
    ) -> RxVerdict:
        self.aborted += 1
        self.aborts_by_reason[reason] = self.aborts_by_reason.get(reason, 0) + 1
        if self.tracer.enabled:
            self.tracer.emit(
                self.clock.now,
                self.name,
                "rx-abort",
                reason=reason,
                dst=f"{packet.dst_paddr:#x}",
            )
        return RxVerdict("abort", stall=stall, reason=reason)

    def _abort_page(self, key: Tuple[int, int], reason: str) -> None:
        """Degrade a whole parked page queue to the classic refusal."""
        queue = self._parked.pop(key, None)
        if queue is None:
            return
        for parked in queue:
            self._parked_count -= 1
            self.aborted += 1
            self.aborts_by_reason[reason] = self.aborts_by_reason.get(reason, 0) + 1
            parked.nic.abort_parked(parked, reason)

    # ----------------------------------------------------------- inspection
    @property
    def parked_count(self) -> int:
        """Transfers currently parked across all pages."""
        return self._parked_count

    def counters(self) -> Dict[str, int]:
        """Curated counter snapshot (chaos / tests)."""
        return {
            "translations": self.translations,
            "iotlb_hits": self.iotlb.hits,
            "iotlb_misses": self.iotlb.misses,
            "delivered_direct": self.delivered_direct,
            "delivered_replayed": self.delivered_replayed,
            "faults_parked": self.faults_parked,
            "faults_reparked": self.faults_reparked,
            "aborted": self.aborted,
            "parked_now": self._parked_count,
            "windows": self.table.windows,
        }
