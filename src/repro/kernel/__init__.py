"""Operating-system substrate: processes, scheduling, VM management, syscalls.

This package implements section 6 of the paper -- everything the kernel
must do so that UDMA initiations need no kernel on the critical path:

* :mod:`repro.kernel.scheduler` fires the **I1** Inval on every context
  switch (one store).
* :mod:`repro.kernel.vm_manager` maintains **I2** (proxy mappings valid
  only while the underlying mapping is) and **I3** (writable proxy implies
  dirty page), services the three proxy-fault cases, and runs demand
  paging.
* :mod:`repro.kernel.remap_guard` enforces **I4** (never remap a page the
  hardware registers/queue name) -- the replacement for pinning.
* :mod:`repro.kernel.syscalls` provides the *traditional* DMA path of
  section 2 as the baseline, plus the proxy-grant call.
* :mod:`repro.kernel.invariants` contains runtime checkers used by the
  test suite to prove I1-I4 hold under adversarial workloads.
"""

from repro.kernel.invariants import InvariantChecker
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process, ProcessState
from repro.kernel.remap_guard import RemapGuard
from repro.kernel.scheduler import Scheduler
from repro.kernel.vm_manager import VmManager

__all__ = [
    "InvariantChecker",
    "Kernel",
    "Process",
    "ProcessState",
    "RemapGuard",
    "Scheduler",
    "VmManager",
]
