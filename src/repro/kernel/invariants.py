"""Runtime checkers for the paper's invariants I1-I4.

"The operating system maintains four invariants" (section 6).  These
checkers walk the live system state and raise
:class:`~repro.errors.InvariantViolation` on any breach.  The test suite
runs them after adversarial workloads (paging pressure during transfers,
context switches mid-initiation, cleaning races) to demonstrate the
maintenance rules actually work -- and mutates the kernel in targeted ways
to show the checkers would catch a broken kernel.

I1 is a temporal property (no LOAD completes another process's STORE); it
is enforced by construction (the scheduler's Inval) and verified here by
bookkeeping: every context switch must have fired one Inval per
controller.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import InvariantViolation
from repro.kernel.kernel import Kernel
from repro.kernel.vm_manager import I3_WRITE_PROTECT
from repro.mem.layout import Region


class InvariantChecker:
    """Checks I1-I4 against a kernel's live state."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.layout = kernel.layout
        self.page_size = kernel.layout.page_size

    def check_all(self) -> None:
        """Run every checker."""
        self.check_i1()
        self.check_i2()
        self.check_i3()
        self.check_i4()

    # ------------------------------------------------------------------ I1
    def check_i1(self) -> None:
        """Every context switch fired one Inval per UDMA controller."""
        sched = self.kernel.scheduler
        expected = sched.switches * len(sched.udma_controllers)
        if sched.invals_fired != expected:
            raise InvariantViolation(
                "I1",
                f"{sched.switches} switches x {len(sched.udma_controllers)} "
                f"controllers require {expected} Invals but {sched.invals_fired} fired",
            )

    # ------------------------------------------------------------------ I2
    def check_i2(self) -> None:
        """Proxy mappings are valid only where the real mapping is valid.

        "If there is a mapping from PROXY(vmem_addr) to PROXY(pmem_addr),
        then there must be a virtual memory mapping from vmem_addr to
        pmem_addr."
        """
        for process in self.kernel.processes.values():
            for vpage, pte in process.page_table.entries():
                if not pte.present:
                    continue
                pfn_addr = pte.pfn * self.page_size
                if self.layout.region_of(pfn_addr) is not Region.MEMORY_PROXY:
                    continue
                mem_vpage = self.layout.unproxy(vpage * self.page_size) // self.page_size
                mem_pte = process.page_table.get(mem_vpage)
                if mem_pte is None or not mem_pte.present:
                    raise InvariantViolation(
                        "I2",
                        f"pid {process.pid}: proxy vpage {vpage:#x} mapped but "
                        f"real vpage {mem_vpage:#x} is not",
                    )
                expected_pfn = (
                    self.layout.proxy(mem_pte.pfn * self.page_size) // self.page_size
                )
                if pte.pfn != expected_pfn:
                    raise InvariantViolation(
                        "I2",
                        f"pid {process.pid}: proxy vpage {vpage:#x} points at "
                        f"pfn {pte.pfn:#x}, but PROXY of the real frame is "
                        f"{expected_pfn:#x}",
                    )

    # ------------------------------------------------------------------ I3
    def check_i3(self) -> None:
        """Writable proxy page implies dirty real page.

        "If PROXY(vmem_addr) is writable, then vmem_addr must be dirty."
        Only meaningful under the write-protect strategy; the alternative
        strategy replaces I3 with the OR-of-dirty-bits rule, which is
        checked by construction in the VM manager.
        """
        if self.kernel.vm.i3_strategy != I3_WRITE_PROTECT:
            return
        for process in self.kernel.processes.values():
            for vpage, pte in process.page_table.entries():
                if not pte.present or not pte.writable:
                    continue
                pfn_addr = pte.pfn * self.page_size
                if self.layout.region_of(pfn_addr) is not Region.MEMORY_PROXY:
                    continue
                mem_vpage = self.layout.unproxy(vpage * self.page_size) // self.page_size
                mem_pte = process.page_table.get(mem_vpage)
                if mem_pte is None or not mem_pte.dirty:
                    raise InvariantViolation(
                        "I3",
                        f"pid {process.pid}: PROXY({mem_vpage:#x}) is writable "
                        f"but the real page is not dirty",
                    )

    # ------------------------------------------------------------------ I4
    def check_i4(self) -> None:
        """Pages named by the hardware registers/queues are still mapped.

        "If pmem_addr is in the hardware SOURCE or DESTINATION register,
        then pmem_addr will not be remapped."  A violation manifests as a
        register page that is free, unowned, or no longer mapped where it
        was.
        """
        guard = self.kernel.remap_guard
        for page in guard.pages_in_use():
            if not self.kernel.frames.is_allocated(page):
                raise InvariantViolation(
                    "I4",
                    f"frame {page:#x} is in hardware registers but has been freed",
                )
            owner = self.kernel.vm.frame_owner(page)
            if owner is None:
                raise InvariantViolation(
                    "I4",
                    f"frame {page:#x} is in hardware registers but has no owner",
                )
            asid, vpage = owner
            process = self.kernel.processes.get(asid)
            if process is None:
                raise InvariantViolation(
                    "I4",
                    f"frame {page:#x} owned by dead asid {asid}",
                )
            pte = process.page_table.get(vpage)
            if pte is None or not pte.present or pte.pfn != page:
                raise InvariantViolation(
                    "I4",
                    f"frame {page:#x} remapped away from pid {asid} "
                    f"vpage {vpage:#x} while in hardware registers",
                )
