"""The kernel facade: processes, fault dispatch, and the syscall surface.

A :class:`Kernel` owns one node's VM manager, scheduler, remap guard and
syscall interface, and wires the CPU's fault vector to the VM manager.
:class:`repro.machine.Machine` builds one per node.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.core.controller import UdmaController
from repro.cpu.cpu import CPU
from repro.dma.traditional import TraditionalDmaController
from repro.errors import ConfigurationError
from repro.kernel.process import Process, ProcessState
from repro.kernel.remap_guard import GuardStrategy, RemapGuard
from repro.kernel.scheduler import Scheduler
from repro.kernel.syscalls import GrantPolicy, SyscallInterface, allow_all
from repro.kernel.vm_manager import I3_WRITE_PROTECT, VmManager
from repro.mem.frames import FrameAllocator
from repro.mem.layout import Layout
from repro.mem.physmem import PhysicalMemory
from repro.params import CostModel
from repro.sim.clock import Clock
from repro.sim.trace import NULL_TRACER, Tracer
from repro.vm.backing_store import BackingStore
from repro.vm.mmu import MMU


class Kernel:
    """One node's operating system."""

    def __init__(
        self,
        clock: Clock,
        costs: CostModel,
        layout: Layout,
        physmem: PhysicalMemory,
        mmu: MMU,
        cpu: CPU,
        udma_controllers: Optional[List[UdmaController]] = None,
        tdma: Optional[TraditionalDmaController] = None,
        replacement_policy: str = "clock",
        i3_strategy: str = I3_WRITE_PROTECT,
        guard_strategy: GuardStrategy = GuardStrategy.REGISTERS,
        grant_policy: GrantPolicy = allow_all,
        bounce_frames: int = 8,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.clock = clock
        self.costs = costs
        self.layout = layout
        self.physmem = physmem
        self.mmu = mmu
        self.cpu = cpu
        self.tracer = tracer
        controllers = list(udma_controllers or [])

        if bounce_frames >= physmem.num_frames:
            raise ConfigurationError(
                f"bounce_frames {bounce_frames} exceeds RAM ({physmem.num_frames} frames)"
            )
        self.frames = FrameAllocator(physmem.num_frames, reserved=bounce_frames)
        self.backing = BackingStore(layout.page_size)
        self.remap_guard = RemapGuard(clock, costs, controllers, guard_strategy)
        self.vm = VmManager(
            clock=clock,
            costs=costs,
            layout=layout,
            physmem=physmem,
            frames=self.frames,
            backing=self.backing,
            mmu=mmu,
            remap_guard=self.remap_guard,
            policy=replacement_policy,
            i3_strategy=i3_strategy,
            tracer=tracer,
        )
        self.scheduler = Scheduler(clock, costs, cpu, controllers, tracer)
        self.syscalls = SyscallInterface(
            clock=clock,
            costs=costs,
            layout=layout,
            physmem=physmem,
            vm=self.vm,
            tdma=tdma,
            grant_policy=grant_policy,
            bounce_frames=bounce_frames,
            tracer=tracer,
        )
        self._pids = itertools.count(1)
        self.processes: Dict[int, Process] = {}
        cpu.fault_handler = self._on_fault

    # ----------------------------------------------------------- processes
    def create_process(self, name: str) -> Process:
        """Create, register and admit a process; runs it if CPU is idle."""
        process = Process(next(self._pids), name, self.layout)
        self.processes[process.pid] = process
        self.vm.register(process)
        self.scheduler.add(process)
        if self.scheduler.current is None:
            self.scheduler.switch_to(process)
        return process

    def exit_process(self, process: Process) -> None:
        """Terminate a process and reclaim its resources."""
        self.scheduler.remove(process)
        self.vm.destroy(process)
        self.mmu.tlb.flush_asid(process.asid)
        self.processes.pop(process.pid, None)
        process.state = ProcessState.DEAD

    @property
    def current(self) -> Optional[Process]:
        """The running process."""
        return self.scheduler.current

    # ------------------------------------------------------------- faults
    def _on_fault(self, vaddr: int, access: str, reason: str) -> bool:
        process = self.scheduler.current
        if process is None:
            return False
        return self.vm.handle_fault(process, vaddr, access, reason)

    # ----------------------------------------------------------- controllers
    def attach_controller(self, controller: UdmaController) -> None:
        """Register a late-attached UDMA controller with guard and scheduler."""
        self.remap_guard.attach(controller)
        self.scheduler.attach_controller(controller)
