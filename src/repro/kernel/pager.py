"""A background page-cleaning daemon.

"The operating system may 'clean' a dirty page by writing its contents to
backing store and simultaneously clearing the page's dirty bit" (section
6).  Kernels run such cleaning in the background so that page replacement
usually finds clean victims (evicting a clean page skips the swap write).
The daemon honours both I3 rules:

* pages a DMA transfer is touching are skipped (`clean_page` defers via
  the remap guard -- the race rule), and
* under the write-protect strategy every clean write-protects the proxy
  page, so the next user-level device-to-memory transfer takes the
  documented upgrade fault.

Scheduling: ticks are *bounded* -- the caller either invokes :meth:`tick`
directly or schedules a finite burst with :meth:`run_for`.  An unbounded
self-rescheduling event would make ``run_until_idle`` (the simulation's
quiescence point) meaningless.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.kernel.kernel import Kernel
from repro.mem.layout import Region


class PagerDaemon:
    """Cleans dirty pages in batches, oldest-referenced first."""

    def __init__(self, kernel: Kernel, batch: int = 4) -> None:
        self.kernel = kernel
        self.batch = batch
        self.ticks = 0
        self.pages_cleaned = 0
        self.pages_deferred = 0

    # ------------------------------------------------------------- ticking
    def tick(self) -> int:
        """Clean up to ``batch`` dirty resident pages; returns how many."""
        self.ticks += 1
        cleaned = 0
        for process, vpage in self._dirty_pages():
            if cleaned >= self.batch:
                break
            if self.kernel.vm.clean_page(process, vpage):
                cleaned += 1
                self.pages_cleaned += 1
            else:
                # The I3 race rule: a transfer is writing this page.
                self.pages_deferred += 1
        return cleaned

    def run_for(self, ticks: int, interval_cycles: int) -> None:
        """Schedule a bounded burst of ticks on the kernel's clock."""
        if ticks <= 0 or interval_cycles <= 0:
            raise ValueError("ticks and interval must be positive")
        for i in range(1, ticks + 1):
            self.kernel.clock.schedule(i * interval_cycles, self.tick)

    # ------------------------------------------------------------ internal
    def _dirty_pages(self) -> List[Tuple[object, int]]:
        """(process, vpage) of every dirty resident real-memory page,
        least-recently-referenced first (referenced-bit approximation)."""
        found = []
        for process in self.kernel.processes.values():
            for vpage, pte in process.page_table.entries():
                if not pte.present or not pte.dirty:
                    continue
                paddr = pte.pfn * self.kernel.layout.page_size
                if self.kernel.layout.region_of(paddr) is not Region.MEMORY:
                    continue
                if not process.owns_vpage(vpage):
                    continue
                found.append((pte.referenced, process, vpage))
        found.sort(key=lambda item: (item[0], item[1].pid, item[2]))
        return [(process, vpage) for _, process, vpage in found]
