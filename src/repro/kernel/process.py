"""Processes: an address space plus bookkeeping.

A process owns a page table, a bump allocator over its virtual memory
region, and the set of virtual pages the kernel considers *valid* (so the
fault handler can distinguish demand-zero faults from wild accesses).
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Set

from repro.errors import SyscallError
from repro.mem.layout import Layout
from repro.vm.page_table import PageTable


class ProcessState(enum.Enum):
    """Lifecycle states."""

    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DEAD = "dead"


class Process:
    """One user process.

    Args:
        pid: process id; doubles as the address-space id (ASID).
        name: human-readable label.
        layout: the node's address map (virtual space mirrors it).
    """

    def __init__(self, pid: int, name: str, layout: Layout) -> None:
        self.pid = pid
        self.name = name
        self.layout = layout
        self.state = ProcessState.READY
        self.page_table = PageTable(layout.page_size, name=f"pid{pid}")
        #: virtual pages the kernel will demand-map on first touch
        self.valid_vpages: Set[int] = set()
        #: vpage -> False for pages granted read-only (COW-style data)
        self.vpage_writable: Dict[int, bool] = {}
        #: device windows granted to this process: device name -> base vaddr
        self.device_grants: Dict[str, int] = {}
        # Bump allocator over the virtual memory region; page 0 is kept
        # unmapped so that null-ish pointers fault.
        self._next_vpage = 1
        self.faults_served = 0

    @property
    def asid(self) -> int:
        """Address-space id (== pid)."""
        return self.pid

    # ----------------------------------------------------- virtual address
    def alloc_virtual(self, npages: int, writable: bool = True) -> int:
        """Reserve ``npages`` of virtual memory; returns the base vaddr.

        Pages are demand-mapped on first access (a "not-mapped" fault the
        kernel resolves by zero-filling).  No physical memory is consumed
        here.
        """
        if npages <= 0:
            raise SyscallError("EINVAL", f"npages must be positive, got {npages}")
        limit = self.layout.mem_size // self.layout.page_size
        if self._next_vpage + npages > limit:
            raise SyscallError(
                "ENOMEM",
                f"virtual memory region exhausted for pid {self.pid}",
            )
        base_vpage = self._next_vpage
        self._next_vpage += npages
        for vpage in range(base_vpage, base_vpage + npages):
            self.valid_vpages.add(vpage)
            self.vpage_writable[vpage] = writable
        return base_vpage * self.layout.page_size

    def owns_vpage(self, vpage: int) -> bool:
        """True if the page is part of this process's valid memory."""
        return vpage in self.valid_vpages

    def vpage_is_writable(self, vpage: int) -> bool:
        """Grant-level writability of a valid page (not the PTE state)."""
        return self.vpage_writable.get(vpage, False)

    def __repr__(self) -> str:
        return f"<Process pid={self.pid} {self.name!r} {self.state.value}>"
