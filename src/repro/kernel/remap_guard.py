"""I4: never remap a page the UDMA hardware is using.

"To maintain I4, the kernel must check before remapping a page to make
sure that that page's address is not in the hardware's SOURCE or
DESTINATION registers.  (The kernel reads the two registers to perform the
check.)" (section 6).  For the queued device of section 7, the check uses
either the per-page reference counters or the associative queue query.

This replaces pinning: "Although this scheme has the same effect as page
pinning, it is much faster.  Pinning requires changing the page table on
every DMA, while our mechanism requires no kernel action in the common
case."  The PIN bench quantifies exactly that trade.
"""

from __future__ import annotations

import enum
from typing import List, Set

from repro.core.controller import UdmaController
from repro.core.queueing import QueuedUdmaController
from repro.params import CostModel
from repro.sim.clock import Clock


class GuardStrategy(enum.Enum):
    """How the kernel asks the hardware about a page."""

    #: read the SOURCE/DESTINATION registers (basic device)
    REGISTERS = "registers"
    #: read the per-page reference-count register (queued device, option 1)
    REFCOUNT = "refcount"
    #: issue the associative queue query (queued device, option 2)
    QUERY = "query"


class RemapGuard:
    """The kernel-side I4 check over one node's UDMA controllers."""

    def __init__(
        self,
        clock: Clock,
        costs: CostModel,
        controllers: List[UdmaController],
        strategy: GuardStrategy = GuardStrategy.REGISTERS,
    ) -> None:
        self.clock = clock
        self.costs = costs
        self.controllers = list(controllers)
        self.strategy = strategy
        self.checks = 0

    def attach(self, controller: UdmaController) -> None:
        """Track one more controller."""
        self.controllers.append(controller)

    # -------------------------------------------------------------- checks
    def pages_in_use(self) -> Set[int]:
        """All physical pages any controller currently names (uncharged)."""
        pages: Set[int] = set()
        for controller in self.controllers:
            pages |= controller.memory_pages_in_registers()
        return pages

    def is_page_in_use(self, page: int) -> bool:
        """The charged I4 check for one page.

        Charges the register-read cost and answers whether remapping the
        page now would violate I4.  The kernel reacts to True by picking a
        different victim or waiting; "the kernel usually has several pages
        to choose from", so in practice it picks another.
        """
        self.checks += 1
        self.clock.advance(self.costs.remap_check_cycles)
        if self.strategy is GuardStrategy.REGISTERS:
            return any(
                page in c.memory_pages_in_registers() for c in self.controllers
            )
        for controller in self.controllers:
            if isinstance(controller, QueuedUdmaController):
                if self.strategy is GuardStrategy.REFCOUNT:
                    if controller.page_reference_count(page) > 0:
                        return True
                    # The latch is not covered by the counters; fall back.
                    if page in controller.memory_pages_in_registers():
                        return True
                else:  # QUERY
                    if controller.query_page(page):
                        return True
                    if page in controller.memory_pages_in_registers():
                        return True
            else:
                if page in controller.memory_pages_in_registers():
                    return True
        return False
