"""The scheduler, including the paper's single-store I1 hook.

"To avoid this danger, the operating system must invalidate any partially
initiated UDMA transfer on every context switch ...  The context-switch
code does this with a single STORE instruction" (section 6).

The simulation is cooperative: tests and workloads call
:meth:`Scheduler.switch_to` (or :meth:`Scheduler.yield_next` for round
robin) at the points where a real kernel would preempt.  What matters for
the paper is *what happens during* a switch -- the Inval store, the
address-space install, the cycle cost -- and that is modelled faithfully.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.controller import UdmaController
from repro.cpu.cpu import CPU
from repro.errors import ConfigurationError
from repro.kernel.process import Process, ProcessState
from repro.params import CostModel
from repro.sim.clock import Clock
from repro.sim.trace import NULL_TRACER, Tracer


class Scheduler:
    """Round-robin scheduler with the UDMA context-switch hook."""

    def __init__(
        self,
        clock: Clock,
        costs: CostModel,
        cpu: CPU,
        udma_controllers: Optional[List[UdmaController]] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.clock = clock
        self.costs = costs
        self.cpu = cpu
        self.udma_controllers = list(udma_controllers or [])
        self.tracer = tracer
        self.ready: List[Process] = []
        self.current: Optional[Process] = None
        self.switches = 0
        self.invals_fired = 0

    # ----------------------------------------------------------- admission
    def add(self, process: Process) -> None:
        """Admit a process to the ready queue."""
        if process in self.ready or process is self.current:
            raise ConfigurationError(f"{process!r} already scheduled")
        process.state = ProcessState.READY
        self.ready.append(process)

    def remove(self, process: Process) -> None:
        """Remove a process (exit)."""
        if process in self.ready:
            self.ready.remove(process)
        if self.current is process:
            self.current = None
        process.state = ProcessState.DEAD

    # ------------------------------------------------------------ dispatch
    def switch_to(self, process: Process) -> None:
        """Context-switch to ``process`` (must be admitted)."""
        if process is self.current:
            return
        if process not in self.ready:
            raise ConfigurationError(f"{process!r} is not ready")

        # --- the I1 hook: one STORE of a negative nbytes to proxy space,
        # returning any partially initiated sequence to Idle.  "The UDMA
        # device is stateless with respect to a context switch" -- a
        # transfer already in flight is unaffected.
        for controller in self.udma_controllers:
            self.clock.advance(self.costs.io_ref_cycles)  # the single store
            controller.inval()
            self.invals_fired += 1

        # --- software-cache shootdown: the hardware TLB is asid-tagged
        # and survives the switch, but the CPU's translation fast path
        # must revalidate everything through MMU.translate afterwards --
        # the cache analogue of I1's "nothing survives a switch
        # unchecked".  This moves no simulated cycles (the Inval store
        # above already carries the switch's architectural cost).
        self.cpu.mmu.tlb.note_context_switch()

        # --- ordinary switch costs and address-space install.
        self.clock.advance(self.costs.context_switch_cycles)
        previous = self.current
        if previous is not None and previous.state is ProcessState.RUNNING:
            previous.state = ProcessState.READY
            self.ready.append(previous)
        self.ready.remove(process)
        process.state = ProcessState.RUNNING
        self.current = process
        self.cpu.set_context(process.page_table, process.asid)
        self.switches += 1
        if self.tracer.enabled:
            self.tracer.emit(
                self.clock.now,
                "sched",
                "switch",
                to=process.name,
                from_=previous.name if previous else None,
            )

    def yield_next(self) -> Optional[Process]:
        """Round-robin: switch to the longest-waiting ready process."""
        if not self.ready:
            return self.current
        self.switch_to(self.ready[0])
        return self.current

    def attach_controller(self, controller: UdmaController) -> None:
        """Register an additional UDMA controller for the I1 hook."""
        self.udma_controllers.append(controller)
