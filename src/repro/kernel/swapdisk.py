"""Backing store on a real disk device.

The plain :class:`~repro.vm.backing_store.BackingStore` is a magic dict
(pages teleport to swap for a flat cycle charge).  This module replaces
it with a *simulated swap disk*: page-in and page-out really move bytes
through DMA hardware to a :class:`~repro.devices.disk.Disk`, paying seek
and transfer time on the shared clock.

Two transport paths are supported:

* **traditional** -- the kernel programs the traditional DMA controller
  (it is the kernel; the syscall-layer costs don't apply, but pinning
  does not either since the kernel holds the frame anyway);
* **system-queue** -- on a machine with the section-7 *queued* UDMA
  device, the kernel enqueues its paging transfers on the high-priority
  system queue: "implementing just two queues, with the higher priority
  queue reserved for the system, would certainly be useful".  Kernel
  paging then shares the UDMA engine with user transfers and always jumps
  the user backlog.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.queueing import QueuedUdmaController
from repro.devices.disk import Disk
from repro.dma.engine import DeviceEndpoint, MemoryEndpoint
from repro.errors import ConfigurationError, SyscallError
from repro.mem.layout import Layout
from repro.mem.physmem import PhysicalMemory
from repro.params import CostModel
from repro.sim.clock import Clock


class DiskBackingStore:
    """A swap area on a disk device, API-compatible with BackingStore.

    Pages are staged through a reserved *kernel bounce frame*, because a
    page being swapped out is about to be unmapped (so its own frame is
    being reclaimed) and a page being swapped in does not have a stable
    frame until the VM manager maps it.  The bounce frame is frame 1 of
    the reserved region (frame 0 belongs to the syscall bounce buffer).

    Args:
        machine-ish components; ``transport`` is ``"traditional"`` or
        ``"system-queue"`` (requires a queued UDMA controller).
    """

    def __init__(
        self,
        clock: Clock,
        costs: CostModel,
        layout: Layout,
        physmem: PhysicalMemory,
        disk: Disk,
        udma: Optional[QueuedUdmaController] = None,
        transport: str = "traditional",
        tdma_engine=None,
        bounce_frame: int = 1,
    ) -> None:
        if transport not in ("traditional", "system-queue"):
            raise ConfigurationError(f"unknown swap transport {transport!r}")
        if transport == "system-queue" and udma is None:
            raise ConfigurationError(
                "system-queue transport needs a queued UDMA controller"
            )
        if transport == "traditional" and tdma_engine is None:
            raise ConfigurationError("traditional transport needs a DMA engine")
        page_size = costs.page_size
        if disk.proxy_size < page_size:
            raise ConfigurationError("swap disk smaller than one page")
        self.clock = clock
        self.costs = costs
        self.layout = layout
        self.physmem = physmem
        self.disk = disk
        self.udma = udma
        self.transport = transport
        self.tdma_engine = tdma_engine
        self.page_size = page_size
        self.bounce_frame = bounce_frame
        self._slots: Dict[Tuple[int, int], int] = {}
        self._next_slot = 0
        self._capacity_slots = disk.proxy_size // page_size
        self.writes = 0
        self.reads = 0

    # ----------------------------------------------- BackingStore protocol
    def save(self, asid: int, vpage: int, data: bytes) -> None:
        """Write one page to the swap disk (page-out / cleaning)."""
        if len(data) != self.page_size:
            raise ConfigurationError(
                f"swap takes whole pages of {self.page_size} bytes, got {len(data)}"
            )
        slot = self._slot_for(asid, vpage, allocate=True)
        bounce_paddr = self.bounce_frame * self.page_size
        self.physmem.write(bounce_paddr, data)
        self._transfer(
            to_disk=True, paddr=bounce_paddr, disk_offset=slot * self.page_size
        )
        self.writes += 1

    def load(self, asid: int, vpage: int) -> Optional[bytes]:
        """Read one page back from the swap disk, or None if never saved."""
        slot = self._slots.get((asid, vpage))
        if slot is None:
            return None
        bounce_paddr = self.bounce_frame * self.page_size
        self._transfer(
            to_disk=False, paddr=bounce_paddr, disk_offset=slot * self.page_size
        )
        self.reads += 1
        return self.physmem.read(bounce_paddr, self.page_size)

    def has(self, asid: int, vpage: int) -> bool:
        return (asid, vpage) in self._slots

    def discard(self, asid: int, vpage: int) -> None:
        self._slots.pop((asid, vpage), None)

    def discard_asid(self, asid: int) -> None:
        for key in [k for k in self._slots if k[0] == asid]:
            del self._slots[key]

    def __len__(self) -> int:
        return len(self._slots)

    # ------------------------------------------------------------ internal
    def _slot_for(self, asid: int, vpage: int, allocate: bool) -> int:
        key = (asid, vpage)
        slot = self._slots.get(key)
        if slot is not None:
            return slot
        if not allocate:
            raise SyscallError("EIO", f"no swap slot for {key}")
        if self._next_slot >= self._capacity_slots:
            raise SyscallError("ENOSPC", "swap disk full")
        slot = self._next_slot
        self._next_slot += 1
        self._slots[key] = slot
        return slot

    def _transfer(self, to_disk: bool, paddr: int, disk_offset: int) -> None:
        if self.transport == "system-queue":
            self._transfer_system_queue(to_disk, paddr, disk_offset)
        else:
            self._transfer_traditional(to_disk, paddr, disk_offset)

    def _transfer_traditional(self, to_disk: bool, paddr: int, disk_offset: int) -> None:
        engine = self.tdma_engine
        mem = MemoryEndpoint(self.physmem, paddr)
        dev = DeviceEndpoint(self.disk, disk_offset)
        done = {"flag": False}

        def _complete() -> None:
            done["flag"] = True

        # The kernel may have to wait for a user transfer on this engine.
        self._wait(lambda: not engine.busy)
        if to_disk:
            engine.start(mem, dev, self.page_size, _complete)
        else:
            engine.start(dev, mem, self.page_size, _complete)
        self._wait(lambda: done["flag"])

    def _transfer_system_queue(self, to_disk: bool, paddr: int, disk_offset: int) -> None:
        assert self.udma is not None
        window = self.layout.window_by_name(self.disk.name)
        mem_proxy = self.layout.proxy(paddr)
        dev_proxy = window.base + disk_offset
        if to_disk:
            self.udma.enqueue_system(mem_proxy, dev_proxy, self.page_size)
        else:
            self.udma.enqueue_system(dev_proxy, mem_proxy, self.page_size)
        self._wait(lambda: not self._still_pending(mem_proxy))

    def _still_pending(self, mem_proxy: int) -> bool:
        page = self.layout.unproxy(mem_proxy) // self.page_size
        return self.udma.page_reference_count(page) > 0

    def _wait(self, condition) -> None:
        guard = 0
        while not condition():
            next_time = self.clock.next_event_time()
            if next_time is None:
                raise SyscallError("EIO", "swap transfer stalled")
            self.clock.run(until=next_time)
            guard += 1
            if guard > 1_000_000:
                raise SyscallError("EIO", "swap transfer never completed")
