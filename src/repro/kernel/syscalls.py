"""System calls: the traditional-DMA baseline and the proxy-grant calls.

The star of this module is :meth:`SyscallInterface.dma` -- the section-2
recipe, implemented step by step with its full cost:

1. the user process traps into the kernel (syscall entry);
2. the kernel translates every page, verifies permission, **pins** the
   frames, and builds a DMA descriptor;
3. the device performs the transfer while the process is blocked;
4. the completion interrupt fires; the kernel unpins, returns from the
   syscall and reschedules.

"Starting a DMA transaction usually takes hundreds or thousands of CPU
instructions."  The INIT bench counts exactly what this path charges and
compares it with the two-reference UDMA initiation.

A bounce-buffer variant (``bounce=True``) models the common alternative:
"most of today's systems reserve a certain number of pinned physical
memory pages for each DMA device as I/O buffers.  This method may require
copying data between memory in user address space and the reserved,
pinned DMA memory buffers."
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.dma.engine import DeviceEndpoint, MemoryEndpoint
from repro.dma.traditional import DmaDescriptor, TraditionalDmaController
from repro.errors import SyscallError
from repro.kernel.process import Process
from repro.kernel.vm_manager import VmManager
from repro.mem.layout import Layout
from repro.mem.physmem import PhysicalMemory
from repro.params import CostModel
from repro.sim.clock import Clock
from repro.sim.trace import NULL_TRACER, Tracer

#: permission policy: (process, device name, writable?) -> allowed?
GrantPolicy = Callable[[Process, str, bool], bool]


def allow_all(process: Process, device: str, writable: bool) -> bool:
    """The default grant policy: every process may map every device."""
    return True


class SyscallInterface:
    """Kernel entry points callable by user-level code.

    Args:
        bounce_frames: number of reserved frames forming the pre-pinned
            bounce buffer (physical frames ``0..bounce_frames-1``); they
            must lie inside the allocator's reserved range.
    """

    def __init__(
        self,
        clock: Clock,
        costs: CostModel,
        layout: Layout,
        physmem: PhysicalMemory,
        vm: VmManager,
        tdma: Optional[TraditionalDmaController] = None,
        grant_policy: GrantPolicy = allow_all,
        bounce_frames: int = 0,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.clock = clock
        self.costs = costs
        self.layout = layout
        self.physmem = physmem
        self.vm = vm
        self.tdma = tdma
        self.grant_policy = grant_policy
        self.bounce_frames = bounce_frames
        self.tracer = tracer
        self.page_size = costs.page_size
        # Metrics.
        self.dma_calls = 0
        self.pages_pinned = 0
        self.bytes_copied = 0

    # ------------------------------------------------------------- memory
    def alloc(self, process: Process, nbytes: int, writable: bool = True) -> int:
        """Allocate demand-zero virtual memory; returns the base vaddr."""
        self._enter()
        npages = -(-nbytes // self.page_size)
        vaddr = process.alloc_virtual(npages, writable=writable)
        self._exit()
        return vaddr

    # -------------------------------------------------------------- grants
    def grant_device_proxy(
        self,
        process: Process,
        device_name: str,
        writable: bool = True,
        pages: Optional[Tuple[int, int]] = None,
    ) -> int:
        """Map (part of) a device's proxy window into the caller.

        "An operating system call is responsible for creating the mapping.
        The system call decides whether to grant permission to a user
        process's request and whether the permission is read-only"
        (section 4).  Returns the base virtual address of the grant.
        """
        self._enter()
        try:
            if not self.grant_policy(process, device_name, writable):
                raise SyscallError(
                    "EPERM",
                    f"pid {process.pid} may not map device {device_name!r}",
                )
            window = self.layout.window_by_name(device_name)
            base = self.vm.map_device_window(process, window, writable, pages)
            # Tell the protection backends (host-side bookkeeping; the
            # proxy backend's real check IS the mapping just created).
            for controller in self.vm.remap_guard.controllers:
                note = getattr(controller, "note_grant", None)
                if note is not None:
                    note(process.asid, device_name, writable)
            return base
        finally:
            self._exit()

    def revoke_device_proxy(self, process: Process, device_name: str) -> None:
        """Tear down a device-proxy grant."""
        self._enter()
        try:
            window = self.layout.window_by_name(device_name)
            self.vm.revoke_device_window(process, window)
            for controller in self.vm.remap_guard.controllers:
                note = getattr(controller, "note_revoke", None)
                if note is not None:
                    note(process.asid, device_name)
        finally:
            self._exit()

    # ----------------------------------------------------- traditional DMA
    def dma(
        self,
        process: Process,
        device_name: str,
        device_offset: int,
        vaddr: int,
        nbytes: int,
        to_device: bool,
        bounce: bool = False,
        device: Optional[object] = None,
    ) -> None:
        """The traditional, kernel-initiated DMA transfer (section 2).

        Blocks (simulated) until the completion interrupt has been
        serviced.  ``device`` may be passed directly for devices not
        registered in the layout (bench scaffolding); normally the name is
        resolved through the UDMA controller's registry.
        """
        if self.tdma is None:
            raise SyscallError("ENODEV", "no traditional DMA controller configured")
        if nbytes <= 0:
            raise SyscallError("EINVAL", f"nbytes must be positive, got {nbytes}")
        self.dma_calls += 1
        self._enter()
        target_device = device if device is not None else self._resolve_device(device_name)

        if bounce:
            self._dma_bounce(process, target_device, device_offset, vaddr, nbytes, to_device)
        else:
            self._dma_pinned(process, target_device, device_offset, vaddr, nbytes, to_device)

        # Completion interrupt, syscall return, reschedule.
        self.clock.advance(self.costs.interrupt_cycles)
        self._exit()
        self.clock.advance(self.costs.reschedule_cycles)

    # ------------------------------------------------------------ internal
    def _dma_pinned(
        self,
        process: Process,
        device: object,
        device_offset: int,
        vaddr: int,
        nbytes: int,
        to_device: bool,
    ) -> None:
        """Translate, verify, pin, build descriptor, run, unpin."""
        descriptor = DmaDescriptor()
        pinned = []
        offset = 0
        dev_off = device_offset
        while offset < nbytes:
            addr = vaddr + offset
            chunk = min(self.layout.bytes_to_page_end(addr), nbytes - offset)
            vpage = addr // self.page_size
            # Translation + permission verification.
            self.clock.advance(self.costs.translate_page_cycles)
            if not process.owns_vpage(vpage):
                self._unpin(pinned)
                raise SyscallError("EFAULT", f"bad user address {addr:#x}")
            if not to_device and not process.vpage_is_writable(vpage):
                self._unpin(pinned)
                raise SyscallError("EFAULT", f"read-only destination {addr:#x}")
            frame = self.vm.touch_resident(process, vpage)
            # Pinning.
            self.clock.advance(self.costs.pin_page_cycles)
            self.vm.frames.pin(frame)
            pinned.append(frame)
            self.pages_pinned += 1
            # One descriptor entry per page.
            self.clock.advance(self.costs.descriptor_entry_cycles)
            paddr = frame * self.page_size + (addr % self.page_size)
            mem = MemoryEndpoint(self.physmem, paddr)
            dev = DeviceEndpoint(device, dev_off)
            if to_device:
                descriptor.add(mem, dev, chunk)
            else:
                descriptor.add(dev, mem, chunk)
            offset += chunk
            dev_off += chunk

        self._run_chain(descriptor)
        self._unpin(pinned)

    def _unpin(self, frames: list) -> None:
        for frame in frames:
            self.clock.advance(self.costs.unpin_page_cycles)
            self.vm.frames.unpin(frame)

    def _dma_bounce(
        self,
        process: Process,
        device: object,
        device_offset: int,
        vaddr: int,
        nbytes: int,
        to_device: bool,
    ) -> None:
        """Copy through the reserved, pre-pinned kernel I/O buffer."""
        if self.bounce_frames * self.page_size < nbytes:
            raise SyscallError(
                "ENOMEM",
                f"bounce buffer ({self.bounce_frames} pages) too small for "
                f"{nbytes} bytes",
            )
        bounce_paddr = 0  # reserved frames sit at the bottom of memory
        copy_cycles = int(nbytes * self.costs.copy_byte_cycles)
        if to_device:
            data = self._read_user(process, vaddr, nbytes)
            self.clock.advance(copy_cycles)
            self.physmem.write(bounce_paddr, data)
            self.bytes_copied += nbytes
        descriptor = DmaDescriptor()
        mem = MemoryEndpoint(self.physmem, bounce_paddr)
        dev = DeviceEndpoint(device, device_offset)
        if to_device:
            descriptor.add(mem, dev, nbytes)
        else:
            descriptor.add(dev, mem, nbytes)
        self._run_chain(descriptor)
        if not to_device:
            self.clock.advance(copy_cycles)
            data = self.physmem.read(bounce_paddr, nbytes)
            self._write_user(process, vaddr, data)
            self.bytes_copied += nbytes

    def _run_chain(self, descriptor: DmaDescriptor) -> None:
        assert self.tdma is not None
        self.clock.advance(self.costs.device_start_cycles)
        done = {"flag": False}

        def _interrupt() -> None:
            done["flag"] = True

        self.tdma.on_interrupt(_interrupt)
        try:
            self.tdma.start(descriptor)
            # The process is blocked; coast the clock on device events.
            guard = 0
            while not done["flag"]:
                next_time = self.clock.next_event_time()
                if next_time is None:
                    raise SyscallError("EIO", "DMA chain stalled with no pending events")
                self.clock.run(until=next_time)
                guard += 1
                if guard > 1_000_000:
                    raise SyscallError("EIO", "DMA chain never completed")
        finally:
            self.tdma.remove_interrupt_handler(_interrupt)

    def _read_user(self, process: Process, vaddr: int, nbytes: int) -> bytes:
        """Kernel-path read of user memory (for the bounce copy)."""
        out = bytearray()
        offset = 0
        while offset < nbytes:
            addr = vaddr + offset
            chunk = min(self.layout.bytes_to_page_end(addr), nbytes - offset)
            vpage = addr // self.page_size
            if not process.owns_vpage(vpage):
                raise SyscallError("EFAULT", f"bad user address {addr:#x}")
            frame = self.vm.touch_resident(process, vpage)
            paddr = frame * self.page_size + (addr % self.page_size)
            out += self.physmem.read(paddr, chunk)
            offset += chunk
        return bytes(out)

    def _write_user(self, process: Process, vaddr: int, data: bytes) -> None:
        """Kernel-path write of user memory (for the bounce copy)."""
        offset = 0
        nbytes = len(data)
        while offset < nbytes:
            addr = vaddr + offset
            chunk = min(self.layout.bytes_to_page_end(addr), nbytes - offset)
            vpage = addr // self.page_size
            if not process.owns_vpage(vpage):
                raise SyscallError("EFAULT", f"bad user address {addr:#x}")
            if not process.vpage_is_writable(vpage):
                raise SyscallError("EFAULT", f"read-only user address {addr:#x}")
            frame = self.vm.touch_resident(process, vpage)
            pte = process.page_table.get(vpage)
            if pte is not None:
                pte.dirty = True  # the kernel knows about this write
            paddr = frame * self.page_size + (addr % self.page_size)
            self.physmem.write(paddr, data[offset : offset + chunk])
            offset += chunk

    def _resolve_device(self, device_name: str) -> object:
        # Devices register proxy windows in the layout; the actual device
        # object is held by the UDMA controller.  The VM manager's guard
        # tracks controllers, so resolve through it.
        for controller in self.vm.remap_guard.controllers:
            try:
                return controller.device(device_name)
            except Exception:
                continue
        raise SyscallError("ENODEV", f"no device named {device_name!r}")

    def _enter(self) -> None:
        self.clock.advance(self.costs.syscall_entry_cycles)

    def _exit(self) -> None:
        self.clock.advance(self.costs.syscall_exit_cycles)
