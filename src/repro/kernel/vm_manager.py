"""The virtual-memory manager: demand paging plus the I2/I3 machinery.

This module is the kernel half of the UDMA contract.  It implements:

* **demand paging** with pluggable replacement, backing store and TLB
  shootdown;
* the **three proxy-fault cases** of section 6 (page resident; valid but
  swapped out; not accessible);
* **I2** -- "a virtual-to-physical memory proxy space mapping is valid
  only if the virtual-to-physical mapping of its corresponding real memory
  is valid", maintained by invalidating the proxy mapping whenever the
  real mapping changes in any way;
* **I3** -- "if PROXY(vmem_addr) is writable, then vmem_addr must be
  dirty", via write-protected proxy pages upgraded on write faults.  The
  paper's *alternative* strategy (dirty bits kept on proxy pages, OR-ed
  into the real page's dirtiness) is selectable with
  ``i3_strategy="proxy-dirty"``;
* the **I3 race rule** -- a page being cleaned keeps its dirty bit if a
  DMA transfer to it is in progress;
* **I4** -- eviction consults the :class:`~repro.kernel.remap_guard.RemapGuard`
  and picks a different victim (or waits) when the hardware names a page.

Every remap in this module pairs a page-table mutator (which bumps
``PageTable.generation``) with a ``tlb.invalidate`` shootdown (which
bumps ``TLB.generation``); the CPU's translation fast path keys its
cached entries on those two counters, so a mapping changed here is
never served stale -- see ``repro/cpu/cpu.py`` ("Translation fast
path").  Direct PTE *use-bit* writes (``pte.dirty = ...``) are the one
deliberate exception: they never change what an address translates to,
so they need no shootdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError, SyscallError
from repro.kernel.process import Process
from repro.kernel.remap_guard import RemapGuard
from repro.mem.frames import FrameAllocator
from repro.mem.layout import DeviceWindow, Layout, Region
from repro.mem.physmem import PhysicalMemory
from repro.params import CostModel
from repro.sim.clock import Clock
from repro.sim.trace import NULL_TRACER, Tracer
from repro.vm.backing_store import BackingStore
from repro.vm.mmu import MMU
from repro.vm.replacement import FrameView, ReplacementPolicy, make_policy
from repro.snapshot.protocol import SnapshotMixin

#: I3 maintenance strategies (section 6, "Maintaining I3").
I3_WRITE_PROTECT = "write-protect"
I3_PROXY_DIRTY = "proxy-dirty"


@dataclass
class FrameMeta:
    """Kernel bookkeeping for one allocated physical frame."""

    owner_asid: int
    owner_vpage: int
    loaded_at: int
    last_used_at: int


class VmManager(SnapshotMixin):
    """One node's VM manager."""

    def __init__(
        self,
        clock: Clock,
        costs: CostModel,
        layout: Layout,
        physmem: PhysicalMemory,
        frames: FrameAllocator,
        backing: BackingStore,
        mmu: MMU,
        remap_guard: RemapGuard,
        policy: "ReplacementPolicy | str" = "clock",
        i3_strategy: str = I3_WRITE_PROTECT,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        if i3_strategy not in (I3_WRITE_PROTECT, I3_PROXY_DIRTY):
            raise ConfigurationError(f"unknown i3_strategy {i3_strategy!r}")
        self.clock = clock
        self.costs = costs
        self.layout = layout
        self.physmem = physmem
        self.frames = frames
        self.backing = backing
        self.mmu = mmu
        self.remap_guard = remap_guard
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.i3_strategy = i3_strategy
        self.tracer = tracer
        self.page_size = layout.page_size
        self._processes: Dict[int, Process] = {}
        self._frame_meta: Dict[int, FrameMeta] = {}
        # Metrics.
        self.faults_handled = 0
        self.proxy_faults = 0
        self.pages_in = 0
        self.pages_out = 0
        self.cleans = 0
        self.cleans_deferred = 0
        self.evictions_redirected = 0

    # ----------------------------------------------------------- processes
    def register(self, process: Process) -> None:
        """Track a process's address space."""
        self._processes[process.asid] = process

    def destroy(self, process: Process) -> None:
        """Tear down an address space, freeing frames and swap."""
        for vpage, pte in list(process.page_table.entries()):
            if pte.present and self.layout.region_of(pte.pfn * self.page_size) is Region.MEMORY:
                frame = pte.pfn
                self._frame_meta.pop(frame, None)
                if self.frames.is_allocated(frame):
                    if self.frames.is_pinned(frame):
                        self.frames.unpin(frame)
                    self.frames.free(frame)
            process.page_table.unmap(vpage)
            self.mmu.tlb.invalidate(process.asid, vpage)
        self.backing.discard_asid(process.asid)
        self._processes.pop(process.asid, None)

    # -------------------------------------------------------------- faults
    def handle_fault(self, process: Process, vaddr: int, access: str, reason: str) -> bool:
        """The kernel page-fault handler; True = repaired, retry the access."""
        self.clock.advance(self.costs.page_fault_cycles)
        self.faults_handled += 1
        process.faults_served += 1
        region = self.layout.region_of(vaddr)
        if region is Region.MEMORY:
            return self._fault_memory(process, vaddr, access)
        if region is Region.MEMORY_PROXY:
            self.proxy_faults += 1
            return self._fault_memory_proxy(process, vaddr, access)
        # DEVICE_PROXY mappings are created eagerly by the grant syscall;
        # faulting there means no grant -> illegal access.
        return False

    def _fault_memory(self, process: Process, vaddr: int, access: str) -> bool:
        vpage = vaddr // self.page_size
        if not process.owns_vpage(vpage):
            return False
        if access == "write" and not process.vpage_is_writable(vpage):
            return False
        pte = process.page_table.get(vpage)
        if pte is None or not pte.present:
            self._ensure_resident(process, vpage)
            return True
        # Present and owned but still faulted: a stale TLB entry can do
        # this after a permissions upgrade; the MMU already re-walks, so
        # reaching here means a genuine protection problem.
        return False

    def _fault_memory_proxy(self, process: Process, vaddr: int, access: str) -> bool:
        """Section 6's three cases, plus the I3 write-upgrade."""
        mem_vaddr = self.layout.unproxy(vaddr)
        mem_vpage = mem_vaddr // self.page_size

        # Case 3: "vmem_page is not accessible for the process.  The kernel
        # treats this like an illegal access."
        if not process.owns_vpage(mem_vpage):
            return False

        # Case 2 folds into case 1: "the kernel first pages in vmem_page,
        # and then behaves as in the previous case."
        frame = self._ensure_resident(process, mem_vpage)
        mem_pte = process.page_table.get(mem_vpage)
        assert mem_pte is not None and mem_pte.present

        mem_writable = mem_pte.writable
        if access == "write":
            if not mem_writable:
                # "A read-only page can be used as the source of a transfer
                # but not as the destination."
                return False
            if self.i3_strategy == I3_WRITE_PROTECT and not mem_pte.dirty:
                # The I3 upgrade: "the kernel enables writes to
                # PROXY(vmem_page) ... the kernel also marks vmem_page as
                # dirty to maintain I3."
                mem_pte.dirty = True

        proxy_writable = self._proxy_writability(mem_pte)
        self._map_proxy(process, mem_vpage, frame, proxy_writable)
        return True

    def _proxy_writability(self, mem_pte) -> bool:
        if not mem_pte.writable:
            return False
        if self.i3_strategy == I3_WRITE_PROTECT:
            return mem_pte.dirty  # I3: writable proxy implies dirty page
        return True  # proxy-dirty strategy: proxy page carries its own dirty bit

    def _map_proxy(self, process: Process, mem_vpage: int, frame: int, writable: bool) -> None:
        proxy_vaddr = self.layout.proxy(mem_vpage * self.page_size)
        proxy_pfn = self.layout.proxy(frame * self.page_size) // self.page_size
        vproxy_page = proxy_vaddr // self.page_size
        process.page_table.map(vproxy_page, proxy_pfn, writable=writable, user=True)
        self.mmu.tlb.invalidate(process.asid, vproxy_page)
        if self.tracer.enabled:
            self.tracer.emit(
                self.clock.now,
                "vm",
                "proxy-map",
                asid=process.asid,
                vpage=f"{mem_vpage:#x}",
                frame=frame,
                writable=writable,
            )

    # ----------------------------------------------------------- residency
    def _ensure_resident(self, process: Process, vpage: int) -> int:
        """Make a valid page resident; returns its frame."""
        pte = process.page_table.get(vpage)
        if pte is not None and pte.present:
            return pte.pfn
        frame = self._alloc_frame()
        if self.backing.has(process.asid, vpage):
            self.clock.advance(self.costs.swap_io_cycles)
            # The swap-in wait yields the clock, so a device-side fault
            # service (Iommu._service -> dma_map_in) may have mapped this
            # very page while the CPU slept.  Re-check and back out --
            # the classic retry-after-blocking fault discipline: mapping
            # over it would orphan the device's frame and lose the
            # replayed delivery queued against it.
            pte = process.page_table.get(vpage)
            if pte is not None and pte.present:
                self.frames.free(frame)
                return pte.pfn
            data = self.backing.load(process.asid, vpage)
            assert data is not None
            self.physmem.write_frame(frame, data)
        else:
            self.physmem.zero_frame(frame)
        writable = process.vpage_is_writable(vpage)
        process.page_table.map(vpage, frame, writable=writable, user=True)
        self.mmu.tlb.invalidate(process.asid, vpage)
        self._frame_meta[frame] = FrameMeta(
            owner_asid=process.asid,
            owner_vpage=vpage,
            loaded_at=self.clock.now,
            last_used_at=self.clock.now,
        )
        self.pages_in += 1
        return frame

    def resident_frame(self, process: Process, vpage: int) -> Optional[int]:
        """Frame of a resident page, or None."""
        pte = process.page_table.get(vpage)
        if pte is not None and pte.present:
            return pte.pfn
        return None

    def touch_resident(self, process: Process, vpage: int) -> int:
        """Kernel-path residency guarantee (used by traditional DMA)."""
        return self._ensure_resident(process, vpage)

    def dma_map_in(self, process: Process, vpage: int) -> Optional[Tuple[int, int]]:
        """Device-fault service: make a page resident *without* coasting time.

        The IOMMU's park-service path (:mod:`repro.iommu`) runs inside
        clock event callbacks, where ``clock.advance`` / ``clock.run``
        are forbidden (sharded clocks enforce this).  This is
        :meth:`_ensure_resident` restructured for that context: it never
        evicts and never advances the clock.  Returns ``(frame,
        extra_cycles)`` -- ``extra_cycles`` is the swap-in I/O latency
        the caller must model as a scheduled delay -- or ``None`` when
        no frame is free (the caller re-parks and retries).
        """
        pte = process.page_table.get(vpage)
        if pte is not None and pte.present:
            return pte.pfn, 0
        frame = self.frames.alloc()
        if frame is None:
            return None
        extra = 0
        if self.backing.has(process.asid, vpage):
            data = self.backing.load(process.asid, vpage)
            assert data is not None
            self.physmem.write_frame(frame, data)
            extra = self.costs.swap_io_cycles
        else:
            self.physmem.zero_frame(frame)
        writable = process.vpage_is_writable(vpage)
        process.page_table.map(vpage, frame, writable=writable, user=True)
        self.mmu.tlb.invalidate(process.asid, vpage)
        self._frame_meta[frame] = FrameMeta(
            owner_asid=process.asid,
            owner_vpage=vpage,
            loaded_at=self.clock.now,
            last_used_at=self.clock.now,
        )
        self.pages_in += 1
        return frame, extra

    # ----------------------------------------------------------- protection
    def set_page_protection(self, process: Process, vpage: int, writable: bool) -> bool:
        """Change a page's grant-level write permission (mprotect-style).

        Returns False when the page is not part of the process's valid
        memory.  The PTE (if present) is updated with a shootdown, and the
        proxy alias is invalidated outright -- the conservative I2/I3 move:
        the next proxy fault re-materialises the mapping under the new
        permission and the active I3 strategy.
        """
        if not process.owns_vpage(vpage):
            return False
        process.vpage_writable[vpage] = writable
        pte = process.page_table.get(vpage)
        if pte is not None and pte.present:
            if pte.writable != writable:
                process.page_table.set_writable(vpage, writable)
                self.mmu.tlb.invalidate(process.asid, vpage)
            self._invalidate_proxy(process, vpage)
        return True

    # ------------------------------------------------------------ eviction
    def evict_for_pressure(self) -> bool:
        """Force one page-out (the chaos harness's paging-pressure lever).

        Follows the ordinary eviction path -- policy choice, I4 redirect,
        wait-for-hardware -- so it is exactly a kernel-legal page-out.
        Returns False when there is nothing evictable at all.
        """
        if not self._frame_meta:
            return False
        try:
            self._evict_one()
        except SyscallError:
            return False
        return True

    def _alloc_frame(self) -> int:
        frame = self.frames.alloc()
        if frame is not None:
            return frame
        self._evict_one()
        frame = self.frames.alloc()
        if frame is None:
            raise SyscallError("ENOMEM", "eviction failed to free a frame")
        return frame

    def _evict_one(self) -> None:
        """Pick a victim with the policy; re-pick when I4 forbids it."""
        rejected: Set[int] = set()
        while True:
            candidates = self._candidates(rejected)
            if not candidates:
                # Everything evictable is in the hardware's hands: "wait
                # until the transfer finishes" (section 6).
                self._wait_for_hardware()
                rejected.clear()
                continue
            victim = self.policy.choose(candidates, self._clear_referenced)
            if self.remap_guard.is_page_in_use(victim):
                # "The kernel must either find another page to remap, or
                # wait until the transfer finishes."
                self.evictions_redirected += 1
                rejected.add(victim)
                continue
            self._page_out(victim)
            return

    def _candidates(self, rejected: Set[int]) -> List[FrameView]:
        views: List[FrameView] = []
        for frame, meta in self._frame_meta.items():
            if frame in rejected or self.frames.is_pinned(frame):
                continue
            process = self._processes.get(meta.owner_asid)
            if process is None:
                continue
            pte = process.page_table.get(meta.owner_vpage)
            if pte is None or not pte.present:
                continue
            if pte.referenced:
                meta.last_used_at = self.clock.now
            views.append(
                FrameView(
                    frame=frame,
                    referenced=pte.referenced,
                    dirty=self._effective_dirty(process, meta.owner_vpage, pte),
                    loaded_at=meta.loaded_at,
                    last_used_at=meta.last_used_at,
                )
            )
        return views

    def _clear_referenced(self, frame: int) -> None:
        meta = self._frame_meta.get(frame)
        if meta is None:
            return
        process = self._processes.get(meta.owner_asid)
        if process is None:
            return
        pte = process.page_table.get(meta.owner_vpage)
        if pte is not None:
            pte.referenced = False

    def _wait_for_hardware(self) -> None:
        next_time = self.clock.next_event_time()
        if next_time is None:
            raise SyscallError(
                "ENOMEM",
                "no evictable frame and no pending hardware completion to wait for",
            )
        self.clock.run(until=next_time)

    def _page_out(self, frame: int) -> None:
        meta = self._frame_meta.pop(frame)
        process = self._processes[meta.owner_asid]
        vpage = meta.owner_vpage
        pte = process.page_table.get(vpage)
        assert pte is not None and pte.present and pte.pfn == frame

        # I2 first: the real mapping is about to change, so the proxy
        # mapping must die with it.
        self._invalidate_proxy(process, vpage)

        if self._effective_dirty(process, vpage, pte):
            self.clock.advance(self.costs.swap_io_cycles)
            self.backing.save(process.asid, vpage, self.physmem.read_frame(frame))
            pte.dirty = False

        process.page_table.set_present(vpage, False)
        self.mmu.tlb.invalidate(process.asid, vpage)
        self.frames.free(frame)
        self.pages_out += 1
        if self.tracer.enabled:
            self.tracer.emit(
                self.clock.now,
                "vm",
                "page-out",
                asid=process.asid,
                vpage=f"{vpage:#x}",
                frame=frame,
            )

    def _invalidate_proxy(self, process: Process, vpage: int) -> None:
        """I2 maintenance: drop PROXY(vmem_page)'s mapping, if any."""
        vproxy_page = self.layout.proxy(vpage * self.page_size) // self.page_size
        if process.page_table.unmap(vproxy_page) is not None:
            self.mmu.tlb.invalidate(process.asid, vproxy_page)

    # ------------------------------------------------------------ cleaning
    def clean_page(self, process: Process, vpage: int) -> bool:
        """Write a dirty page to backing store and clear its dirty bit.

        Returns False (and leaves the page dirty) when the I3 race rule
        applies: "the operating system must make sure not to clear the
        dirty bit if a DMA transfer to the page is in progress".
        """
        pte = process.page_table.get(vpage)
        if pte is None or not pte.present:
            return False
        if not self._effective_dirty(process, vpage, pte):
            return True  # already clean
        if self.remap_guard.is_page_in_use(pte.pfn):
            self.cleans_deferred += 1
            return False
        self.clock.advance(self.costs.swap_io_cycles)
        self.backing.save(process.asid, vpage, self.physmem.read_frame(pte.pfn))
        pte.dirty = False
        if self.i3_strategy == I3_WRITE_PROTECT:
            # "If the kernel cleans vmem_page ... the kernel also
            # write-protects PROXY(vmem_page)."
            self._write_protect_proxy(process, vpage)
        else:
            # Alternative strategy: clear the proxy page's own dirty bit.
            vproxy_page = self.layout.proxy(vpage * self.page_size) // self.page_size
            proxy_pte = process.page_table.get(vproxy_page)
            if proxy_pte is not None:
                proxy_pte.dirty = False
        self.cleans += 1
        return True

    def _write_protect_proxy(self, process: Process, vpage: int) -> None:
        vproxy_page = self.layout.proxy(vpage * self.page_size) // self.page_size
        proxy_pte = process.page_table.get(vproxy_page)
        if proxy_pte is not None and proxy_pte.writable:
            process.page_table.set_writable(vproxy_page, False)
            self.mmu.tlb.invalidate(process.asid, vproxy_page)

    def _effective_dirty(self, process: Process, vpage: int, pte) -> bool:
        """Dirtiness under the active I3 strategy.

        Under the alternative strategy the kernel "considers vmem_page
        dirty if either vmem_page or PROXY(vmem_page) is dirty".
        """
        if pte.dirty:
            return True
        if self.i3_strategy == I3_PROXY_DIRTY:
            vproxy_page = self.layout.proxy(vpage * self.page_size) // self.page_size
            proxy_pte = process.page_table.get(vproxy_page)
            if proxy_pte is not None and proxy_pte.dirty:
                return True
        return False

    # -------------------------------------------------------- device proxy
    def map_device_window(
        self,
        process: Process,
        window: DeviceWindow,
        writable: bool,
        pages: Optional[Tuple[int, int]] = None,
    ) -> int:
        """Map (part of) a device-proxy window into a process.

        Virtual device-proxy addresses are identity-mapped onto physical
        ones for simplicity (each page still gets its own PTE, so
        protection is per-process and per-page).  ``pages`` restricts the
        grant to ``(first_page, npages)`` within the window.  Returns the
        base virtual address of the grant.
        """
        total_pages = window.size // self.page_size
        first, count = pages if pages is not None else (0, total_pages)
        if first < 0 or count <= 0 or first + count > total_pages:
            raise SyscallError(
                "EINVAL", f"grant range ({first}, {count}) exceeds window"
            )
        base = window.base + first * self.page_size
        for i in range(count):
            vaddr = base + i * self.page_size
            vpage = vaddr // self.page_size
            process.page_table.map(vpage, vpage, writable=writable, user=True)
            self.mmu.tlb.invalidate(process.asid, vpage)
        process.device_grants[window.name] = base
        return base

    def revoke_device_window(self, process: Process, window: DeviceWindow) -> None:
        """Remove every mapping of a device window from a process."""
        total_pages = window.size // self.page_size
        for i in range(total_pages):
            vpage = (window.base + i * self.page_size) // self.page_size
            if process.page_table.unmap(vpage) is not None:
                self.mmu.tlb.invalidate(process.asid, vpage)
        process.device_grants.pop(window.name, None)

    # ----------------------------------------------------------- inventory
    def frame_owner(self, frame: int) -> Optional[Tuple[int, int]]:
        """(asid, vpage) owning a frame, or None."""
        meta = self._frame_meta.get(frame)
        if meta is None:
            return None
        return meta.owner_asid, meta.owner_vpage

    def resident_pages(self, process: Process) -> List[int]:
        """All resident vpages of a process's real memory."""
        return [
            vpage
            for vpage, pte in process.page_table.entries()
            if pte.present
            and self.layout.region_of(pte.pfn * self.page_size) is Region.MEMORY
            and process.owns_vpage(vpage)
        ]
