"""Single-node assembly: CPU + MMU + kernel + UDMA + devices.

:class:`Machine` is the library's main entry point for single-node use.
It wires every substrate together with one shared clock and a consistent
address map, following Figure 4's structure:

* the CPU issues loads/stores through the MMU;
* accesses landing in proxy space hit the UDMA controller, which sits in
  front of a standard DMA engine;
* a second, traditional DMA controller provides the section-2 baseline;
* the kernel supplies scheduling (with the I1 hook), demand paging with
  the I2/I3 machinery, the I4 remap guard, and the syscall surface.

Example::

    from repro import Machine
    from repro.devices import SinkDevice

    m = Machine(mem_size=1 << 22)
    m.attach_device(SinkDevice("sink", size=1 << 16))
    p = m.create_process("app")
    ...
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import MachineConfig
from repro.core.controller import UdmaController
from repro.core.queueing import QueuedUdmaController
from repro.cpu.cpu import CPU
from repro.devices.base import UDMADevice
from repro.dma.engine import DmaEngine
from repro.dma.traditional import TraditionalDmaController
from repro.errors import ConfigurationError
from repro.iommu import Iommu
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.mem.layout import DeviceWindow, Layout
from repro.mem.physmem import PhysicalMemory
from repro.obs import Observability, unflatten
from repro.params import shrimp
from repro.protection import ProtectionBackend, make_backend
from repro.sim.clock import Clock
from repro.sim.trace import Tracer
from repro.vm.mmu import MMU


class Machine:
    """One simulated node.

    The front door is a typed config (see :mod:`repro.config` for every
    option)::

        from repro import Machine, MachineConfig

        m = Machine(config=MachineConfig(mem_size=1 << 21, iommu=True))

    Wiring parameters that name live objects owned by an enclosing
    assembly stay keyword arguments here:

    Args:
        config: a :class:`~repro.config.MachineConfig`; ``None`` builds
            the defaults.
        clock: share an existing clock (a cluster's); ``None`` builds a
            private one configured from ``config.pooling``/``pool_debug``.
        tracer: share an existing tracer; ``None`` derives one from the
            observability plane / ``config.record_trace``.
        name: node name (namespaces metrics and trace sources).

    Legacy keyword construction (``Machine(mem_size=...)``) still works
    -- the keywords are routed through
    :meth:`~repro.config.MachineConfig.from_kwargs`, which emits a
    ``DeprecationWarning``.  The ``iommu`` option is config-only.
    """

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        *,
        clock: Optional[Clock] = None,
        tracer: Optional[Tracer] = None,
        name: str = "node",
        **legacy: object,
    ) -> None:
        if config is not None:
            if legacy:
                raise TypeError(
                    "Machine() takes config= or legacy keyword arguments, "
                    f"not both (got {', '.join(sorted(legacy))})"
                )
            if not isinstance(config, MachineConfig):
                raise ConfigurationError(
                    f"config must be a MachineConfig, got {type(config).__name__}"
                )
        else:
            config = MachineConfig.from_kwargs(**legacy)
        self.config = config
        self.costs = config.costs if config.costs is not None else shrimp()
        self.name = name
        # ``pooling``/``pool_debug`` apply only when the machine owns its
        # clock; a shared (cluster) clock arrives pre-configured.
        self.clock = (
            clock
            if clock is not None
            else Clock(pooling=config.pooling, pool_debug=config.pool_debug)
        )
        obs = config.obs
        if isinstance(obs, Observability):
            # Shared plane (a cluster's): namespace this node's metrics.
            self.obs = obs
            self._obs_prefix = f"{name}."
        else:
            self.obs = Observability(obs, clock=self.clock)
            self._obs_prefix = ""
        self.obs.adopt_clock(self.clock)
        if tracer is not None:
            self.tracer = tracer
        elif self.obs.tracer is not None:
            self.tracer = self.obs.tracer
        else:
            self.tracer = Tracer(
                record=config.record_trace or self.obs.config.record_trace
            )
        if self.obs.tracer is None:
            self.obs.tracer = self.tracer
        self._metrics_bound = False
        self.layout = Layout(
            mem_size=config.mem_size,
            scheme=config.scheme,
            page_size=self.costs.page_size,
        )
        self.physmem = PhysicalMemory(config.mem_size, self.costs.page_size)
        self.mmu = MMU(self.costs, clock=None)  # walk penalty charged via CPU path

        depth = (
            config.queue_depth
            if config.queue_depth is not None
            else self.costs.udma_queue_depth
        )
        self.udma_engine = DmaEngine(
            self.clock, self.costs, name=f"{name}.udma-engine",
            tracer=self.tracer, burst_bytes=config.dma_burst_bytes,
            bursts_per_event=config.dma_bursts_per_event,
        )
        backend = make_backend(config.protection)
        if depth > 0:
            self.udma: UdmaController = QueuedUdmaController(
                self.layout,
                self.physmem,
                self.udma_engine,
                self.clock,
                queue_depth=depth,
                name=f"{name}.udma",
                tracer=self.tracer,
                backend=backend,
            )
        else:
            self.udma = UdmaController(
                self.layout,
                self.physmem,
                self.udma_engine,
                self.clock,
                name=f"{name}.udma",
                tracer=self.tracer,
                backend=backend,
            )

        self.tdma_engine = DmaEngine(
            self.clock, self.costs, name=f"{name}.tdma-engine", tracer=self.tracer
        )
        self.tdma = TraditionalDmaController(
            self.tdma_engine, name=f"{name}.tdma", tracer=self.tracer
        )

        self.cpu = CPU(
            self.clock,
            self.costs,
            self.mmu,
            self.layout,
            self.physmem,
            udma=self.udma,
            tracer=self.tracer,
        )
        if not config.fast_paths:
            self.cpu.xlat_enabled = False
            self.cpu.bulk_io_enabled = False
        self.kernel = Kernel(
            clock=self.clock,
            costs=self.costs,
            layout=self.layout,
            physmem=self.physmem,
            mmu=self.mmu,
            cpu=self.cpu,
            udma_controllers=[self.udma],
            tdma=self.tdma,
            replacement_policy=config.replacement_policy,
            i3_strategy=config.i3_strategy,
            guard_strategy=config.guard_strategy,
            bounce_frames=config.bounce_frames,
            tracer=self.tracer,
        )
        #: the virtual-address RDMA tier (:mod:`repro.iommu`); built only
        #: when the config asks for it -- ``None`` keeps every receive
        #: path byte-identical to the paper's physical-address NIC
        self.iommu: Optional[Iommu] = None
        iommu_config = config.iommu_config
        if iommu_config is not None:
            self.iommu = Iommu(
                iommu_config,
                clock=self.clock,
                costs=self.costs,
                kernel=self.kernel,
                name=f"{name}.iommu",
                tracer=self.tracer,
            )
        if self.obs.spans is not None:
            self.udma._spans = self.obs.spans
            self.udma_engine._spans = self.obs.spans
        self.swap_disk = None
        #: requested reliability setting; the plane itself is created
        #: lazily when the first NIC is attached (most machines have none)
        self._reliability_requested = config.reliability
        self.reliability = None
        if config.swap != "dict":
            self._attach_swap_disk(config.swap, config.bounce_frames)
        if self.obs.config.metrics:
            self._bind_metrics()

    def _attach_swap_disk(self, swap: str, bounce_frames: int) -> None:
        """Replace the dict backing store with a real swap disk.

        ``swap`` is ``"disk"`` (kernel pages through the traditional DMA
        engine) or ``"disk-system-queue"`` (kernel paging rides the
        section-7 system-priority queue of a queued UDMA device).
        """
        from repro.devices.disk import Disk
        from repro.kernel.swapdisk import DiskBackingStore

        if swap not in ("disk", "disk-system-queue"):
            raise ConfigurationError(f"unknown swap mode {swap!r}")
        if bounce_frames < 2:
            raise ConfigurationError(
                "a swap disk needs bounce_frames >= 2 (frame 1 stages pages)"
            )
        transport = "system-queue" if swap == "disk-system-queue" else "traditional"
        if transport == "system-queue" and not isinstance(
            self.udma, QueuedUdmaController
        ):
            raise ConfigurationError(
                "swap='disk-system-queue' requires a queued UDMA device "
                "(set queue_depth > 0)"
            )
        # Generously sized: four times RAM, in page-sized blocks.
        self.swap_disk = Disk(
            "swapdisk",
            num_blocks=(self.physmem.size * 4) // 512,
            block_size=512,
            seek_cycles=self.costs.disk_seek_cycles // 10,  # fast swap area
            bytes_per_cycle=self.costs.disk_bytes_per_cycle,
            alignment=4,
        )
        self.attach_device(self.swap_disk)
        store = DiskBackingStore(
            clock=self.clock,
            costs=self.costs,
            layout=self.layout,
            physmem=self.physmem,
            disk=self.swap_disk,
            udma=self.udma if transport == "system-queue" else None,
            transport=transport,
            tdma_engine=self.tdma_engine,
        )
        self.kernel.backing = store
        self.kernel.vm.backing = store

    # ------------------------------------------------------------ assembly
    def attach_device(self, device: UDMADevice) -> DeviceWindow:
        """Attach a device to the UDMA controller (reserves a proxy window)."""
        window = self.udma.attach_device(device)
        if self.obs.spans is not None:
            device._spans = self.obs.spans
        if self.iommu is not None and hasattr(device, "attach_iommu"):
            # The virtual-address RDMA tier: the NIC's receive DMA
            # translates through this node's IOMMU.
            device.attach_iommu(self.iommu)
        if self._reliability_requested and hasattr(device, "enable_reliability"):
            # A NIC on a reliability-enabled machine joins the machine's
            # plane (created on first need).
            if self.reliability is None:
                from repro.net.reliable import ReliabilityConfig, ReliabilityPlane

                requested = self._reliability_requested
                config = (
                    requested
                    if isinstance(requested, ReliabilityConfig)
                    else None
                )
                self.reliability = ReliabilityPlane(
                    config,
                    clock=self.clock,
                    spans=self.obs.spans,
                    tracer=self.tracer,
                )
            device.enable_reliability(self.reliability)
        return window

    def set_protection(
        self, protection: "str | ProtectionBackend"
    ) -> ProtectionBackend:
        """Switch the UDMA protection backend on the live machine.

        Accepts the same spec strings as ``Machine(protection=...)``
        (see :func:`repro.protection.make_backend`).  Devices and
        outstanding grants are replayed into the new backend and the
        host-side decode caches are flushed.
        """
        return self.udma.set_backend(make_backend(protection))

    @property
    def protection(self) -> ProtectionBackend:
        """The active UDMA protection backend."""
        return self.udma.backend

    # ------------------------------------------------------- observability
    def _bind_metrics(self) -> None:
        """Register this node's stable metric names over its live counters.

        Bindings are *sampled*: each counter/gauge reads the component's
        bare integer attribute only when a snapshot is taken, so the hot
        paths stay untouched.  The one recording instrument is the
        per-transfer latency histogram, handed to the UDMA controller
        (guarded there with ``if hist is not None``).  Names are stable
        API -- see ``tests/obs/test_metric_names_golden.py``.
        """
        if self._metrics_bound:
            return
        self._metrics_bound = True
        reg = self.obs.registry
        p = self._obs_prefix
        cpu, tlb = self.cpu, self.mmu.tlb
        vm = self.kernel.vm
        sched = self.kernel.scheduler
        sys = self.kernel.syscalls

        reg.counter(p + "cpu.instructions", lambda: cpu.instructions)
        reg.counter(p + "cpu.loads", lambda: cpu.loads)
        reg.counter(p + "cpu.stores", lambda: cpu.stores)
        reg.counter(p + "cpu.charged_cycles", lambda: cpu.charged_cycles)
        reg.counter(p + "cpu.xlat_hits", lambda: cpu.xlat_hits)
        reg.counter(p + "cpu.xlat_misses", lambda: cpu.xlat_misses)
        reg.counter(p + "cpu.xlat_fills", lambda: cpu.xlat_fills)
        reg.counter(p + "tlb.hits", lambda: tlb.hits)
        reg.counter(p + "tlb.misses", lambda: tlb.misses)
        reg.gauge(p + "tlb.hit_rate", lambda: round(tlb.hit_rate, 4))
        reg.counter(p + "tlb.flushes", lambda: tlb.flushes)
        reg.counter(p + "vm.faults", lambda: vm.faults_handled)
        reg.counter(p + "vm.proxy_faults", lambda: vm.proxy_faults)
        reg.counter(p + "vm.pages_in", lambda: vm.pages_in)
        reg.counter(p + "vm.pages_out", lambda: vm.pages_out)
        reg.counter(p + "vm.cleans", lambda: vm.cleans)
        reg.counter(p + "vm.cleans_deferred", lambda: vm.cleans_deferred)
        reg.counter(
            p + "vm.evictions_redirected", lambda: vm.evictions_redirected
        )
        reg.counter(p + "scheduler.switches", lambda: sched.switches)
        reg.counter(p + "scheduler.invals_fired", lambda: sched.invals_fired)
        reg.counter(p + "syscalls.dma_calls", lambda: sys.dma_calls)
        reg.counter(p + "syscalls.pages_pinned", lambda: sys.pages_pinned)
        reg.counter(p + "syscalls.bytes_copied", lambda: sys.bytes_copied)
        reg.counter(
            p + "udma.engine_transfers",
            lambda: self.udma_engine.transfers_completed,
        )
        reg.counter(
            p + "udma.engine_bytes",
            lambda: self.udma_engine.bytes_transferred,
        )
        udma = self.udma
        if isinstance(udma, QueuedUdmaController):
            reg.counter(p + "udma.accepted", lambda: udma.accepted)
            reg.counter(p + "udma.refused", lambda: udma.refused)
            reg.gauge(p + "udma.backlog", lambda: udma.backlog_requests)
        else:
            sm = udma.sm
            reg.counter(p + "udma.initiations", lambda: sm.initiations)
            reg.counter(p + "udma.completions", lambda: sm.completions)
            reg.counter(p + "udma.bad_loads", lambda: sm.bad_loads)
            reg.counter(p + "udma.invals", lambda: sm.invals)
        if self.iommu is not None:
            # IOMMU names exist only when the tier does: default machines
            # keep the historical metric name set bit-identical
            # (golden-file gated).
            io = self.iommu
            reg.counter(p + "iommu.translations", lambda: io.translations)
            reg.counter(p + "iommu.iotlb_hits", lambda: io.iotlb.hits)
            reg.counter(p + "iommu.iotlb_misses", lambda: io.iotlb.misses)
            reg.counter(
                p + "iommu.delivered_direct", lambda: io.delivered_direct
            )
            reg.counter(
                p + "iommu.delivered_replayed", lambda: io.delivered_replayed
            )
            reg.counter(p + "iommu.faults_parked", lambda: io.faults_parked)
            reg.counter(p + "iommu.faults_reparked", lambda: io.faults_reparked)
            reg.counter(p + "iommu.aborted", lambda: io.aborted)
            reg.gauge(p + "iommu.parked_now", lambda: io.parked_count)
            reg.gauge(p + "iommu.windows", lambda: io.table.windows)
        reg.gauge(p + "sim.now_cycles", lambda: self.clock.now)
        reg.counter(p + "sim.events_fired", lambda: self.clock.events_fired)
        self.udma._latency_hist = reg.histogram(
            p + "udma.transfer_cycles",
            help="initiation-to-completion latency per UDMA transfer",
        )

    def _reattach_after_restore(self) -> None:
        """Re-attach observers dropped by snapshotting (see repro.snapshot).

        Sampled metric bindings close over live components and are not
        pickled; the registry keeps the detached instruments (preserving
        histogram distributions), and this re-runs the binding under
        :meth:`MetricsRegistry.rebinding` so every counter/gauge samples
        *this* machine's restored components.
        """
        if self._metrics_bound:
            self._metrics_bound = False
            with self.obs.registry.rebinding():
                self._bind_metrics()

    def metrics(self) -> dict:
        """This node's counters, grouped by subsystem.

        The stable replacement for the deprecated
        :func:`repro.analysis.metrics.machine_metrics` free function: the
        report is a nested view over the observability plane's registry
        (``m.obs.registry``), sampled at call time.
        """
        self._bind_metrics()
        return unflatten(
            self.obs.registry.snapshot(self._obs_prefix), strip=self._obs_prefix
        )

    # ------------------------------------------------------------- helpers
    def create_process(self, name: str) -> Process:
        """Create and schedule a process."""
        return self.kernel.create_process(name)

    def proxy(self, vaddr: int) -> int:
        """Virtual PROXY(): the address user code stores/loads to."""
        return self.layout.proxy(vaddr)

    def run_until_idle(self) -> None:
        """Drain all pending hardware events (DMA, packets...)."""
        self.clock.run_until_idle()

    @property
    def now(self) -> int:
        """Current cycle time."""
        return self.clock.now

    def us(self, cycles: int) -> float:
        """Convert cycles to microseconds under this machine's cost model."""
        return self.costs.cycles_to_us(cycles)

    def __repr__(self) -> str:
        return (
            f"<Machine {self.name!r} mem={self.physmem.size:#x} "
            f"udma={'queued' if isinstance(self.udma, QueuedUdmaController) else 'basic'}>"
        )
