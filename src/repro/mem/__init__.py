"""Physical memory substrate: RAM, the physical address map, and PROXY()."""

from repro.mem.frames import FrameAllocator
from repro.mem.layout import Layout, ProxyScheme, Region
from repro.mem.physmem import PhysicalMemory

__all__ = [
    "FrameAllocator",
    "Layout",
    "PhysicalMemory",
    "ProxyScheme",
    "Region",
]
