"""Physical frame allocator.

The kernel owns one :class:`FrameAllocator` per node.  It hands out frame
numbers for process pages, tracks pinned frames (used only by the
*traditional* DMA baseline -- the whole point of UDMA is that its transfers
never pin), and knows which frames are free for the page-replacement path.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set

from repro.errors import ConfigurationError, DmaError


class FrameAllocator:
    """Free-list allocator over ``num_frames`` physical frames.

    Frames below ``reserved`` are never handed out; the kernel keeps them
    for its own structures (and the traditional-DMA bounce buffers).
    """

    def __init__(self, num_frames: int, reserved: int = 0) -> None:
        if num_frames <= 0:
            raise ConfigurationError(f"num_frames must be positive, got {num_frames}")
        if not 0 <= reserved < num_frames:
            raise ConfigurationError(
                f"reserved frame count {reserved} out of range [0, {num_frames})"
            )
        self.num_frames = num_frames
        self.reserved = reserved
        self._free: List[int] = list(range(num_frames - 1, reserved - 1, -1))
        self._allocated: Set[int] = set()
        self._pinned: Set[int] = set()

    # ---------------------------------------------------------- allocation
    @property
    def available(self) -> int:
        """Number of frames currently free."""
        return len(self._free)

    def alloc(self) -> Optional[int]:
        """Allocate one frame, or None if memory is exhausted.

        The caller (the kernel VM manager) reacts to None by running page
        replacement and retrying.
        """
        if not self._free:
            return None
        frame = self._free.pop()
        self._allocated.add(frame)
        return frame

    def free(self, frame: int) -> None:
        """Return a frame to the free list."""
        if frame not in self._allocated:
            raise ConfigurationError(f"frame {frame} is not allocated")
        if frame in self._pinned:
            raise DmaError(f"cannot free pinned frame {frame}")
        self._allocated.discard(frame)
        self._free.append(frame)

    def is_allocated(self, frame: int) -> bool:
        """True if the frame is currently handed out."""
        return frame in self._allocated

    def allocated_frames(self) -> Iterator[int]:
        """Iterate over allocated frames (unspecified order)."""
        return iter(set(self._allocated))

    # ------------------------------------------------------------- pinning
    # Pinning exists solely for the traditional-DMA baseline of section 2.
    # UDMA replaces it with the I4 register/queue check (section 6).
    def pin(self, frame: int) -> None:
        """Pin an allocated frame against replacement."""
        if frame not in self._allocated:
            raise DmaError(f"cannot pin unallocated frame {frame}")
        self._pinned.add(frame)

    def unpin(self, frame: int) -> None:
        """Release a pin."""
        if frame not in self._pinned:
            raise DmaError(f"frame {frame} is not pinned")
        self._pinned.discard(frame)

    def is_pinned(self, frame: int) -> bool:
        """True while the frame is pinned."""
        return frame in self._pinned

    @property
    def pinned_count(self) -> int:
        """Number of currently pinned frames."""
        return len(self._pinned)
