"""The physical (and mirrored virtual) address map, with proxy regions.

Section 4 of the paper: "the physical address space contains three regions:
real memory space, memory proxy space, and device proxy space.  Accesses to
each region can be recognized by pattern-matching some number of high-order
address bits."

Section 5 offers two concrete PROXY() implementations -- flipping the high
order address bit, or adding a fixed offset.  Both are supported here (the
PROXY bench shows they behave identically, as the paper asserts).

The same layout function is applied in *virtual* space: a process computes
the virtual proxy address of a buffer as ``layout.proxy(vaddr)``, mirroring
Figure 2's parallel structure of the two address spaces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import AddressError, ConfigurationError
from repro.params import DEFAULT_PAGE_SIZE


class ProxyScheme(enum.Enum):
    """How PROXY() maps a real address to its memory-proxy alias."""

    #: ``PROXY(a) = a XOR proxy_bit`` -- "flipping the high order address bit"
    HIGH_BIT = "high-bit"
    #: ``PROXY(a) = a + proxy_offset`` -- "lay out the memory proxy space at
    #: some fixed offset from the real memory space"
    OFFSET = "offset"


class Region(enum.Enum):
    """Classification of a physical (or virtual) address."""

    MEMORY = "memory"
    MEMORY_PROXY = "memory-proxy"
    DEVICE_PROXY = "device-proxy"
    UNMAPPED = "unmapped"

    @property
    def is_proxy(self) -> bool:
        return self in (Region.MEMORY_PROXY, Region.DEVICE_PROXY)


@dataclass(frozen=True)
class DeviceWindow:
    """A device's slice of the device-proxy region."""

    name: str
    base: int
    size: int

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size


class Layout:
    """Address-map geometry shared by one node's hardware and kernel.

    Args:
        mem_size: bytes of real memory (region ``[0, mem_size)``).
        scheme: the PROXY() implementation.
        page_size: page/frame size.
        proxy_bit: for HIGH_BIT, the bit that distinguishes proxy space.
        proxy_offset: for OFFSET, the distance to the memory-proxy region.
        dev_proxy_base: start of the device-proxy window.
        dev_proxy_size: total size reserved for device-proxy windows.

    The default geometry is a 32-bit-flavoured map: memory low, memory
    proxy at ``1 << 31``, device proxy at ``0xC000_0000``.
    """

    def __init__(
        self,
        mem_size: int,
        scheme: ProxyScheme = ProxyScheme.HIGH_BIT,
        page_size: int = DEFAULT_PAGE_SIZE,
        proxy_bit: int = 1 << 31,
        proxy_offset: Optional[int] = None,
        dev_proxy_base: int = 0xC000_0000,
        dev_proxy_size: int = 0x2000_0000,
    ) -> None:
        if mem_size <= 0 or mem_size % page_size:
            raise ConfigurationError(
                f"mem_size {mem_size:#x} must be a positive multiple of "
                f"page_size {page_size:#x}"
            )
        self.page_size = page_size
        self.mem_size = mem_size
        self.scheme = scheme
        self.proxy_bit = proxy_bit
        self.proxy_offset = proxy_offset if proxy_offset is not None else proxy_bit
        self.dev_proxy_base = dev_proxy_base
        self.dev_proxy_size = dev_proxy_size
        self._windows: Dict[str, DeviceWindow] = {}
        self._next_window = dev_proxy_base
        self._validate_geometry()

    # --------------------------------------------------------------- PROXY
    def proxy(self, addr: int) -> int:
        """``PROXY(real address)`` -> proxy address (Figure 2).

        Applies to real-memory addresses in either the virtual or physical
        space; the mapping is identical in both (the key one-to-one
        association of section 4).
        """
        if not 0 <= addr < self.mem_size:
            raise AddressError(addr, "PROXY() argument must be a real memory address")
        if self.scheme is ProxyScheme.HIGH_BIT:
            return addr ^ self.proxy_bit
        return addr + self.proxy_offset

    def unproxy(self, proxy_addr: int) -> int:
        """``PROXY^-1(proxy address)`` -> real address.

        This is the translation the UDMA hardware applies to physical
        memory-proxy addresses before loading a DMA register (section 5).
        """
        if self.scheme is ProxyScheme.HIGH_BIT:
            real = proxy_addr ^ self.proxy_bit
        else:
            real = proxy_addr - self.proxy_offset
        if not 0 <= real < self.mem_size:
            raise AddressError(proxy_addr, "not a memory-proxy address")
        return real

    # ------------------------------------------------------ classification
    def region_of(self, addr: int) -> Region:
        """Classify an address by pattern-matching its high-order bits."""
        if 0 <= addr < self.mem_size:
            return Region.MEMORY
        if self._in_memory_proxy(addr):
            return Region.MEMORY_PROXY
        if self.dev_proxy_base <= addr < self.dev_proxy_base + self.dev_proxy_size:
            return Region.DEVICE_PROXY
        return Region.UNMAPPED

    def is_proxy(self, addr: int) -> bool:
        """True if the address lies in either proxy region."""
        return self.region_of(addr).is_proxy

    def _in_memory_proxy(self, addr: int) -> bool:
        if self.scheme is ProxyScheme.HIGH_BIT:
            return bool(addr & self.proxy_bit) and 0 <= (addr ^ self.proxy_bit) < self.mem_size
        return self.proxy_offset <= addr < self.proxy_offset + self.mem_size

    # ------------------------------------------------------ device windows
    def register_device(self, name: str, size: int) -> DeviceWindow:
        """Reserve a page-aligned window of device-proxy space.

        The window's addresses are the device's proxy addresses; their
        device-specific meaning (NIPT entry, disk block, pixel...) is up to
        the device (section 4: "the precise interpretation of addresses in
        device proxy space is device specific").
        """
        if name in self._windows:
            raise ConfigurationError(f"device window {name!r} already registered")
        if size <= 0:
            raise ConfigurationError(f"device window size must be positive, got {size}")
        size = -(-size // self.page_size) * self.page_size  # round up to pages
        end = self._next_window + size
        if end > self.dev_proxy_base + self.dev_proxy_size:
            raise ConfigurationError(
                f"device-proxy region exhausted while registering {name!r}"
            )
        window = DeviceWindow(name, self._next_window, size)
        self._windows[name] = window
        self._next_window = end
        return window

    def window_of(self, addr: int) -> DeviceWindow:
        """The device window containing a device-proxy address."""
        for window in self._windows.values():
            if window.contains(addr):
                return window
        raise AddressError(addr, "no device window covers this address")

    def windows(self) -> Tuple[DeviceWindow, ...]:
        """All registered device windows, in registration order."""
        return tuple(self._windows.values())

    def window_by_name(self, name: str) -> DeviceWindow:
        """Look up a device window by its device name."""
        try:
            return self._windows[name]
        except KeyError:
            raise ConfigurationError(f"no device window named {name!r}") from None

    # ---------------------------------------------------------- page utils
    def page_of(self, addr: int) -> int:
        """Page number containing ``addr``."""
        return addr // self.page_size

    def page_base(self, addr: int) -> int:
        """Address of the first byte of the page containing ``addr``."""
        return addr & ~(self.page_size - 1)

    def page_offset(self, addr: int) -> int:
        """Offset of ``addr`` within its page."""
        return addr & (self.page_size - 1)

    def bytes_to_page_end(self, addr: int) -> int:
        """Bytes from ``addr`` to the end of its page (inclusive span)."""
        return self.page_size - self.page_offset(addr)

    # ------------------------------------------------------------ internal
    def _validate_geometry(self) -> None:
        if self.scheme is ProxyScheme.HIGH_BIT:
            if self.proxy_bit <= 0 or self.proxy_bit & (self.proxy_bit - 1):
                raise ConfigurationError(
                    f"proxy_bit must be a single set bit, got {self.proxy_bit:#x}"
                )
            if self.mem_size > self.proxy_bit:
                raise ConfigurationError(
                    "memory region would overlap its own proxy alias: "
                    f"mem_size {self.mem_size:#x} > proxy_bit {self.proxy_bit:#x}"
                )
            proxy_lo, proxy_hi = self.proxy_bit, self.proxy_bit + self.mem_size
        else:
            if self.proxy_offset < self.mem_size:
                raise ConfigurationError(
                    "proxy_offset places memory-proxy space inside real memory"
                )
            proxy_lo, proxy_hi = self.proxy_offset, self.proxy_offset + self.mem_size
        dev_lo = self.dev_proxy_base
        dev_hi = self.dev_proxy_base + self.dev_proxy_size
        if max(proxy_lo, dev_lo) < min(proxy_hi, dev_hi):
            raise ConfigurationError(
                "memory-proxy and device-proxy regions overlap: "
                f"[{proxy_lo:#x},{proxy_hi:#x}) vs [{dev_lo:#x},{dev_hi:#x})"
            )
        if dev_lo < self.mem_size:
            raise ConfigurationError("device-proxy region overlaps real memory")
        if self.dev_proxy_base % self.page_size or self.dev_proxy_size % self.page_size:
            raise ConfigurationError("device-proxy region must be page aligned")
