"""Byte-addressable physical memory.

A :class:`PhysicalMemory` is a flat ``bytearray`` of frames.  All data that
"really exists" in a simulated node lives here; DMA engines, the CPU (via
the MMU) and the receive side of the NIC all read and write through this
object, so tests can verify end-to-end data movement byte for byte.

The zero-copy data plane hands out :class:`memoryview` windows via
:meth:`PhysicalMemory.view`; all internal byte/word/frame I/O routes
through one long-lived view of the backing buffer, so a ``read`` costs one
copy and a ``write`` from any buffer-protocol object (bytes, bytearray,
another node's view) costs exactly one copy into RAM.  See
``docs/PERFORMANCE.md`` for the ownership rules a view borrower must obey.
"""

from __future__ import annotations

from repro.errors import AddressError
from repro.params import DEFAULT_PAGE_SIZE, WORD_SIZE
from repro.snapshot.protocol import SnapshotMixin


class PhysicalMemory(SnapshotMixin):
    """Main memory of one node.

    Args:
        size: total bytes of RAM; must be a positive multiple of ``page_size``.
        page_size: frame size in bytes (power of two).
    """

    def __init__(self, size: int, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError(f"page_size must be a power of two, got {page_size}")
        if size <= 0 or size % page_size:
            raise ValueError(
                f"memory size {size} must be a positive multiple of the "
                f"page size {page_size}"
            )
        self.size = size
        self.page_size = page_size
        self._data = bytearray(size)
        # One long-lived writable view; slicing it is allocation-light and
        # never copies the underlying RAM.
        self._mv = memoryview(self._data)

    @property
    def num_frames(self) -> int:
        """Number of physical frames."""
        return self.size // self.page_size

    # -------------------------------------------------------- snapshotting
    def __getstate__(self) -> dict:
        # memoryviews do not pickle; the long-lived view is rebuilt over
        # the restored bytearray.
        state = self.__dict__.copy()
        del state["_mv"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._mv = memoryview(self._data)

    # -------------------------------------------------------- zero-copy I/O
    def view(self, paddr: int, nbytes: int) -> memoryview:
        """A writable :class:`memoryview` window onto RAM.

        The view *aliases* memory: writes through it are visible to every
        later read, with no copy in either direction.  Borrowers must
        treat it as a loan -- consume it inside the call that received it
        (or copy), never retain it across simulated time (see
        ``docs/PERFORMANCE.md``).
        """
        self._check_range(paddr, nbytes)
        return self._mv[paddr : paddr + nbytes]

    # ------------------------------------------------------------ byte I/O
    def read(self, paddr: int, nbytes: int) -> bytes:
        """Read ``nbytes`` starting at physical address ``paddr`` (one copy)."""
        self._check_range(paddr, nbytes)
        return bytes(self._mv[paddr : paddr + nbytes])

    def readinto(self, paddr: int, buf: "bytearray | memoryview") -> int:
        """Fill a caller-supplied writable buffer from RAM (one copy).

        The receive-side twin of :meth:`write`: callers that own a
        reusable buffer (``CPU.read_into``, snapshot capture) avoid the
        intermediate ``bytes`` object :meth:`read` would allocate.
        Returns the number of bytes copied (``len(buf)``).
        """
        mv = memoryview(buf)
        nbytes = len(mv)
        self._check_range(paddr, nbytes)
        mv[:] = self._mv[paddr : paddr + nbytes]
        return nbytes

    def write(self, paddr: int, data: "bytes | bytearray | memoryview") -> None:
        """Write ``data`` (any buffer-protocol object) at ``paddr`` (one copy)."""
        nbytes = len(data)
        self._check_range(paddr, nbytes)
        self._mv[paddr : paddr + nbytes] = data

    # ------------------------------------------------------------ word I/O
    def read_word(self, paddr: int) -> int:
        """Read one little-endian word as an unsigned integer."""
        self._check_range(paddr, WORD_SIZE)
        return int.from_bytes(self._mv[paddr : paddr + WORD_SIZE], "little")

    def write_word(self, paddr: int, value: int) -> None:
        """Write one little-endian word (value taken modulo 2**32)."""
        self.write(paddr, (value % (1 << 32)).to_bytes(WORD_SIZE, "little"))

    # ----------------------------------------------------------- frame I/O
    def frame_base(self, frame: int) -> int:
        """Physical address of the first byte of ``frame``."""
        if not 0 <= frame < self.num_frames:
            raise AddressError(frame * self.page_size, "no such frame")
        return frame * self.page_size

    def frame_view(self, frame: int) -> memoryview:
        """A writable view of an entire frame (same loan rules as :meth:`view`)."""
        return self.view(self.frame_base(frame), self.page_size)

    def read_frame(self, frame: int) -> bytes:
        """Read an entire frame."""
        return self.read(self.frame_base(frame), self.page_size)

    def write_frame(self, frame: int, data: "bytes | bytearray | memoryview") -> None:
        """Overwrite an entire frame (data must be exactly one page)."""
        if len(data) != self.page_size:
            raise ValueError(
                f"frame write must be exactly {self.page_size} bytes, "
                f"got {len(data)}"
            )
        self.write(self.frame_base(frame), data)

    def zero_frame(self, frame: int) -> None:
        """Fill a frame with zero bytes (fresh-page semantics)."""
        base = self.frame_base(frame)
        self._mv[base : base + self.page_size] = bytes(self.page_size)

    # ------------------------------------------------------------ internal
    def _check_range(self, paddr: int, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"negative length {nbytes}")
        if paddr < 0 or paddr + nbytes > self.size:
            raise AddressError(paddr, f"{nbytes}-byte access exceeds RAM size {self.size:#x}")
