"""The SHRIMP network substrate (section 8).

* :mod:`repro.net.packet` -- packet header/payload encoding.
* :mod:`repro.net.fifo` -- the outgoing/incoming FIFOs of Figure 6.
* :mod:`repro.net.nipt` -- the Network Interface Page Table.
* :mod:`repro.net.interconnect` -- the routing backplane.
* :mod:`repro.net.nic` -- the SHRIMP network interface, a UDMA device
  implementing deliberate update (plus the automatic-update extension).
* :mod:`repro.net.reliable` -- the optional ack/retransmit transport
  (off by default; the paper's backplane never drops packets).
"""

from repro.net.fifo import BoundedFifo
from repro.net.interconnect import Interconnect
from repro.net.nipt import NetworkInterfacePageTable, NiptEntry
from repro.net.nic import ShrimpNic
from repro.net.packet import Packet
from repro.net.reliable import ReliabilityConfig, ReliabilityPlane

__all__ = [
    "BoundedFifo",
    "Interconnect",
    "NetworkInterfacePageTable",
    "NiptEntry",
    "Packet",
    "ReliabilityConfig",
    "ReliabilityPlane",
    "ShrimpNic",
]
