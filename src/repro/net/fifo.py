"""Bounded byte-accounted FIFOs (the Outgoing/Incoming FIFOs of Figure 6)."""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Optional, TypeVar

from repro.errors import ConfigurationError, NetworkError
from repro.snapshot.protocol import SnapshotMixin

T = TypeVar("T")


class BoundedFifo(SnapshotMixin, Generic[T]):
    """A FIFO of items with a byte budget.

    Items must expose a ``wire_bytes`` attribute (packets do); plain
    byte-strings are also accepted and use their length.
    """

    def __init__(self, capacity_bytes: int, name: str = "fifo") -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError(
                f"{name}: capacity must be positive, got {capacity_bytes}"
            )
        self.capacity_bytes = capacity_bytes
        self.name = name
        self._items: Deque[T] = deque()
        # Sizes are computed once at push and remembered (parallel deque),
        # so pop never re-measures an item -- packets compute wire_bytes
        # lazily and FIFO churn is on the per-packet hot path.
        self._item_sizes: Deque[int] = deque()
        self.used_bytes = 0
        self.high_water = 0
        self.overruns = 0

    @staticmethod
    def _size(item: object) -> int:
        size = getattr(item, "wire_bytes", None)
        if size is None:
            size = len(item)  # type: ignore[arg-type]
        return int(size)

    def can_accept(self, item: T) -> bool:
        """True if pushing ``item`` would not overflow."""
        return self.used_bytes + self._size(item) <= self.capacity_bytes

    def push(self, item: T) -> None:
        """Append an item; raises :class:`NetworkError` on overflow."""
        size = self._size(item)
        if self.used_bytes + size > self.capacity_bytes:
            self.overruns += 1
            raise NetworkError(
                f"{self.name}: overflow pushing {size} bytes "
                f"({self.used_bytes}/{self.capacity_bytes} used)"
            )
        self._items.append(item)
        self._item_sizes.append(size)
        self.used_bytes += size
        if self.used_bytes > self.high_water:
            self.high_water = self.used_bytes

    def pop(self) -> T:
        """Remove and return the head item."""
        if not self._items:
            raise NetworkError(f"{self.name}: pop from empty FIFO")
        item = self._items.popleft()
        self.used_bytes -= self._item_sizes.popleft()
        return item

    def peek(self) -> Optional[T]:
        """The head item without removing it, or None."""
        return self._items[0] if self._items else None

    @property
    def empty(self) -> bool:
        return not self._items

    def __len__(self) -> int:
        return len(self._items)
