"""The routing backplane connecting SHRIMP nodes.

The real machine used an Intel Paragon routing backplane.  We model the
essentials: nodes live on a linear array of routers, a packet pays a
per-hop routing latency proportional to the Manhattan distance, and
delivery hands the encoded packet to the destination NIC's incoming FIFO.
Link serialisation is the *sender's* job (the NIC owns its wire), so the
backplane adds latency, not bandwidth limits.

Packets are normally carried as :class:`~repro.net.packet.Packet` objects
-- the zero-copy fast path, where the only per-byte work of a whole wire
transit is the receive DMA's single copy into destination physical memory.
When a fault injector is installed the packet is serialised to wire bytes
first, corrupted, and decoded -- checksum and all -- at the receiver, so
corruption injected by tests is detected where real hardware would detect
it.  Raw wire bytes handed directly to :meth:`Interconnect.route` follow
the same decode path.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from repro.errors import ConfigurationError, NetworkError
from repro.net.packet import Packet
from repro.params import CostModel
from repro.sim.clock import Clock
from repro.sim.trace import NULL_TRACER, Tracer

#: what the backplane can carry: a packet object or encoded wire bytes
Wire = Union[Packet, bytes]


class Interconnect:
    """The backplane: routes encoded packets between registered NICs."""

    def __init__(
        self,
        clock: Clock,
        costs: CostModel,
        tracer: Tracer = NULL_TRACER,
        topology: str = "linear",
        mesh_width: int = 0,
    ) -> None:
        """``topology`` is ``"linear"`` (a row of routers) or ``"mesh2d"``
        (the Paragon's 2D mesh, dimension-ordered routing); for mesh2d,
        ``mesh_width`` gives the number of columns (0 = square-ish,
        derived from the registered node count at routing time)."""
        if topology not in ("linear", "mesh2d"):
            raise ConfigurationError(f"unknown topology {topology!r}")
        self.clock = clock
        self.costs = costs
        self.tracer = tracer
        self.topology = topology
        self.mesh_width = mesh_width
        self._nics: Dict[int, "ReceiverPort"] = {}
        # Span tracker when the owning cluster traces spans (repro.obs).
        self._spans = None
        self.packets_routed = 0
        self.bytes_routed = 0
        self.packets_dropped = 0
        #: optional fault injector: wire bytes -> corrupted bytes, ``None``
        #: (the packet is dropped by the backplane), or a list of wire
        #: byte strings (each delivered in order -- duplication, and, with
        #: a stateful injector that holds packets back, reordering; list
        #: entries may themselves be ``None`` to drop just that copy)
        self.fault_injector: Optional[
            Callable[[bytes], "bytes | None | list[bytes | None]"]
        ] = None

    def register(self, node_id: int, port: "ReceiverPort") -> None:
        """Attach a node's NIC receive port."""
        if node_id in self._nics:
            raise ConfigurationError(f"node {node_id} already registered")
        self._nics[node_id] = port

    def hops(self, src_node: int, dst_node: int) -> int:
        """Routing distance under the configured topology (minimum 1).

        Linear: a row of routers, distance = |src - dst|.  Mesh2d:
        dimension-ordered (X then Y) routing on a ``mesh_width``-column
        grid, the Paragon backplane's scheme.
        """
        if self.topology == "linear":
            return max(1, abs(src_node - dst_node))
        width = self.mesh_width
        if width <= 0:
            count = max(len(self._nics), 1)
            width = max(1, int(count ** 0.5))
        sx, sy = src_node % width, src_node // width
        dx, dy = dst_node % width, dst_node // width
        return max(1, abs(sx - dx) + abs(sy - dy))

    def route(self, src_node: int, dst_node: int, wire: Wire) -> None:
        """Inject a packet (object or wire bytes); delivery after routing delay.

        Packet objects ride the backplane as-is -- no serialisation, no
        copy.  A configured fault injector forces the bytes path so it can
        flip real wire bits.
        """
        if dst_node not in self._nics:
            raise NetworkError(f"no node {dst_node} on the backplane")
        if self.fault_injector is not None:
            if isinstance(wire, Packet):
                wire = wire.encode()
            produced = self.fault_injector(wire)
            # Normalise the injector's output to a list of copies; every
            # copy -- including a dropped one (``None``) -- goes through
            # ``_route_one``, the single place where drop and routing
            # counters are charged.  An injector that duplicates *and*
            # drops therefore charges each copy exactly once.
            pieces = (
                produced if isinstance(produced, (list, tuple)) else [produced]
            )
            for piece in pieces:
                self._route_one(src_node, dst_node, piece)
            return
        self._route_one(src_node, dst_node, wire)

    def _route_one(
        self, src_node: int, dst_node: int, wire: Optional[Wire]
    ) -> None:
        """Deliver one (possibly injector-produced) packet after routing delay.

        ``None`` means the fault injector dropped this copy: the drop is
        counted and traced here -- and only here -- so single-drop and
        drop-within-a-list injector outputs are charged identically.
        """
        if wire is None:
            self.packets_dropped += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    self.clock.now, "net", "drop", src=src_node, dst=dst_node
                )
            return
        nbytes = wire.wire_bytes if isinstance(wire, Packet) else len(wire)
        delay = self.hops(src_node, dst_node) * self.costs.hop_cycles
        self.packets_routed += 1
        self.bytes_routed += nbytes
        port = self._nics[dst_node]
        if (
            self._spans is not None
            and isinstance(wire, Packet)
            and wire.span is not None
        ):
            self._spans.event(
                wire.span, "route", src=src_node, dst=dst_node, delay=delay
            )
        if self.tracer.enabled:
            self.tracer.emit(
                self.clock.now,
                "net",
                "route",
                src=src_node,
                dst=dst_node,
                bytes=nbytes,
                delay=delay,
            )
        self.clock.schedule(delay, lambda: port.deliver(wire))

    @property
    def node_ids(self) -> "list[int]":
        """All registered node ids."""
        return sorted(self._nics)


class ReceiverPort:
    """Protocol-ish base for things the backplane can deliver to."""

    def deliver(self, wire: Wire) -> None:  # pragma: no cover - interface
        raise NotImplementedError
