"""The routing backplane connecting SHRIMP nodes.

The real machine used an Intel Paragon routing backplane.  We model the
essentials: nodes live on a linear array of routers, a packet pays a
per-hop routing latency proportional to the Manhattan distance, and
delivery hands the encoded packet to the destination NIC's incoming FIFO.
Link serialisation is the *sender's* job (the NIC owns its wire), so the
backplane adds latency, not bandwidth limits.

Packets are normally carried as :class:`~repro.net.packet.Packet` objects
-- the zero-copy fast path, where the only per-byte work of a whole wire
transit is the receive DMA's single copy into destination physical memory.
When a fault injector is installed the packet is serialised to wire bytes
first, corrupted, and decoded -- checksum and all -- at the receiver, so
corruption injected by tests is detected where real hardware would detect
it.  Raw wire bytes handed directly to :meth:`Interconnect.route` follow
the same decode path.
"""

from __future__ import annotations

import math
from functools import partial
from typing import Callable, Dict, Optional, Union

from repro.errors import ConfigurationError, NetworkError
from repro.net.packet import Packet
from repro.params import CostModel
from repro.sim.clock import Clock
from repro.sim.trace import NULL_TRACER, Tracer

#: what the backplane can carry: a packet object or encoded wire bytes
Wire = Union[Packet, bytes]


class Interconnect:
    """The backplane: routes encoded packets between registered NICs."""

    def __init__(
        self,
        clock: Clock,
        costs: CostModel,
        tracer: Tracer = NULL_TRACER,
        topology: str = "linear",
        mesh_width: int = 0,
    ) -> None:
        """``topology`` is ``"linear"`` (a row of routers), ``"mesh2d"``
        (the Paragon's 2D mesh, dimension-ordered routing) or
        ``"torus2d"`` (the mesh with wraparound links in both
        dimensions); for the 2D topologies, ``mesh_width`` gives the
        number of columns (0 = square, derived from the node count --
        see :meth:`validate_topology`)."""
        if topology not in ("linear", "mesh2d", "torus2d"):
            raise ConfigurationError(f"unknown topology {topology!r}")
        self.clock = clock
        self.costs = costs
        self.tracer = tracer
        self.topology = topology
        self.mesh_width = mesh_width
        #: rows of the 2D grid; pinned by :meth:`validate_topology`,
        #: otherwise derived from the registered node count on demand
        self._mesh_height: Optional[int] = None
        self._nics: Dict[int, "ReceiverPort"] = {}
        # Span tracker when the owning cluster traces spans (repro.obs).
        self._spans = None
        #: per-backplane packet/payload free lists (one per shard in the
        #: sharded kernel); ``None`` = pooling off, NICs allocate fresh
        self.packet_pool = None
        #: (src, dst) -> routing delay; topology and hop cost are fixed
        #: once nodes register, so the product is memoised per pair
        self._delay_cache: Dict["tuple[int, int]", int] = {}
        self.packets_routed = 0
        self.bytes_routed = 0
        self.packets_dropped = 0
        #: optional fault injector: wire bytes -> corrupted bytes, ``None``
        #: (the packet is dropped by the backplane), or a list of wire
        #: byte strings (each delivered in order -- duplication, and, with
        #: a stateful injector that holds packets back, reordering; list
        #: entries may themselves be ``None`` to drop just that copy)
        self.fault_injector: Optional[
            Callable[[bytes], "bytes | None | list[bytes | None]"]
        ] = None

    def register(self, node_id: int, port: "ReceiverPort") -> None:
        """Attach a node's NIC receive port."""
        if node_id in self._nics:
            raise ConfigurationError(f"node {node_id} already registered")
        self._nics[node_id] = port
        # Grid dimensions may be derived from the node count until
        # validate_topology pins them, so memoised distances go stale.
        self._delay_cache.clear()

    def validate_topology(self, num_nodes: int) -> None:
        """Check ``num_nodes`` fits the configured topology; pin the grid.

        The 2D topologies require a full rectangle: with ``mesh_width``
        given, ``num_nodes`` must be an exact multiple of it; with
        ``mesh_width == 0`` the grid is square and ``num_nodes`` must be
        a perfect square.  Rejections name the nearest valid node counts
        so a mis-sized cluster is a one-line fix.  On success the derived
        width/height are pinned, which also fixes the torus wraparound
        before any NIC registers.
        """
        if num_nodes < 1:
            raise ConfigurationError(
                f"a cluster needs at least one node, got {num_nodes}"
            )
        if self.topology == "linear":
            return
        width = self.mesh_width
        if width > 0:
            if num_nodes % width != 0:
                below = width * (num_nodes // width)
                above = below + width
                nearest = [
                    f"{n} nodes ({width}x{n // width})"
                    for n in (below, above)
                    if n > 0
                ]
                raise ConfigurationError(
                    f"{self.topology} with mesh_width={width} needs a full "
                    f"rectangle of nodes; {num_nodes} leaves a ragged last "
                    f"row (nearest valid: {' or '.join(nearest)})"
                )
            height = num_nodes // width
        else:
            root = math.isqrt(num_nodes)
            if root * root != num_nodes:
                below, above = root * root, (root + 1) * (root + 1)
                nearest = [
                    f"{n} nodes ({r}x{r})"
                    for n, r in ((below, root), (above, root + 1))
                    if n > 0
                ]
                raise ConfigurationError(
                    f"{self.topology} without mesh_width needs a square "
                    f"node count; got {num_nodes} "
                    f"(nearest valid: {' or '.join(nearest)})"
                )
            width = height = root
        self.mesh_width = width
        self._mesh_height = height
        self._delay_cache.clear()

    def _grid_dims(self) -> "tuple[int, int]":
        """(columns, rows) of the 2D grid, derived if not yet validated."""
        width = self.mesh_width
        if width <= 0:
            count = max(len(self._nics), 1)
            width = max(1, int(count ** 0.5))
        height = self._mesh_height
        if height is None or height <= 0:
            count = max(len(self._nics), 1)
            height = max(1, -(-count // width))
        return width, height

    def hops(self, src_node: int, dst_node: int) -> int:
        """Routing distance under the configured topology (minimum 1).

        Linear: a row of routers, distance = |src - dst|.  Mesh2d:
        dimension-ordered (X then Y) routing on a ``mesh_width``-column
        grid, the Paragon backplane's scheme.  Torus2d: the same grid
        with wraparound links, so each per-dimension distance is the
        shorter way around the ring.
        """
        if self.topology == "linear":
            return max(1, abs(src_node - dst_node))
        width, height = self._grid_dims()
        sx, sy = src_node % width, src_node // width
        dx, dy = dst_node % width, dst_node // width
        ddx, ddy = abs(sx - dx), abs(sy - dy)
        if self.topology == "torus2d":
            ddx = min(ddx, width - ddx)
            ddy = min(ddy, height - ddy)
        return max(1, ddx + ddy)

    def route_path(self, src_node: int, dst_node: int) -> "list[int]":
        """The node ids a packet visits after ``src_node``, in hop order.

        Dimension-ordered: the packet first corrects X (choosing the
        shorter ring direction on a torus, ties broken toward +X), then
        Y.  Purely diagnostic -- latency uses :meth:`hops` -- but it
        pins down the routing scheme for tests and docs.
        """
        if self.topology == "linear":
            if src_node == dst_node:
                return [dst_node]
            step = 1 if dst_node > src_node else -1
            return list(range(src_node + step, dst_node + step, step))
        width, height = self._grid_dims()
        torus = self.topology == "torus2d"

        def _toward(cur: int, target: int, size: int) -> int:
            if not torus:
                return 1 if target > cur else -1
            forward = (target - cur) % size
            backward = (cur - target) % size
            return 1 if forward <= backward else -1

        x, y = src_node % width, src_node // width
        tx, ty = dst_node % width, dst_node // width
        path = []
        while x != tx:
            x = (x + _toward(x, tx, width)) % width if torus else x + _toward(
                x, tx, width
            )
            path.append(y * width + x)
        while y != ty:
            y = (y + _toward(y, ty, height)) % height if torus else y + _toward(
                y, ty, height
            )
            path.append(y * width + x)
        return path or [dst_node]

    def route(self, src_node: int, dst_node: int, wire: Wire) -> None:
        """Inject a packet (object or wire bytes); delivery after routing delay.

        Packet objects ride the backplane as-is -- no serialisation, no
        copy.  A configured fault injector forces the bytes path so it can
        flip real wire bits.
        """
        if dst_node not in self._nics:
            raise NetworkError(f"no node {dst_node} on the backplane")
        if self.fault_injector is not None:
            if isinstance(wire, Packet):
                wire = wire.encode()
            produced = self.fault_injector(wire)
            # Normalise the injector's output to a list of copies; every
            # copy -- including a dropped one (``None``) -- goes through
            # ``_route_one``, the single place where drop and routing
            # counters are charged.  An injector that duplicates *and*
            # drops therefore charges each copy exactly once.
            pieces = (
                produced if isinstance(produced, (list, tuple)) else [produced]
            )
            for piece in pieces:
                self._route_one(src_node, dst_node, piece)
            return
        self._route_one(src_node, dst_node, wire)

    def _route_one(
        self, src_node: int, dst_node: int, wire: Optional[Wire]
    ) -> None:
        """Deliver one (possibly injector-produced) packet after routing delay.

        ``None`` means the fault injector dropped this copy: the drop is
        counted and traced here -- and only here -- so single-drop and
        drop-within-a-list injector outputs are charged identically.
        """
        if wire is None:
            self.packets_dropped += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    self.clock.now, "net", "drop", src=src_node, dst=dst_node
                )
            return
        nbytes = wire.wire_bytes if isinstance(wire, Packet) else len(wire)
        pair = (src_node, dst_node)
        delay = self._delay_cache.get(pair)
        if delay is None:
            delay = self.hops(src_node, dst_node) * self.costs.hop_cycles
            self._delay_cache[pair] = delay
        self.packets_routed += 1
        self.bytes_routed += nbytes
        port = self._nics[dst_node]
        if (
            self._spans is not None
            and isinstance(wire, Packet)
            and wire.span is not None
        ):
            self._spans.event(
                wire.span, "route", src=src_node, dst=dst_node, delay=delay
            )
        if self.tracer.enabled:
            self.tracer.emit(
                self.clock.now,
                "net",
                "route",
                src=src_node,
                dst=dst_node,
                bytes=nbytes,
                delay=delay,
            )
        # partial (not a lambda): delivery events must survive
        # snapshot/restore, and partials of bound methods pickle cleanly.
        self.clock.schedule(delay, partial(port.deliver, wire))

    @property
    def node_ids(self) -> "list[int]":
        """All registered node ids."""
        return sorted(self._nics)


class ReceiverPort:
    """Protocol-ish base for things the backplane can deliver to."""

    def deliver(self, wire: Wire) -> None:  # pragma: no cover - interface
        raise NotImplementedError
