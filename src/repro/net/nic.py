"""The SHRIMP network interface (Figure 6), as a UDMA device.

Send path ("deliberate update"):

1. A user process initiates a UDMA transfer from memory to the NIC's
   device-proxy window.  The proxy page number indexes the NIPT; the
   in-page offset is carried to the destination ("the offset is combined
   with that page to form a remote physical memory address").
2. The DMA engine bursts the data over the I/O bus into the outgoing
   FIFO (this is the engine's transfer; the NIC's :meth:`dma_write` is the
   FIFO-side landing point).
3. The packetizing block builds a header and launches the packet onto the
   wire; the wire serialises packets one at a time, which is what lets a
   *subsequent* UDMA initiation overlap the previous packet's drain --
   the effect behind the Figure 8 curve's shape.
4. The backplane routes the packet; the receiving NIC's unpacking/checking
   block verifies it and the receive-side DMA writes the payload directly
   into physical memory ("at the receiving node, packet data is
   transferred directly to physical memory by the EISA DMA logic").

The NIC is send-only as a UDMA device, exactly like the real SHRIMP board:
"SHRIMP uses UDMA only for memory-to-device transfers".

The **automatic update** strategy of the earlier SHRIMP design (kept in
the final hardware, section 9) is implemented as an optional snooper:
stores to bound local pages are forwarded word-by-word to a fixed remote
page.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.devices.base import ERR_DEVICE_BASE, UDMADevice
from repro.errors import ConfigurationError, NetworkError
from repro.mem.physmem import PhysicalMemory
from repro.net.fifo import BoundedFifo
from repro.net.interconnect import Interconnect, ReceiverPort
from repro.net.nipt import NetworkInterfacePageTable, NiptEntry
from repro.net.packet import Packet, is_virtual, pack_virtual
from repro.params import CostModel
from repro.sim.clock import transfer_cycles

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.iommu import Iommu, ParkedTransfer
    from repro.net.reliable import ReliabilityPlane

#: device-specific error bits (above the standard low bits)
ERR_NO_RECEIVE = ERR_DEVICE_BASE  # NIC cannot be a UDMA source
ERR_NIPT_INVALID = ERR_DEVICE_BASE << 1  # destination page not exported


class ShrimpNic(UDMADevice, ReceiverPort):
    """One node's network interface board."""

    def __init__(
        self,
        node_id: int,
        costs: CostModel,
        physmem: PhysicalMemory,
        nipt_entries: int = 1 << 15,
        fifo_bytes: int = 1 << 20,
        name: Optional[str] = None,
        cut_through: bool = True,
    ) -> None:
        page_size = costs.page_size
        super().__init__(
            name if name is not None else f"nic{node_id}",
            proxy_size=nipt_entries * page_size,
            alignment=4,  # "aligned on 4-byte boundaries"
        )
        self.node_id = node_id
        self.costs = costs
        self.physmem = physmem
        self.page_size = page_size
        #: cut-through (the real SHRIMP pipeline: wire chases the DMA fill,
        #: receive DMA chases the wire) vs store-and-forward (each stage
        #: waits for the whole packet) -- the ablation bench quantifies
        #: what cut-through buys
        self.cut_through = cut_through
        self.nipt = NetworkInterfacePageTable(nipt_entries)
        self.outgoing = BoundedFifo(fifo_bytes, name=f"{self.name}.out")
        self.incoming = BoundedFifo(fifo_bytes, name=f"{self.name}.in")
        self.interconnect: Optional[Interconnect] = None
        # Wire and receive-DMA busy timelines (absolute cycle times).
        self._wire_free_at = 0
        self._rx_free_at = 0
        self._seq = 0
        # Duration memos: messaging workloads use a handful of distinct
        # sizes, so ceil-division per packet is wasted work.
        self._fill_cycles: Dict[int, int] = {}
        self._wire_cycles: Dict[int, int] = {}
        #: ack/retransmit transport (:mod:`repro.net.reliable`); ``None``
        #: keeps the NIC exactly as fast -- and exactly as lossy -- as the
        #: paper's hardware
        self.reliability: Optional["ReliabilityPlane"] = None
        #: the receive-side IOMMU (:mod:`repro.iommu`); ``None`` keeps the
        #: receive DMA writing resolved physical addresses, exactly the
        #: paper's EISA DMA logic
        self.iommu: Optional["Iommu"] = None
        # Automatic-update bindings: local physical page -> NIPT index.
        self._automatic: Dict[int, int] = {}
        # Metrics and measurement hooks.
        self.packets_sent = 0
        self.packets_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.rx_errors = 0
        self.last_wire_done = 0
        self.last_delivery_done = 0
        self.on_receive: List[Callable[[Packet], None]] = []

    # ------------------------------------------------------------- wiring
    def connect(self, interconnect: Interconnect) -> None:
        """Plug the NIC into the backplane."""
        if self.interconnect is not None:
            raise ConfigurationError(f"{self.name} is already connected")
        self.interconnect = interconnect
        interconnect.register(self.node_id, self)

    def enable_reliability(self, plane: "ReliabilityPlane") -> None:
        """Join an ack/retransmit transport plane (shared per backplane)."""
        self.reliability = plane

    def attach_iommu(self, iommu: "Iommu") -> None:
        """Put the node's IOMMU in front of this NIC's receive DMA."""
        self.iommu = iommu

    # ----------------------------------------------------- UDMA device side
    def physical_errors(self, as_source: bool, offset: int, nbytes: int) -> int:
        errors = super().check_transfer(as_source, offset, nbytes)
        if as_source:
            # The SHRIMP NIC is a UDMA destination only.
            errors |= ERR_NO_RECEIVE
        return errors

    def check_transfer(self, as_source: bool, offset: int, nbytes: int) -> int:
        errors = self.physical_errors(as_source, offset, nbytes)
        if as_source:
            return errors
        # The protection half: a destination page is sendable only while
        # its NIPT entry is valid.  Alternative backends substitute their
        # own verdict for this lookup (see repro.protection).
        if self.nipt.lookup(offset // self.page_size) is None:
            errors |= ERR_NIPT_INVALID
        return errors

    def dma_read(self, offset: int, nbytes: int) -> bytes:
        raise NetworkError(
            f"{self.name}: device-to-memory UDMA is not supported by the "
            "SHRIMP network interface"
        )

    def dma_write(self, offset: int, data: bytes) -> None:
        """DMA fill landed in the outgoing FIFO: packetise and launch.

        The engine raises this at fill *completion*; the real hardware
        streamed cut-through, with packetizing chasing the fill through
        the outgoing FIFO.  We reconstruct the fill start from the cost
        model and schedule the wire as if transmission began one header
        time after the fill began -- so only a short wire tail (the FIFO
        flush) remains after the fill completes.

        ``data`` is typically a borrowed :class:`memoryview` of the
        sender's physical memory; ``bytes(data)`` below is the packetizer
        snapshot -- the *one* send-side copy, after which the sender may
        reuse its buffer while the packet is still in flight.
        """
        if self.clock is None or self.interconnect is None:
            raise ConfigurationError(f"{self.name} is not attached/connected")
        index = offset // self.page_size
        entry = self.nipt.require(index)
        dst_paddr = self._entry_dst(entry, offset % self.page_size)
        pkt_span = None
        if self._spans is not None and self._spans.current_data_span is not None:
            # The engine publishes the transfer span whose data this is;
            # the packet's life becomes a child of that transfer.
            pkt_span = self._spans.begin(
                "packet",
                parent=self._spans.current_data_span,
                src=self.node_id,
                dst=entry.dst_node,
                bytes=len(data),
            )
        pool = self.interconnect.packet_pool
        if pool is not None and pkt_span is None and self.reliability is None:
            # Fast lane: recycled packet shell + payload buffer.  Skipped
            # whenever something downstream may retain the packet past
            # delivery (spans, reliability), so recycling is always safe.
            packet = pool.acquire(
                self.node_id,
                entry.dst_node,
                dst_paddr,
                data,
                self._next_seq(entry.dst_node),
            )
        else:
            packet = Packet(
                src_node=self.node_id,
                dst_node=entry.dst_node,
                dst_paddr=dst_paddr,
                payload=bytes(data),
                seq=self._next_seq(entry.dst_node),
                span=pkt_span,
            )
        self.outgoing.push(packet)
        nbytes = len(data)
        fill_duration = self._fill_cycles.get(nbytes)
        if fill_duration is None:
            fill_duration = self.costs.dma_start_cycles + transfer_cycles(
                nbytes, self.costs.dma_bytes_per_cycle
            )
            self._fill_cycles[nbytes] = fill_duration
        self._launch(packet, fill_start=self.clock.now - fill_duration)

    def _entry_dst(self, entry: NiptEntry, in_page: int) -> int:
        """Destination word for one NIPT entry + in-page byte offset.

        A physical entry resolves to the destination physical address,
        exactly the paper's header word.  A *virtual* entry (the IOMMU
        tier) encodes (asid, virtual address) into the same 64-bit word
        -- see :mod:`repro.net.packet` -- leaving the wire format and
        every timing property byte-identical.
        """
        if entry.virtual:
            return pack_virtual(
                entry.dst_asid, entry.dst_page * self.page_size + in_page
            )
        return entry.dst_page * self.page_size + in_page

    # ------------------------------------------------------------ send path
    def _launch(self, packet: Packet, fill_start: Optional[int] = None) -> None:
        """Serialise the packet onto the wire (cut-through when filling).

        ``fill_start`` is when the DMA fill of this packet began; the wire
        starts one header time after that (or when it frees up), and in
        any case finishes no earlier than ``wire_flush_cycles`` from now
        (the fill has just completed "now").
        """
        assert self.clock is not None
        if self.cut_through and fill_start is not None:
            begin = fill_start
        else:
            begin = self.clock.now  # store-and-forward: wait for full fill
        wire_start = max(begin + self.costs.packet_header_cycles, self._wire_free_at)
        wire_bytes = packet.wire_bytes
        wire_duration = self._wire_cycles.get(wire_bytes)
        if wire_duration is None:
            wire_duration = transfer_cycles(
                wire_bytes, self.costs.wire_bytes_per_cycle
            )
            self._wire_cycles[wire_bytes] = wire_duration
        done = max(
            wire_start + wire_duration,
            self.clock.now + self.costs.wire_flush_cycles,
        )
        self._wire_free_at = done
        self.last_wire_done = done
        self.clock.schedule_at(done, self._wire_complete)

    def _wire_complete(self) -> None:
        assert self.clock is not None and self.interconnect is not None
        packet = self.outgoing.pop()
        self.packets_sent += 1
        self.bytes_sent += len(packet.payload)
        if self._spans is not None:
            self._spans.event(packet.span, "wire-tx", seq=packet.seq)
        if self.tracer.enabled:
            self.tracer.emit(
                self.clock.now,
                self.name,
                "packet-tx",
                dst=packet.dst_node,
                paddr=f"{packet.dst_paddr:#x}",
                bytes=len(packet.payload),
                seq=packet.seq,
            )
        if self.reliability is not None:
            # Track the packet and arm its retransmit timer only once it
            # has actually cleared the wire (retransmissions re-enter here
            # too, re-arming with backoff).
            self.reliability.on_transmit(self, packet)
        # Zero-copy transit: hand the packet object to the backplane; wire
        # bytes are only materialised if a fault injector must see them.
        self.interconnect.route(self.node_id, packet.dst_node, packet)

    def retransmit(self, packet: Packet) -> None:
        """Re-launch an unacknowledged packet through the ordinary wire path.

        Called by the reliability plane's timeout handler; the retry pays
        full store-and-forward wire occupancy (the outgoing FIFO holds it
        again until the wire frees up), so retransmissions contend with
        fresh traffic exactly like the real firmware's would.
        """
        self.outgoing.push(packet)
        self._launch(packet)

    # --------------------------------------------------------- receive path
    def deliver(self, wire: "bytes | Packet") -> None:
        """Backplane delivery into the incoming FIFO (unpack + check).

        ``wire`` is either a :class:`Packet` object (the zero-copy fast
        path -- structurally intact by construction, so the Checking block
        has nothing to reject) or raw wire bytes (the fault-injection /
        interop path, decoded and checksummed here).
        """
        assert self.clock is not None
        if isinstance(wire, Packet):
            packet = wire
        else:
            try:
                packet = Packet.decode(wire)
            except NetworkError:
                self.rx_errors += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        self.clock.now, self.name, "rx-error", bytes=len(wire)
                    )
                return
        if packet.is_ack:
            # ACKs are the reliability transport's control traffic: the
            # unpacking block consumes them on the spot; they never enter
            # the incoming FIFO or occupy the receive DMA.
            if self.reliability is None:
                self.rx_errors += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        self.clock.now,
                        self.name,
                        "rx-unexpected-ack",
                        src=packet.src_node,
                    )
                return
            self.reliability.on_ack(self, packet)
            return
        if (
            not (self.iommu is not None and is_virtual(packet.dst_paddr))
            and packet.dst_paddr + len(packet.payload) > self.physmem.size
        ):
            # The EISA DMA logic refuses to scribble outside RAM.  A tagged
            # virtual destination (bit 63) is deferred to the IOMMU at
            # delivery time -- unless this node has no IOMMU, in which case
            # the huge raw word is refused right here, the correct
            # behaviour for a mis-routed virtual packet.
            self.rx_errors += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    self.clock.now,
                    self.name,
                    "rx-bad-paddr",
                    paddr=f"{packet.dst_paddr:#x}",
                )
            return
        if self.reliability is not None:
            # The transport filters duplicates and re-sequences; whatever
            # it releases is in strict per-channel order.
            for accepted in self.reliability.on_data(self, packet):
                self._accept(accepted)
            return
        self._accept(packet)

    def _accept(self, packet: Packet) -> None:
        """Queue one checked packet for the receive-side DMA."""
        assert self.clock is not None
        self.incoming.push(packet)
        if self.cut_through:
            # The receive DMA streams cut-through behind the wire (it is
            # faster than the wire, so it is never the bottleneck); a packet
            # adds only the fixed unpack/check/flush tail after its last
            # byte arrives.
            done = max(self.clock.now, self._rx_free_at) + self.costs.rx_check_cycles
        else:
            # Store-and-forward: the whole payload is re-clocked through
            # the receive DMA after arrival.
            done = (
                max(self.clock.now, self._rx_free_at)
                + self.costs.rx_check_cycles
                + transfer_cycles(
                    len(packet.payload), self.costs.rx_dma_bytes_per_cycle
                )
            )
        self._rx_free_at = done
        self.clock.schedule_at(done, self._rx_dma_complete)

    def _rx_dma_complete(self) -> None:
        assert self.clock is not None
        packet = self.incoming.pop()
        if self.iommu is not None and is_virtual(packet.dst_paddr):
            verdict = self.iommu.receive(self, packet)
            if verdict.stall:
                # Translation (IOTLB hit or walk) occupies the receive DMA.
                self._rx_free_at = max(
                    self._rx_free_at, self.clock.now + verdict.stall
                )
            if verdict.kind == "deliver":
                self._rx_deliver(packet, verdict.paddr)
            elif verdict.kind == "park":
                # The IOMMU snapshotted the payload (and retained the
                # packet object if spans/reliability/hooks need it back at
                # replay); a pooled shell can go home now.
                if packet._pooled and not self.on_receive:
                    self._release_pooled(packet)
            else:  # abort: degrade to the classic refusal
                self.rx_errors += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        self.clock.now,
                        self.name,
                        "rx-iommu-abort",
                        reason=verdict.reason,
                        src=packet.src_node,
                        seq=packet.seq,
                    )
                if packet._pooled and not self.on_receive:
                    self._release_pooled(packet)
            return
        self._rx_deliver(packet, packet.dst_paddr)

    def _rx_deliver(self, packet: Packet, dst_paddr: int) -> None:
        """Land one packet's payload at its resolved physical address."""
        assert self.clock is not None
        self.physmem.write(dst_paddr, packet.payload)
        self.packets_received += 1
        self.bytes_received += len(packet.payload)
        self.last_delivery_done = self.clock.now
        if self._spans is not None:
            # Cluster nodes share one tracker, so the receiving NIC can
            # close the span the sending NIC opened.
            self._spans.finish(
                packet.span, status="delivered", paddr=f"{dst_paddr:#x}"
            )
        if self.tracer.enabled:
            self.tracer.emit(
                self.clock.now,
                self.name,
                "packet-rx",
                src=packet.src_node,
                paddr=f"{dst_paddr:#x}",
                bytes=len(packet.payload),
                seq=packet.seq,
            )
        for hook in self.on_receive:
            hook(packet)
        if self.reliability is not None:
            # Acknowledge only after the data is safely in memory.
            self.reliability.on_delivered(self, packet)
        elif packet._pooled and not self.on_receive:
            # Delivered and nothing downstream retains it: recycle.  The
            # receiving backplane is the one that lent the packet (pools
            # are per-backplane, per-shard), so the shell goes home.
            self._release_pooled(packet)

    def _release_pooled(self, packet: Packet) -> None:
        pool = (
            self.interconnect.packet_pool
            if self.interconnect is not None
            else None
        )
        if pool is not None:
            pool.release(packet)

    # ----------------------------------------------- fault-and-resume hooks
    def complete_parked(self, parked: "ParkedTransfer", dst_paddr: int) -> None:
        """Replay one parked transfer at its now-resident destination.

        Called by the IOMMU's replay path with the resolved physical
        address; performs exactly the accounting a direct delivery would,
        so delivered-vs-sent ledgers hold with or without faults.
        """
        assert self.clock is not None
        self.physmem.write(dst_paddr, parked.payload)
        self.packets_received += 1
        self.bytes_received += len(parked.payload)
        self.last_delivery_done = self.clock.now
        if self._spans is not None:
            self._spans.finish(
                parked.span, status="delivered", paddr=f"{dst_paddr:#x}"
            )
        if self.tracer.enabled:
            self.tracer.emit(
                self.clock.now,
                self.name,
                "packet-rx-replay",
                src=parked.src_node,
                paddr=f"{dst_paddr:#x}",
                bytes=len(parked.payload),
                seq=parked.seq,
            )
        packet = parked.packet
        if packet is None and (self.on_receive or self.reliability is not None):
            packet = Packet(
                src_node=parked.src_node,
                dst_node=self.node_id,
                dst_paddr=parked.dst_word,
                payload=parked.payload,
                seq=parked.seq,
            )
        if packet is not None:
            for hook in self.on_receive:
                hook(packet)
            if self.reliability is not None:
                self.reliability.on_delivered(self, packet)

    def abort_parked(self, parked: "ParkedTransfer", reason: str) -> None:
        """A parked transfer degraded (budget/revocation): classic refusal."""
        assert self.clock is not None
        self.rx_errors += 1
        if self.tracer.enabled:
            self.tracer.emit(
                self.clock.now,
                self.name,
                "rx-iommu-abort",
                reason=reason,
                src=parked.src_node,
                seq=parked.seq,
            )

    # ------------------------------------------------------ automatic update
    def bind_automatic(self, local_page: int, nipt_index: int) -> None:
        """Bind a local physical page for automatic update.

        Subsequent snooped stores to the page are forwarded to the fixed
        remote page named by ``nipt_index`` -- the "fixed mappings between
        source and destination pages" of the automatic update strategy.
        """
        if self.nipt.lookup(nipt_index) is None:
            raise ConfigurationError(
                f"{self.name}: NIPT entry {nipt_index} must be valid before "
                "binding automatic update"
            )
        self._automatic[local_page] = nipt_index

    def unbind_automatic(self, local_page: int) -> None:
        """Remove an automatic-update binding."""
        self._automatic.pop(local_page, None)

    def snoop_store(self, paddr: int, data: bytes) -> None:
        """Bus snooper: forward a store to a bound page (word granularity)."""
        index = self._automatic.get(paddr // self.page_size)
        if index is None:
            return
        entry = self.nipt.require(index)
        dst_paddr = self._entry_dst(entry, paddr % self.page_size)
        packet = Packet(
            src_node=self.node_id,
            dst_node=entry.dst_node,
            dst_paddr=dst_paddr,
            payload=bytes(data),
            seq=self._next_seq(entry.dst_node),
        )
        self.outgoing.push(packet)
        self._launch(packet)

    # ------------------------------------------------------------ internal
    def _next_seq(self, dst_node: int) -> int:
        """Next sequence number for a packet bound for ``dst_node``.

        Reliability off keeps the historical NIC-global counter (the value
        appears in golden traces); the transport needs per-(src,dst)
        channel numbering, so with a plane attached the number comes from
        the channel instead.
        """
        if self.reliability is not None:
            return self.reliability.next_seq(self.node_id, dst_node)
        self._seq += 1
        return self._seq
