"""The Network Interface Page Table (NIPT).

"All potential message destinations are stored in the Network Interface
Page Table, each entry of which specifies a remote node and a physical
memory page on that node. ... The rightmost 15 bits of the page number are
used to index directly into the Network Interface Page Table to obtain a
destination node ID and a destination page number.  ... Since the NIPT is
indexed with 15 bits, it can hold 32K different destination pages"
(section 8).

The NIPT is configured by the operating system (the receive side must
export a page before a sender's OS will install an entry for it); the
hardware only reads it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError, NetworkError
from repro.snapshot.protocol import SnapshotMixin

#: the paper's NIPT size: a 15-bit index
DEFAULT_NIPT_ENTRIES = 1 << 15


@dataclass(frozen=True)
class NiptEntry:
    """One destination: a remote node and a page on it.

    ``dst_page`` is a *physical* frame number in the paper's design.
    Under the virtual-address RDMA tier (``repro.iommu``) an entry may
    instead name a destination address space: ``dst_asid >= 0`` marks the
    entry virtual and ``dst_page`` becomes a virtual page number in that
    ASID, translated by the receiving node's IOMMU at delivery time.
    """

    dst_node: int
    dst_page: int
    #: destination address-space id; -1 (the default) keeps the entry
    #: physical, exactly the paper's NIPT
    dst_asid: int = -1

    @property
    def virtual(self) -> bool:
        """True when this entry names a virtual page (IOMMU tier)."""
        return self.dst_asid >= 0


class NetworkInterfacePageTable(SnapshotMixin):
    """A direct-indexed table of remote destinations."""

    def __init__(self, num_entries: int = DEFAULT_NIPT_ENTRIES) -> None:
        if num_entries <= 0:
            raise ConfigurationError(
                f"NIPT needs a positive entry count, got {num_entries}"
            )
        self.num_entries = num_entries
        self._entries: Dict[int, NiptEntry] = {}
        #: bumped on every OS-side mutation; the send fast lane caches
        #: per-channel lookups keyed on this, so a remap or eviction
        #: invalidates every cached plan in O(1)
        self.generation = 0
        #: host-side observers of OS mutations (protection backends mint
        #: and revoke send capabilities from these); called with
        #: ``(index, installed)`` after the table has been updated
        self._listeners: List[Callable[[int, bool], None]] = []

    def add_listener(self, listener: Callable[[int, bool], None]) -> None:
        """Subscribe to set/clear events (host-side, costs nothing)."""
        self._listeners.append(listener)

    def set_entry(
        self, index: int, dst_node: int, dst_page: int, dst_asid: int = -1
    ) -> None:
        """OS-side: install a destination mapping.

        ``dst_asid >= 0`` installs a *virtual* entry (the IOMMU tier):
        ``dst_page`` is then a virtual page in that remote address space.
        """
        self._check_index(index)
        if dst_node < 0 or dst_page < 0:
            raise ConfigurationError(
                f"NIPT entry must name a real destination, got node {dst_node} "
                f"page {dst_page}"
            )
        self._entries[index] = NiptEntry(dst_node, dst_page, dst_asid)
        self.generation += 1
        for listener in self._listeners:
            listener(index, True)

    def clear_entry(self, index: int) -> None:
        """OS-side: invalidate a destination mapping."""
        self._check_index(index)
        removed = self._entries.pop(index, None)
        self.generation += 1
        if removed is not None:
            for listener in self._listeners:
                listener(index, False)

    def lookup(self, index: int) -> Optional[NiptEntry]:
        """Hardware-side: fetch the destination, or None if invalid."""
        self._check_index(index)
        return self._entries.get(index)

    def require(self, index: int) -> NiptEntry:
        """Hardware-side lookup that treats an invalid entry as an error."""
        entry = self.lookup(index)
        if entry is None:
            raise NetworkError(f"NIPT entry {index} is invalid")
        return entry

    @property
    def valid_entries(self) -> int:
        """Number of installed entries."""
        return len(self._entries)

    def entries(self) -> Iterable[Tuple[int, NiptEntry]]:
        """Installed entries in index order (inspection / snapshots)."""
        return sorted(self._entries.items())

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.num_entries:
            raise ConfigurationError(
                f"NIPT index {index} out of range [0, {self.num_entries})"
            )
