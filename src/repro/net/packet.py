"""Packets on the SHRIMP interconnect.

"Once the destination node ID and destination address are known, the
hardware constructs a packet header.  ...  The SHRIMP hardware assembles
the header and data into a packet, and launches the packet into the
network" (section 8).

The wire format is modelled explicitly (header + payload + checksum) so
the receive side's "Unpacking/Checking" block of Figure 6 has real work to
do and tests can corrupt packets in flight.

Host-side, serialisation is off the hot path: the backplane carries
:class:`Packet` objects end-to-end and only materialises wire bytes when a
fault injector needs to corrupt them (see
:meth:`repro.net.interconnect.Interconnect.route`).  When bytes *are*
needed, :meth:`Packet.encode_into` serialises into a caller-provided
buffer and the checksum runs over whole little-endian words via a
``memoryview`` cast instead of a per-word Python loop.

Two wire kinds share the header layout (and therefore every timing
property): ``data`` packets carry a deliberate-update payload, and
``ack`` packets -- the reliable-delivery extension's cumulative
acknowledgement (see :mod:`repro.net.reliable`) -- carry the highest
in-order sequence number delivered in their ``seq`` field and an empty
payload.  The kind is encoded in the magic word, so the header size is
identical for both and reliability-off traffic is bit-for-bit what it
always was.

The checksum covers the *whole* packet (header and payload): a flipped
bit anywhere -- magic, addresses, sequence number, payload, or the
checksum word itself -- is rejected by the receive-side Checking block.
Header coverage is what lets the reliable layer promise eventual
delivery under arbitrary single-byte corruption: a corrupted sequence
number or destination address can never be silently honoured.
"""

from __future__ import annotations

import struct
import sys
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import NetworkError

#: magic, src node, dst node, dst paddr, length, seq
_HEADER = struct.Struct("<IHHQII")
_MAGIC = 0x53485250  # "SHRP": a deliberate-update data packet
_MAGIC_ACK = 0x53485241  # "SHRA": a cumulative acknowledgement
_MAGIC_BY_KIND = {"data": _MAGIC, "ack": _MAGIC_ACK}
_KIND_BY_MAGIC = {_MAGIC: "data", _MAGIC_ACK: "ack"}

_LITTLE_ENDIAN_HOST = sys.byteorder == "little"

# ----------------------------------------------------- tagged destinations
# The virtual-address RDMA tier (repro.iommu) rides in the header's
# existing 64-bit destination word, so the wire format -- and therefore
# every packet's wire timing -- is byte-identical whether the tier is on
# or off.  Bit 63 flags a virtual destination; bits 48-62 carry the
# destination ASID (15 bits, matching the NIPT's 15-bit index width);
# bits 0-47 carry the destination *virtual* address.  Physical packets
# never set bit 63 (RAM sizes are nowhere near 2^63), so an IOMMU-off
# run produces exactly the historical address words.
VIRT_FLAG = 1 << 63
VIRT_ASID_SHIFT = 48
VIRT_ASID_MASK = (1 << 15) - 1
VIRT_ADDR_MASK = (1 << VIRT_ASID_SHIFT) - 1


def pack_virtual(asid: int, vaddr: int) -> int:
    """Encode (asid, virtual address) into a tagged destination word."""
    if not 0 <= asid <= VIRT_ASID_MASK:
        raise NetworkError(f"ASID {asid} does not fit the tagged-address field")
    if not 0 <= vaddr <= VIRT_ADDR_MASK:
        raise NetworkError(f"vaddr {vaddr:#x} does not fit the tagged-address field")
    return VIRT_FLAG | (asid << VIRT_ASID_SHIFT) | vaddr


def is_virtual(dst_word: int) -> bool:
    """True when a destination word carries a virtual (IOMMU) address."""
    return bool(dst_word & VIRT_FLAG)


def unpack_virtual(dst_word: int) -> "tuple[int, int]":
    """Decode a tagged destination word into (asid, virtual address)."""
    return (dst_word >> VIRT_ASID_SHIFT) & VIRT_ASID_MASK, dst_word & VIRT_ADDR_MASK


def _checksum(payload: "bytes | bytearray | memoryview") -> int:
    """A cheap 32-bit additive checksum over little-endian words.

    The trailing partial word (if any) is zero-padded, matching hardware
    that clocks the last burst with the lanes deasserted.
    """
    mv = memoryview(payload)
    nbytes = len(mv)
    full = nbytes & ~3
    if full and _LITTLE_ENDIAN_HOST:
        # One C-level pass over the word lanes.
        total = sum(mv[:full].cast("I")) & 0xFFFFFFFF
    else:
        total = 0
        for i in range(0, full, 4):
            total = (total + int.from_bytes(mv[i : i + 4], "little")) & 0xFFFFFFFF
    if nbytes > full:
        total = (total + int.from_bytes(mv[full:], "little")) & 0xFFFFFFFF
    return total


@dataclass(frozen=True)
class Packet:
    """One deliberate-update packet.

    The payload is a private snapshot taken when the packet is built (the
    packetizer's copy out of the outgoing FIFO); a packet in flight is
    therefore immune to the sender reusing its buffer.
    """

    src_node: int
    dst_node: int
    dst_paddr: int
    #: private payload snapshot; a pooled packet carries a recycled
    #: ``bytearray`` (same buffer protocol, same equality semantics)
    payload: "bytes | bytearray"
    seq: int = 0
    #: wire kind: ``"data"`` (deliberate update) or ``"ack"`` (cumulative
    #: acknowledgement); encoded in the magic word, so both kinds share
    #: one header size and identical timing.
    kind: str = "data"
    #: trace-only sidecar: the span id this packet belongs to (see
    #: repro.obs).  Deliberately NOT part of the simulated wire format --
    #: encode/decode ignore it, so wire bytes are unchanged and a packet
    #: that round-trips through bytes (fault injection) loses its span,
    #: leaving the span open: exactly the signal a drop should produce.
    span: Optional[int] = field(default=None, compare=False, repr=False)
    #: host-side provenance sidecar: True iff this packet shell belongs to
    #: a :class:`~repro.net.pool.PacketPool` and may be recycled after the
    #: receive DMA lands it.  Not part of the wire format or equality.
    _pooled: bool = field(default=False, compare=False, repr=False)

    HEADER_BYTES = _HEADER.size + 4  # header struct + checksum word

    @property
    def is_ack(self) -> bool:
        """True for cumulative-acknowledgement packets."""
        return self.kind == "ack"

    @classmethod
    def ack(cls, src_node: int, dst_node: int, cum_seq: int) -> "Packet":
        """Build a cumulative ACK: "everything through ``cum_seq`` landed"."""
        return cls(src_node, dst_node, 0, b"", seq=cum_seq, kind="ack")

    @property
    def wire_bytes(self) -> int:
        """Total bytes the packet occupies on the wire."""
        return self.HEADER_BYTES + len(self.payload)

    # ------------------------------------------------------------ encoding
    def encode_into(self, buf: "bytearray | memoryview", offset: int = 0) -> int:
        """Serialise into ``buf`` at ``offset``; returns bytes written.

        ``buf`` must have at least :attr:`wire_bytes` writable bytes at
        ``offset``.  The payload is copied exactly once.
        """
        try:
            magic = _MAGIC_BY_KIND[self.kind]
        except KeyError:
            raise NetworkError(f"unknown packet kind {self.kind!r}") from None
        _HEADER.pack_into(
            buf,
            offset,
            magic,
            self.src_node,
            self.dst_node,
            self.dst_paddr,
            len(self.payload),
            self.seq,
        )
        start = offset + _HEADER.size
        end = start + len(self.payload)
        buf[start:end] = self.payload
        # Whole-packet coverage: header words and payload alike.
        buf[end : end + 4] = _checksum(
            memoryview(buf)[offset:end]
        ).to_bytes(4, "little")
        return end + 4 - offset

    def encode(self) -> bytes:
        """Serialise to the wire format."""
        out = bytearray(self.wire_bytes)
        self.encode_into(out)
        return bytes(out)

    @classmethod
    def decode(cls, wire: "bytes | bytearray | memoryview") -> "Packet":
        """Parse and verify a wire-format packet.

        Raises :class:`NetworkError` on a bad magic, a truncated packet,
        or a checksum mismatch -- the receive-side "Checking" block.
        Accepts any buffer-protocol object; the payload is snapshotted
        (one copy), so the caller's buffer is not retained.
        """
        mv = memoryview(wire)
        if len(mv) < _HEADER.size + 4:
            raise NetworkError(f"runt packet of {len(mv)} bytes")
        magic, src, dst, paddr, length, seq = _HEADER.unpack_from(mv)
        kind = _KIND_BY_MAGIC.get(magic)
        if kind is None:
            raise NetworkError(f"bad packet magic {magic:#x}")
        expected = _HEADER.size + length + 4
        if len(mv) != expected:
            raise NetworkError(
                f"packet length mismatch: header says {expected}, got {len(mv)}"
            )
        payload = mv[_HEADER.size : _HEADER.size + length]
        check = int.from_bytes(mv[-4:], "little")
        if check != _checksum(mv[: _HEADER.size + length]):
            raise NetworkError("packet checksum mismatch")
        return cls(src, dst, paddr, bytes(payload), seq, kind=kind)
