"""Packets on the SHRIMP interconnect.

"Once the destination node ID and destination address are known, the
hardware constructs a packet header.  ...  The SHRIMP hardware assembles
the header and data into a packet, and launches the packet into the
network" (section 8).

The wire format is modelled explicitly (header + payload + checksum) so
the receive side's "Unpacking/Checking" block of Figure 6 has real work to
do and tests can corrupt packets in flight.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import NetworkError

#: magic, src node, dst node, dst paddr, length, seq
_HEADER = struct.Struct("<IHHQII")
_MAGIC = 0x53485250  # "SHRP"


def _checksum(payload: bytes) -> int:
    """A cheap 32-bit additive checksum (hardware-plausible)."""
    total = 0
    for i in range(0, len(payload), 4):
        total = (total + int.from_bytes(payload[i : i + 4], "little")) & 0xFFFFFFFF
    return total


@dataclass(frozen=True)
class Packet:
    """One deliberate-update packet."""

    src_node: int
    dst_node: int
    dst_paddr: int
    payload: bytes
    seq: int = 0

    HEADER_BYTES = _HEADER.size + 4  # header struct + checksum word

    @property
    def wire_bytes(self) -> int:
        """Total bytes the packet occupies on the wire."""
        return self.HEADER_BYTES + len(self.payload)

    # ------------------------------------------------------------ encoding
    def encode(self) -> bytes:
        """Serialise to the wire format."""
        header = _HEADER.pack(
            _MAGIC,
            self.src_node,
            self.dst_node,
            self.dst_paddr,
            len(self.payload),
            self.seq,
        )
        return header + self.payload + _checksum(self.payload).to_bytes(4, "little")

    @classmethod
    def decode(cls, wire: bytes) -> "Packet":
        """Parse and verify a wire-format packet.

        Raises :class:`NetworkError` on a bad magic, a truncated packet,
        or a checksum mismatch -- the receive-side "Checking" block.
        """
        if len(wire) < _HEADER.size + 4:
            raise NetworkError(f"runt packet of {len(wire)} bytes")
        magic, src, dst, paddr, length, seq = _HEADER.unpack_from(wire)
        if magic != _MAGIC:
            raise NetworkError(f"bad packet magic {magic:#x}")
        expected = _HEADER.size + length + 4
        if len(wire) != expected:
            raise NetworkError(
                f"packet length mismatch: header says {expected}, got {len(wire)}"
            )
        payload = wire[_HEADER.size : _HEADER.size + length]
        check = int.from_bytes(wire[-4:], "little")
        if check != _checksum(payload):
            raise NetworkError("packet checksum mismatch")
        return cls(src, dst, paddr, bytes(payload), seq)
