"""Free-list pooling for packets and payload buffers.

The per-message hot path used to allocate one :class:`Packet`, one
``bytes`` payload snapshot, and several :class:`~repro.sim.clock.Event`
objects per message; at millions of messages per run the allocator and
the garbage collector dominate host time.  The event free list lives in
the clock itself (:mod:`repro.sim.clock`); this module pools the other
two allocations.

A :class:`PacketPool` is owned by the backplane
(:class:`~repro.net.interconnect.Interconnect`), one per backplane --
which in the sharded kernel means one per shard, so pools never cross a
process boundary.  The sending NIC acquires a packet (with a recycled
``bytearray`` payload of the right size); the receiving NIC releases it
after the receive DMA has copied the payload into physical memory.

Recycling rules (enforced by construction, checked in ``debug`` mode):

* Only ``data`` packets travel through the pool; ACKs and fault-injected
  decodes are ordinary garbage-collected packets.
* Pooling is bypassed whenever anything downstream may retain the packet
  past delivery: a reliability plane (it keeps packets for retransmit and
  builds ``dataclasses.replace`` copies sharing the payload), receive
  hooks, or span tracking.  Such packets simply skip the pool -- the
  simulation is identical either way, which the chaos ``--no-pool``
  differential oracle verifies.
* On release the payload is detached from the packet, so a stale
  reference to a recycled packet can never read a successor's data.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import PoolIntegrityError
from repro.net.packet import Packet
from repro.snapshot.protocol import SnapshotMixin

#: retained Packet shells (beyond this, releases fall back to the GC)
PACKET_FREE_LIST_CAP = 4096
#: retained payload buffers per distinct size
BUFFER_FREE_LIST_CAP = 1024


class PacketPool(SnapshotMixin):
    """Free lists for :class:`Packet` shells and payload ``bytearray``\\ s.

    ``debug=True`` keeps an ownership ledger and raises
    :class:`~repro.errors.PoolIntegrityError` on a double release or an
    acquire of an object the pool does not own.
    """

    __slots__ = (
        "debug",
        "packet_reuses",
        "packet_allocs",
        "buffer_reuses",
        "releases",
        "_packets",
        "_buffers",
        "_owned_packet_ids",
        "_owned_buffer_ids",
    )

    def __init__(self, debug: bool = False) -> None:
        self.debug = debug
        self.packet_reuses = 0
        self.packet_allocs = 0
        self.buffer_reuses = 0
        self.releases = 0
        self._packets: List[Packet] = []
        self._buffers: Dict[int, List[bytearray]] = {}
        self._owned_packet_ids: Set[int] = set()
        self._owned_buffer_ids: Set[int] = set()

    def acquire(
        self,
        src_node: int,
        dst_node: int,
        dst_paddr: int,
        data: "bytes | bytearray | memoryview",
        seq: int,
    ) -> Packet:
        """A ``data`` packet whose payload is a private snapshot of ``data``.

        The payload lands in a recycled ``bytearray`` when one of the
        right size is available -- the packetizer's one send-side copy,
        without the allocation.
        """
        nbytes = len(data)
        bufs = self._buffers.get(nbytes)
        if bufs:
            payload = bufs.pop()
            if self.debug:
                self._owned_buffer_ids.discard(id(payload))
            self.buffer_reuses += 1
        else:
            payload = bytearray(nbytes)
        payload[:] = data
        packets = self._packets
        if packets:
            packet = packets.pop()
            if self.debug:
                self._debug_acquire(packet)
            set_ = object.__setattr__
            set_(packet, "src_node", src_node)
            set_(packet, "dst_node", dst_node)
            set_(packet, "dst_paddr", dst_paddr)
            set_(packet, "payload", payload)
            set_(packet, "seq", seq)
            self.packet_reuses += 1
        else:
            packet = Packet(
                src_node, dst_node, dst_paddr, payload, seq, _pooled=True
            )
            self.packet_allocs += 1
        return packet

    def release(self, packet: Packet) -> None:
        """Return a delivered pooled packet (and its payload buffer).

        Packets the pool did not produce pass through untouched, so call
        sites need no provenance bookkeeping of their own.
        """
        if not packet._pooled:
            return
        payload = packet.payload
        if self.debug:
            self._debug_release(packet, payload)
        # Detach the payload first: a stale reference to the recycled
        # packet sees an empty payload, never a successor's bytes.
        object.__setattr__(packet, "payload", b"")
        self.releases += 1
        if len(self._packets) < PACKET_FREE_LIST_CAP:
            self._packets.append(packet)
        if isinstance(payload, bytearray):
            nbytes = len(payload)
            bufs = self._buffers.get(nbytes)
            if bufs is None:
                bufs = self._buffers[nbytes] = []
            if len(bufs) < BUFFER_FREE_LIST_CAP:
                bufs.append(payload)

    # -------------------------------------------------------- snapshotting
    def __getstate__(self) -> dict:
        # The debug ownership ledgers key on id(); object identities do
        # not survive a pickle round trip, so they are rebuilt from the
        # free lists on restore.
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot not in ("_owned_packet_ids", "_owned_buffer_ids")
        }

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self._owned_packet_ids = {id(p) for p in self._packets}
        self._owned_buffer_ids = {
            id(buf) for bufs in self._buffers.values() for buf in bufs
        }

    def stats(self) -> Dict[str, int]:
        """Pool-effectiveness counters (reported by the bench harness)."""
        return {
            "packet_reuses": self.packet_reuses,
            "packet_allocs": self.packet_allocs,
            "buffer_reuses": self.buffer_reuses,
            "releases": self.releases,
            "free_packets": len(self._packets),
            "free_buffers": sum(len(b) for b in self._buffers.values()),
        }

    # ------------------------------------------------------------ debug
    def _debug_acquire(self, packet: Packet) -> None:
        pid = id(packet)
        if pid not in self._owned_packet_ids:
            raise PoolIntegrityError(
                "acquired a packet the pool does not own"
            )
        self._owned_packet_ids.discard(pid)
        if packet.payload != b"":
            raise PoolIntegrityError("pooled packet still carries a payload")

    def _debug_release(self, packet: Packet, payload) -> None:
        pid = id(packet)
        if pid in self._owned_packet_ids:
            raise PoolIntegrityError("packet double-released to pool")
        if packet.kind != "data":
            raise PoolIntegrityError(
                f"non-data packet ({packet.kind!r}) released to pool"
            )
        if isinstance(payload, bytearray) and id(payload) in self._owned_buffer_ids:
            raise PoolIntegrityError("payload buffer double-released to pool")
        self._owned_packet_ids.add(pid)
        if isinstance(payload, bytearray):
            self._owned_buffer_ids.add(id(payload))
