"""Reliable delivery over a lossy backplane: ack / retransmit transport.

The paper's UDMA mechanism assumes the SHRIMP backplane delivers every
packet; the chaos harness can drop, duplicate, corrupt, and reorder them.
This module layers the canonical fix -- end-to-end sequencing with
sender-side retransmission, in the style of Active Messages' request/
reply retry and VMMC-2's transparent retransmission -- *above* the
user-level mechanism: the two-instruction initiation sequence, the NIPT
lookup, and the receive-side DMA are untouched.  Reliability is a NIC
firmware concern, invisible to the user process.

Mechanism (all of it keyed per directed channel, i.e. per (src, dst)
node pair, on the existing ``Packet.seq`` header field):

* **Sender**: every data packet gets the channel's next 32-bit sequence
  number and is remembered in a retransmit queue when it leaves the
  wire.  A timer on the simulated :class:`~repro.sim.clock.Clock` fires
  after ``timeout_cycles``; an unacknowledged packet is re-launched
  through the NIC's ordinary wire path with exponential backoff, up to
  ``max_retries`` attempts.  A packet that exhausts its budget degrades
  to a counted, span-visible ``delivery_failed`` event -- the transport
  never hangs the simulation.
* **Receiver**: in-order packets are accepted and acknowledged with a
  *cumulative* ACK (a new wire kind sharing the data header layout, so
  timing properties are identical).  Duplicates -- retransmissions whose
  original made it, or backplane duplication -- are suppressed before
  the receive DMA ever runs, and re-acknowledged so a lost ACK heals.
  Out-of-order packets wait in a bounded reorder buffer and drain the
  moment the gap fills, so the receive DMA writes memory strictly in
  per-channel sequence order ("exactly once, in order").

Everything is driven by the shared simulated clock and plain integer
state, so a reliable run is exactly as deterministic as an unreliable
one -- the chaos differential oracle replays reliable schedules with
fast paths toggled, and the eventual-delivery oracle compares faulted
runs against fault-free replays bit for bit.

The layer is **off by default**: a cluster built without a
:class:`ReliabilityConfig` has no plane, no per-packet branches beyond a
single ``is None`` check, and bit-identical cycles, traces, and metric
names to every previous release.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.sim.trace import NULL_TRACER, Tracer
from repro.snapshot.protocol import SnapshotMixin

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (nic -> reliable)
    from repro.net.nic import ShrimpNic
    from repro.net.packet import Packet

#: sequence numbers live on the wire as an unsigned 32-bit field
SEQ_MOD = 1 << 32
_SEQ_MASK = SEQ_MOD - 1
_SEQ_HALF = 1 << 31


def seq_lt(a: int, b: int) -> bool:
    """Serial-number ``a < b`` under 32-bit wraparound (RFC 1982 style).

    Two sequence numbers are compared on the shorter arc of the 32-bit
    circle, so ``seq_lt(0xFFFFFFFF, 0)`` is True: the channel that wraps
    keeps ordering correctly as long as fewer than 2**31 packets are in
    flight -- comfortably true of a bounded reorder window.
    """
    return a != b and ((b - a) & _SEQ_MASK) < _SEQ_HALF


def seq_next(a: int) -> int:
    """Successor of ``a`` on the 32-bit sequence circle."""
    return (a + 1) & _SEQ_MASK


@dataclass(frozen=True)
class ReliabilityConfig:
    """Knobs of the ack/retransmit transport.

    Attributes:
        timeout_cycles: cycles after a packet clears the wire before its
            first retransmission.  The default covers the round trip of
            a full-page packet (wire + hops + receive check + ACK hops)
            with generous slack on small clusters.
        backoff: multiplier applied to the timeout after every failed
            attempt (exponential backoff).
        max_timeout_cycles: backoff ceiling.
        max_retries: retransmissions before the transport gives up on a
            packet and counts a ``delivery_failed`` (the degraded mode:
            counted and span-visible, never a hang).
        reorder_window: out-of-order packets held per channel while a
            gap is outstanding; beyond it, future packets are discarded
            and recovered by sender retransmission.
    """

    timeout_cycles: int = 20_000
    backoff: int = 2
    max_timeout_cycles: int = 640_000
    max_retries: int = 6
    reorder_window: int = 64

    def retry_timeout(self, attempt: int) -> int:
        """Timeout for retransmission ``attempt`` (0 = first transmit)."""
        timeout = self.timeout_cycles * (self.backoff ** attempt)
        return min(timeout, self.max_timeout_cycles)


class _Pending:
    """One unacknowledged data packet awaiting its ACK or timer."""

    __slots__ = ("packet", "nic", "attempt", "timer")

    def __init__(self, packet: "Packet", nic: "ShrimpNic") -> None:
        self.packet = packet
        self.nic = nic
        self.attempt = 0  # completed transmissions so far, minus one
        self.timer = None  # the armed Clock event


class _TxChannel:
    """Sender-side state of one directed (src, dst) channel."""

    __slots__ = ("next_seq", "acked", "pending")

    def __init__(self) -> None:
        self.next_seq = 0  # last sequence number handed out
        self.acked = 0  # cumulative high-water mark acknowledged so far
        self.pending: Dict[int, _Pending] = {}


class _RxChannel:
    """Receiver-side state of one directed (src, dst) channel."""

    __slots__ = ("cum", "buffer")

    def __init__(self) -> None:
        self.cum = 0  # highest in-order sequence number delivered
        self.buffer: Dict[int, "Packet"] = {}  # out-of-order holding area


class ReliabilityPlane(SnapshotMixin):
    """Shared transport state for every NIC of one cluster (or machine).

    One plane per backplane: channels are keyed by (src, dst) node id,
    so any number of NICs share it and the counters aggregate the whole
    fabric -- that is what ``ShrimpCluster`` binds the ``net.*`` metrics
    over.
    """

    def __init__(
        self,
        config: Optional[ReliabilityConfig] = None,
        clock=None,
        spans=None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.config = config if config is not None else ReliabilityConfig()
        self.clock = clock
        self.spans = spans
        self.tracer = tracer
        self._tx: Dict[Tuple[int, int], _TxChannel] = {}
        self._rx: Dict[Tuple[int, int], _RxChannel] = {}
        # Transport counters (the net.* metric surface).
        self.retransmits = 0
        self.acks_sent = 0
        self.acks_received = 0
        self.dup_suppressed = 0
        self.reorder_buffered = 0
        self.reorder_discarded = 0
        self.delivery_failed = 0
        self.messages_sent = 0
        self.messages_delivered = 0

    # ------------------------------------------------------------ channels
    def _tx_channel(self, src: int, dst: int) -> _TxChannel:
        channel = self._tx.get((src, dst))
        if channel is None:
            channel = self._tx[(src, dst)] = _TxChannel()
        return channel

    def _rx_channel(self, dst: int, src: int) -> _RxChannel:
        channel = self._rx.get((src, dst))
        if channel is None:
            channel = self._rx[(src, dst)] = _RxChannel()
        return channel

    def in_flight(self) -> int:
        """Unacknowledged data packets across every channel."""
        return sum(len(c.pending) for c in self._tx.values())

    def counters(self) -> Dict[str, int]:
        """Deterministic snapshot of the transport counters."""
        return {
            "retransmits": self.retransmits,
            "acks": self.acks_sent,
            "acks_received": self.acks_received,
            "dup_suppressed": self.dup_suppressed,
            "reorder_buffered": self.reorder_buffered,
            "reorder_discarded": self.reorder_discarded,
            "delivery_failed": self.delivery_failed,
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
        }

    # ----------------------------------------------------------- send side
    def next_seq(self, src: int, dst: int) -> int:
        """Next per-channel sequence number (wraps at 32 bits)."""
        channel = self._tx_channel(src, dst)
        channel.next_seq = seq_next(channel.next_seq)
        return channel.next_seq

    def on_transmit(self, nic: "ShrimpNic", packet: "Packet") -> None:
        """A data packet just cleared the sender's wire: track and time it.

        Called for first transmissions and retransmissions alike (both
        ride the ordinary wire path); the first call creates the pending
        record, later calls only re-arm the timer with backoff.
        """
        channel = self._tx_channel(nic.node_id, packet.dst_node)
        pending = channel.pending.get(packet.seq)
        if pending is None:
            if not seq_lt(channel.acked, packet.seq):
                # A retransmission still on the wire timeline when its
                # cumulative ACK landed: the packet is already delivered;
                # re-registering it would double-count the message and
                # send one more useless (if harmless) retransmission.
                return
            pending = channel.pending[packet.seq] = _Pending(packet, nic)
            self.messages_sent += 1
        else:
            # The retransmission carries a fresh span; remember it so a
            # later give-up closes the span actually left open.
            pending.packet = packet
        self._arm_timer(pending)

    def _arm_timer(self, pending: _Pending) -> None:
        if pending.timer is not None:
            pending.timer.cancel()
        timeout = self.config.retry_timeout(pending.attempt)
        # partial (not a lambda): a pending retransmit timer is part of
        # the snapshot surface and must pickle with the event queue.
        pending.timer = self.clock.schedule(
            timeout, partial(self._on_timeout, pending)
        )

    def _on_timeout(self, pending: _Pending) -> None:
        packet, nic = pending.packet, pending.nic
        pending.timer = None
        channel = self._tx_channel(nic.node_id, packet.dst_node)
        if channel.pending.get(packet.seq) is not pending:
            return  # acked after the event was already in flight
        pending.attempt += 1
        if pending.attempt > self.config.max_retries:
            # Degraded mode: counted, span-visible, and final.
            del channel.pending[packet.seq]
            self.delivery_failed += 1
            if self.spans is not None:
                self.spans.finish(
                    packet.span, status="delivery-failed",
                    attempts=pending.attempt,
                )
            if self.tracer.enabled:
                self.tracer.emit(
                    self.clock.now, nic.name, "delivery-failed",
                    dst=packet.dst_node, seq=packet.seq,
                    attempts=pending.attempt,
                )
            return
        if not nic.outgoing.can_accept(packet):
            # The outgoing FIFO is saturated; charge the attempt (the
            # budget stays bounded) and try again after backoff.
            self._arm_timer(pending)
            return
        self.retransmits += 1
        retry = packet
        if self.spans is not None and packet.span is not None:
            original = self.spans.get(packet.span)
            parent = original.parent if original is not None else None
            new_span = self.spans.begin(
                "packet",
                parent=parent,
                src=nic.node_id,
                dst=packet.dst_node,
                bytes=len(packet.payload),
                retry_of=packet.span,
                attempt=pending.attempt,
            )
            retry = replace(packet, span=new_span)
            pending.packet = retry
        if self.tracer.enabled:
            self.tracer.emit(
                self.clock.now, nic.name, "retransmit",
                dst=packet.dst_node, seq=packet.seq,
                attempt=pending.attempt,
            )
        nic.retransmit(retry)
        # on_transmit re-arms the timer when the retry clears the wire;
        # until then the wire timeline itself bounds the wait.

    def on_ack(self, nic: "ShrimpNic", ack: "Packet") -> None:
        """A cumulative ACK arrived back at the sending NIC."""
        self.acks_received += 1
        channel = self._tx_channel(nic.node_id, ack.src_node)
        if seq_lt(channel.acked, ack.seq):
            channel.acked = ack.seq
        acked = [
            seq for seq in sorted(channel.pending)
            if not seq_lt(ack.seq, seq)
        ]
        for seq in acked:
            pending = channel.pending.pop(seq)
            if pending.timer is not None:
                pending.timer.cancel()
                pending.timer = None

    # -------------------------------------------------------- receive side
    def on_data(self, nic: "ShrimpNic", packet: "Packet") -> "List[Packet]":
        """Filter one arriving data packet; returns packets to deliver now.

        The returned list is in strict per-channel sequence order: the
        arriving packet if it fills the next slot, plus any buffered
        successors the fill releases.  Duplicates and out-of-order
        arrivals return an empty list (and a re-ACK / duplicate ACK goes
        out immediately so the sender converges).
        """
        channel = self._rx_channel(nic.node_id, packet.src_node)
        seq = packet.seq
        if not seq_lt(channel.cum, seq):
            # Already delivered: a retransmission whose original made it,
            # or backplane duplication.  Re-ack so a lost ACK heals.
            self.dup_suppressed += 1
            if self.spans is not None:
                self.spans.finish(packet.span, status="dup-suppressed")
            if self.tracer.enabled:
                self.tracer.emit(
                    self.clock.now, nic.name, "dup-suppressed",
                    src=packet.src_node, seq=seq,
                )
            self.send_ack(nic, packet.src_node, channel.cum)
            return []
        if seq != seq_next(channel.cum):
            # A gap: hold the packet until retransmission fills it.
            if seq in channel.buffer:
                self.dup_suppressed += 1
                if self.spans is not None:
                    self.spans.finish(packet.span, status="dup-suppressed")
            elif len(channel.buffer) >= self.config.reorder_window:
                self.reorder_discarded += 1
            else:
                channel.buffer[seq] = packet
                self.reorder_buffered += 1
                if self.spans is not None:
                    self.spans.event(
                        packet.span, "reorder-buffered",
                        expected=seq_next(channel.cum),
                    )
            self.send_ack(nic, packet.src_node, channel.cum)  # duplicate ACK
            return []
        # In order: accept it, then drain every buffered successor.
        accepted = [packet]
        channel.cum = seq
        while seq_next(channel.cum) in channel.buffer:
            channel.cum = seq_next(channel.cum)
            accepted.append(channel.buffer.pop(channel.cum))
        self.messages_delivered += len(accepted)
        return accepted

    def on_delivered(self, nic: "ShrimpNic", packet: "Packet") -> None:
        """The receive DMA finished writing a data packet: acknowledge.

        The ACK carries the channel's *current* cumulative high-water
        mark -- acknowledging data only after it is safely in memory,
        coalescing naturally when several packets complete in a burst.
        """
        channel = self._rx_channel(nic.node_id, packet.src_node)
        self.send_ack(nic, packet.src_node, channel.cum)

    def send_ack(self, nic: "ShrimpNic", dst_node: int, cum_seq: int) -> None:
        """Launch a cumulative ACK back across the backplane.

        ACKs are control traffic: they ride the backplane (paying hop
        latency like any packet) but bypass the outgoing data FIFO, so
        they can never deadlock behind the very data they acknowledge.
        ACKs are themselves unreliable -- loss is healed by sender
        retransmission plus receiver re-ACK.
        """
        from repro.net.packet import Packet

        self.acks_sent += 1
        ack = Packet.ack(nic.node_id, dst_node, cum_seq)
        if self.tracer.enabled:
            self.tracer.emit(
                self.clock.now, nic.name, "ack-tx", dst=dst_node, cum=cum_seq
            )
        nic.interconnect.route(nic.node_id, dst_node, ack)
