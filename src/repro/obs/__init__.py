"""repro.obs: the unified observability plane.

One :class:`Observability` object per machine -- or one *shared* object
per cluster -- carries the three instruments:

* a :class:`~repro.obs.registry.MetricsRegistry` of namespaced
  counters/gauges sampled over the components' live attributes (plus the
  per-transfer latency histogram),
* a :class:`~repro.obs.spans.SpanTracker` minting causal transfer spans
  when :attr:`ObsConfig.spans` is on,
* the classic :class:`~repro.sim.trace.Tracer` event stream.

Wiring is one keyword::

    from repro import Machine, ObsConfig

    m = Machine(obs=ObsConfig(spans=True))
    ...
    m.metrics()                  # nested counter report
    m.obs.spans.roots()          # transfer span trees
    m.obs.chrome_trace()         # Perfetto-loadable JSON dict

Everything is host-side: simulated cycles and counters are bit-identical
whatever the configuration.  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import ConfigurationError
from repro.obs.config import ObsConfig
from repro.obs.export import chrome_trace, write_chrome_trace
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    unflatten,
)
from repro.obs.spans import Span, SpanEvent, SpanTracker

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "ObsConfig",
    "Observability",
    "Span",
    "SpanEvent",
    "SpanTracker",
    "chrome_trace",
    "unflatten",
    "write_chrome_trace",
]


class Observability:
    """One observability plane: registry + span tracker + tracer.

    A :class:`~repro.machine.Machine` builds its own from an
    :class:`ObsConfig`; a :class:`~repro.cluster.ShrimpCluster` builds one
    and *shares* it with every node (node metrics are namespaced
    ``node{i}.``, spans interleave on the one tracker so cross-node
    causality survives).
    """

    def __init__(
        self,
        config: Optional[ObsConfig] = None,
        clock=None,
        tracer=None,
    ) -> None:
        self.config = config if config is not None else ObsConfig()
        self.clock = clock
        self.registry = MetricsRegistry()
        self.spans: Optional[SpanTracker] = (
            SpanTracker(clock, max_spans=self.config.max_spans)
            if self.config.spans
            else None
        )
        self.tracer = tracer

    def adopt_clock(self, clock) -> None:
        """Late-bind the simulation clock (first assembly that wires us)."""
        if self.clock is None:
            self.clock = clock
        if self.spans is not None and self.spans.clock is None:
            self.spans.clock = clock

    def chrome_trace(self, costs=None) -> Dict[str, Any]:
        """Perfetto-loadable trace of the span tree (requires spans on)."""
        if self.spans is None:
            raise ConfigurationError(
                "span tracing is off; build with obs=ObsConfig(spans=True)"
            )
        return chrome_trace(self.spans, costs=costs)
