"""Observability configuration: the one knob assemblies accept.

``Machine(..., obs=ObsConfig(...))`` and ``ShrimpCluster(..., obs=...)``
replace the previous scatter of ``tracer=`` / ``record_trace=`` attach
patterns (which still work, as thin aliases).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ObsConfig:
    """What the observability plane should collect.

    Attributes:
        metrics: bind the metrics registry over the component counters
            (sampled at snapshot time -- no hot-path cost) and record the
            per-transfer latency histogram.  The default.
        spans: mint causal transfer spans (initiation -> packets ->
            completion).  Off by default; purely host-side when on.
        record_trace: keep the full :class:`~repro.sim.trace.TraceEvent`
            stream (the old ``record_trace=`` flag).
        max_spans: span-tracker capacity; further spans are counted as
            dropped rather than grown without bound.
    """

    metrics: bool = True
    spans: bool = False
    record_trace: bool = False
    max_spans: int = 100_000
