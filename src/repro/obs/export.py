"""Chrome trace-event export: load a transfer's span tree in Perfetto.

:func:`chrome_trace` renders a :class:`~repro.obs.spans.SpanTracker` as
the Chrome trace-event JSON format (the ``traceEvents`` array of ``"X"``
complete-span and ``"i"`` instant events) that https://ui.perfetto.dev
and ``chrome://tracing`` open directly.  Each transfer's span tree is
placed on its own track (``tid`` = root span id), so one UDMA transfer
reads as one lane: initiation, the DMA fill underneath it, each packet's
flight, and the instant markers for retries, Invals and queue refusals.

Timestamps are microseconds of *simulated* time (converted through the
cost model when one is given, else raw cycles).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.spans import SpanTracker


def chrome_trace(
    tracker: SpanTracker,
    costs=None,
    process_name: str = "shrimp-udma",
) -> Dict[str, Any]:
    """Render every span as a Chrome trace-event JSON object."""
    to_us = (lambda c: costs.cycles_to_us(c)) if costs is not None else float
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    # Open spans (a dropped packet, a crashed schedule) still render; they
    # extend to the latest timestamp the tracker has seen.
    horizon = 0
    for span in tracker:
        horizon = max(horizon, span.start, span.end or 0)
        for ev in span.events:
            horizon = max(horizon, ev.time)

    named_tracks = set()
    for span in sorted(tracker, key=lambda s: s.id):
        root = tracker.root_of(span.id)
        if root not in named_tracks:
            named_tracks.add(root)
            root_span = tracker.get(root)
            label = root_span.name if root_span is not None else "span"
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": root,
                    "args": {"name": f"{label} #{root}"},
                }
            )
        end = span.end if span.end is not None else horizon
        args: Dict[str, Any] = {"id": span.id, "status": span.status}
        if span.parent is not None:
            args["parent"] = span.parent
        args.update(span.attrs)
        events.append(
            {
                "name": span.name,
                "cat": span.name,
                "ph": "X",
                "pid": 0,
                "tid": root,
                "ts": to_us(span.start),
                "dur": to_us(end - span.start),
                "args": args,
            }
        )
        for ev in span.events:
            events.append(
                {
                    "name": ev.name,
                    "cat": span.name,
                    "ph": "i",
                    "s": "t",
                    "pid": 0,
                    "tid": root,
                    "ts": to_us(ev.time),
                    "args": dict(ev.attrs),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    tracker: SpanTracker,
    path: str,
    costs=None,
    process_name: str = "shrimp-udma",
) -> None:
    """Write :func:`chrome_trace` output to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(tracker, costs=costs, process_name=process_name), fh)
        fh.write("\n")
