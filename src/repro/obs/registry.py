"""Typed metrics registry: stable, namespaced names over live counters.

The simulator's components keep plain integer attributes on their hot
paths (``cpu.loads += 1`` costs one integer add and nothing else).  The
registry does not replace those attributes -- it *binds* them: a
:class:`Counter` or :class:`Gauge` registered with a ``read`` callback
samples the live attribute only when a snapshot is taken, so observation
costs nothing until someone observes.  :class:`Histogram` is the one
*recording* instrument (distributions cannot be reconstructed after the
fact); call sites guard it with ``if hist is not None``.

Names are dotted, stable, and part of the public API: renaming a metric
is an API change, enforced by the golden-name test in
``tests/obs/test_metric_names_golden.py``.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.snapshot.protocol import SnapshotMixin

#: dotted lowercase names: ``cpu.loads``, ``node0.nic.packets_sent``
_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ConfigurationError(
            f"metric name {name!r} is not a dotted lowercase identifier"
        )
    return name


class Metric:
    """Base of every registered instrument."""

    kind = "metric"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help

    def value(self) -> Any:
        """Current value as it should appear in a snapshot."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class _SampledStateMixin:
    """Pickle support for sampled instruments.

    A ``read`` callback closes over a live component, so it cannot (and
    must not) ride along in a snapshot.  Pickling drops the callback and
    marks the instrument *detached*; reading a detached instrument raises
    instead of silently returning the stale owned value.  Restore paths
    re-run the owner's metric binding under
    :meth:`MetricsRegistry.rebinding`, which re-attaches the callbacks.
    """

    _detached = False

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        if state.get("_read") is not None:
            state["_read"] = None
            state["_detached"] = True
        return state

    def _check_attached(self) -> None:
        if self._detached:
            raise ConfigurationError(
                f"metric {self.name!r} was detached by snapshot/restore "
                "and has not been rebound to its component"
            )


class Counter(_SampledStateMixin, Metric):
    """A monotonically increasing count.

    Either *sampled* (``read`` callback over a component's live
    attribute -- the zero-overhead binding) or *owned* (call
    :meth:`inc`); not both.
    """

    kind = "counter"

    def __init__(
        self,
        name: str,
        help: str = "",
        read: Optional[Callable[[], Any]] = None,
    ) -> None:
        super().__init__(name, help)
        self._read = read
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Increment an owned counter (invalid on sampled counters)."""
        if self._read is not None:
            raise ConfigurationError(
                f"counter {self.name!r} samples a live attribute; "
                "increment the attribute, not the binding"
            )
        if amount < 0:
            raise ConfigurationError(f"counter {self.name!r} cannot decrease")
        self._value += amount

    def value(self) -> Any:
        self._check_attached()
        return self._read() if self._read is not None else self._value


class Gauge(_SampledStateMixin, Metric):
    """A point-in-time value (may go up, down, or be a label string)."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str = "",
        read: Optional[Callable[[], Any]] = None,
    ) -> None:
        super().__init__(name, help)
        self._read = read
        self._value: Any = 0

    def set(self, value: Any) -> None:
        """Set an owned gauge (invalid on sampled gauges)."""
        if self._read is not None:
            raise ConfigurationError(
                f"gauge {self.name!r} samples a live attribute"
            )
        self._value = value

    def value(self) -> Any:
        self._check_attached()
        return self._read() if self._read is not None else self._value


#: default latency buckets: powers of two from 16 cycles to ~16M cycles
DEFAULT_BUCKETS = tuple(1 << k for k in range(4, 25))


class Histogram(Metric):
    """A recording distribution over fixed bucket upper bounds.

    Unlike counters and gauges, a histogram must see every sample when it
    happens; call sites therefore hold a direct reference and guard with
    ``if hist is not None`` so the unobserved cost is one attribute load.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: "tuple[int, ...]" = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        if not buckets or list(buckets) != sorted(buckets):
            raise ConfigurationError(
                f"histogram {self.name!r} needs ascending bucket bounds"
            )
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1: overflow bucket
        self.count = 0
        self.sum = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def observe(self, value: int) -> None:
        """Record one sample."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def percentile(self, q: float) -> int:
        """Upper bucket bound holding the ``q``-quantile (0 < q <= 1)."""
        if self.count == 0:
            return 0
        target = q * self.count
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            if running >= target:
                return bound
        return self.max if self.max is not None else self.buckets[-1]

    def value(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry(SnapshotMixin):
    """All of one observability plane's instruments, by stable name."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        #: transient flag set by :meth:`rebinding`; never pickled as True
        #: because it is only set inside the context manager
        self._rebinding = False

    # --------------------------------------------------------- registration
    def register(self, metric: Metric) -> Metric:
        """Add an instrument; duplicate names are configuration errors."""
        if metric.name in self._metrics:
            raise ConfigurationError(
                f"metric {metric.name!r} is already registered"
            )
        self._metrics[metric.name] = metric
        return metric

    @contextmanager
    def rebinding(self) -> Iterator[None]:
        """Re-run a component's metric bindings after snapshot restore.

        Inside the context, registering an already-present name is not a
        duplicate error: counters and gauges get their ``read`` callback
        re-attached (clearing the detached marker), histograms return the
        existing instrument so recorded distributions survive the round
        trip.  Outside the context the strict duplicate check stands.
        """
        self._rebinding = True
        try:
            yield
        finally:
            self._rebinding = False

    def counter(
        self,
        name: str,
        read: Optional[Callable[[], Any]] = None,
        help: str = "",
    ) -> Counter:
        """Register a counter (sampled when ``read`` is given)."""
        if self._rebinding and name in self._metrics:
            metric = self._metrics[name]
            if not isinstance(metric, Counter):
                raise ConfigurationError(
                    f"metric {name!r} rebound with a different kind"
                )
            metric._read = read
            metric._detached = False
            return metric
        metric = Counter(name, help=help, read=read)
        self.register(metric)
        return metric

    def gauge(
        self,
        name: str,
        read: Optional[Callable[[], Any]] = None,
        help: str = "",
    ) -> Gauge:
        """Register a gauge (sampled when ``read`` is given)."""
        if self._rebinding and name in self._metrics:
            metric = self._metrics[name]
            if not isinstance(metric, Gauge):
                raise ConfigurationError(
                    f"metric {name!r} rebound with a different kind"
                )
            metric._read = read
            metric._detached = False
            return metric
        metric = Gauge(name, help=help, read=read)
        self.register(metric)
        return metric

    def histogram(
        self,
        name: str,
        buckets: "tuple[int, ...]" = DEFAULT_BUCKETS,
        help: str = "",
    ) -> Histogram:
        """Register a recording histogram."""
        if self._rebinding and name in self._metrics:
            metric = self._metrics[name]
            if not isinstance(metric, Histogram):
                raise ConfigurationError(
                    f"metric {name!r} rebound with a different kind"
                )
            return metric
        metric = Histogram(name, help=help, buckets=buckets)
        self.register(metric)
        return metric

    # -------------------------------------------------------------- reading
    def get(self, name: str) -> Metric:
        """Instrument by name."""
        try:
            return self._metrics[name]
        except KeyError:
            raise ConfigurationError(f"no metric {name!r} registered") from None

    def names(self, prefix: str = "") -> List[str]:
        """Sorted registered names (optionally under a prefix)."""
        return sorted(n for n in self._metrics if n.startswith(prefix))

    def snapshot(self, prefix: str = "") -> Dict[str, Any]:
        """One deterministic flat reading: sorted name -> current value."""
        return {n: self._metrics[n].value() for n in self.names(prefix)}

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)


def unflatten(flat: Dict[str, Any], strip: str = "") -> Dict[str, Any]:
    """Nest a flat dotted-name snapshot into the classic report shape.

    ``unflatten({"cpu.loads": 3}) == {"cpu": {"loads": 3}}``.  ``strip``
    removes a shared prefix (a node's namespace in a cluster registry)
    before nesting.
    """
    nested: Dict[str, Any] = {}
    for name, value in flat.items():
        if strip:
            name = name[len(strip):]
        node = nested
        parts = name.split(".")
        for part in parts[:-1]:
            node = node.setdefault(part, {})
        node[parts[-1]] = value
    return nested
