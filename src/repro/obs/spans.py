"""Span-based causal tracing for UDMA transfers.

One user-level transfer is many hardware episodes: the STORE that latches
DESTINATION, the LOAD that starts the engine, the DMA fill, the packets a
NIC cuts from it, the backplane routing, the remote receive DMA -- plus
any Inval preemptions, BadLoads and retries along the way.  The
:class:`SpanTracker` stitches those episodes back into one tree per
transfer: the :class:`~repro.core.controller.UdmaController` mints a root
span at initiation, the engine opens a ``dma`` child, and every packet
carved from that transfer's fill gets a ``packet`` child that finishes on
remote delivery.

Everything here is host-side bookkeeping: span operations never touch the
simulated clock, so simulated cycles and counters are bit-identical with
spans on or off.  Span ids come from a per-tracker counter, so a
deterministic simulation produces a deterministic span tree.

Components hold ``self._spans`` (``None`` when tracing is off) and guard
every call with ``if self._spans is not None`` -- the same
zero-overhead-when-unobserved discipline as ``tracer.enabled``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass
class SpanEvent:
    """An instant within a span (a retry, a queue refusal, an Inval)."""

    time: int
    name: str
    attrs: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Span:
    """One episode in a transfer's life."""

    id: int
    name: str
    start: int
    parent: Optional[int] = None
    end: Optional[int] = None
    status: str = "open"
    attrs: Dict[str, Any] = field(default_factory=dict)
    events: List[SpanEvent] = field(default_factory=list)

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> Optional[int]:
        return None if self.end is None else self.end - self.start

    def brief(self) -> str:
        """One-line rendering for logs and failure reports."""
        dur = f"+{self.duration}" if self.end is not None else "open"
        attrs = " ".join(f"{k}={v}" for k, v in self.attrs.items())
        return f"#{self.id} {self.name}[{self.status}] t={self.start} {dur} {attrs}".rstrip()


class SpanTracker:
    """Mints, annotates and stores spans on the shared simulation clock."""

    def __init__(self, clock=None, max_spans: int = 100_000) -> None:
        self.clock = clock
        self.max_spans = max_spans
        self.spans: Dict[int, Span] = {}
        #: spans refused because the tracker was full
        self.dropped = 0
        self.finished = 0
        #: parent span for data currently being delivered by a DMA engine;
        #: a NIC's ``dma_write`` reads this to attach packet spans to the
        #: transfer that produced the bytes
        self.current_data_span: Optional[int] = None
        self._next_id = 1

    # ------------------------------------------------------------ lifecycle
    def begin(
        self, name: str, parent: Optional[int] = None, **attrs: Any
    ) -> Optional[int]:
        """Open a span; returns its id (None when the tracker is full)."""
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return None
        span_id = self._next_id
        self._next_id += 1
        self.spans[span_id] = Span(
            id=span_id,
            name=name,
            start=self.clock.now if self.clock is not None else 0,
            parent=parent,
            attrs=attrs,
        )
        return span_id

    def event(self, span_id: Optional[int], name: str, **attrs: Any) -> None:
        """Attach an instant event to an open (or finished) span."""
        span = self.spans.get(span_id) if span_id is not None else None
        if span is None:
            return
        span.events.append(
            SpanEvent(
                time=self.clock.now if self.clock is not None else 0,
                name=name,
                attrs=attrs,
            )
        )

    def finish(
        self, span_id: Optional[int], status: str = "complete", **attrs: Any
    ) -> None:
        """Close a span with a final status (idempotent on unknown ids)."""
        span = self.spans.get(span_id) if span_id is not None else None
        if span is None or span.end is not None:
            return
        span.end = self.clock.now if self.clock is not None else 0
        span.status = status
        if attrs:
            span.attrs.update(attrs)
        self.finished += 1

    # -------------------------------------------------------------- queries
    def get(self, span_id: int) -> Optional[Span]:
        return self.spans.get(span_id)

    def roots(self) -> List[Span]:
        """Spans with no parent, in id (creation) order."""
        return [s for s in self.spans.values() if s.parent is None]

    def children(self, span_id: int) -> List[Span]:
        return [s for s in self.spans.values() if s.parent == span_id]

    def root_of(self, span_id: int) -> int:
        """Walk to the root span id of ``span_id``'s tree."""
        seen = set()
        current = span_id
        while True:
            span = self.spans.get(current)
            if span is None or span.parent is None or current in seen:
                return current
            seen.add(current)
            current = span.parent

    def open_spans(self) -> List[Span]:
        return [s for s in self.spans.values() if s.end is None]

    def render_tree(self, root_id: int, indent: int = 0) -> str:
        """Human-readable span tree (roots down, events inline)."""
        span = self.spans.get(root_id)
        if span is None:
            return ""
        pad = "  " * indent
        lines = [f"{pad}{span.brief()}"]
        for ev in span.events:
            attrs = " ".join(f"{k}={v}" for k, v in ev.attrs.items())
            lines.append(f"{pad}  @ t={ev.time} {ev.name} {attrs}".rstrip())
        for child in self.children(root_id):
            lines.append(self.render_tree(child.id, indent + 1))
        return "\n".join(lines)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans.values())

    def __len__(self) -> int:
        return len(self.spans)
