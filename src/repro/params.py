"""Cost model and structural parameters for the simulation.

Every timing constant in the simulator lives here, expressed in CPU cycles
(the SHRIMP nodes were 60 MHz Pentium Xpress PCs, so one cycle is 16.7 ns).
The :func:`shrimp` preset is calibrated against the paper's two anchor
measurements:

* the two-instruction UDMA initiation sequence plus its alignment check
  costs about 2.8 microseconds (section 8), and
* a single-page (4 KB) deliberate-update transfer achieves about 94 % of
  the maximum measured bandwidth, with 512-byte messages exceeding 50 %
  (Figure 8).

Those two anchors pin the ratio of fixed per-transfer overhead to link
bandwidth; the remaining constants are plausible splits of that overhead
among DMA startup, packet-header construction, and wire drain.  Absolute
nanoseconds are explicitly *not* a reproduction target (the substrate is a
behavioural simulator, see DESIGN.md); the shape of every curve is.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: Number of bytes in a virtual-memory page (and the largest basic UDMA
#: transfer; section 5: "a basic UDMA transfer cannot cross a page
#: boundary").
DEFAULT_PAGE_SIZE = 4096

#: Word size of the simulated CPU and the I/O bus, in bytes.
WORD_SIZE = 4


@dataclass(frozen=True)
class CostModel:
    """All timing constants, in CPU cycles unless stated otherwise.

    Instances are immutable; derive variants with :func:`dataclasses.replace`
    or the :meth:`scaled` helper.
    """

    # ------------------------------------------------------------------ CPU
    cpu_hz: float = 60e6
    #: an ordinary cached memory reference
    mem_ref_cycles: int = 2
    #: an uncached reference that crosses the I/O bus (proxy space is
    #: uncachable, section 4)
    io_ref_cycles: int = 70
    #: a plain ALU instruction
    alu_cycles: int = 1
    #: the user-level alignment / page-boundary check performed around the
    #: two-instruction initiation sequence (section 8)
    udma_align_check_cycles: int = 28
    #: a store fence separating the STORE from the LOAD ("all provide some
    #: mechanism that software can use to ensure program order", section 3)
    fence_cycles: int = 4

    # ------------------------------------------------- kernel / traditional
    syscall_entry_cycles: int = 150
    syscall_exit_cycles: int = 100
    #: kernel virtual-to-physical translation of one page
    translate_page_cycles: int = 60
    #: pinning / unpinning one physical page (page-table update + bookkeeping)
    pin_page_cycles: int = 120
    unpin_page_cycles: int = 100
    #: building one entry of a DMA descriptor
    descriptor_entry_cycles: int = 80
    #: poking the device control register to start a kernel DMA
    device_start_cycles: int = 50
    #: taking and dismissing the completion interrupt
    interrupt_cycles: int = 400
    #: rescheduling the blocked user process afterwards
    reschedule_cycles: int = 200
    #: memcpy cost per byte for the bounce-buffer (pre-pinned I/O buffer)
    #: variant of traditional DMA
    copy_byte_cycles: float = 0.5
    #: context-switch cost excluding the UDMA Inval store
    context_switch_cycles: int = 300
    #: servicing one page fault in the kernel (walk + fixup), excluding I/O
    page_fault_cycles: int = 500
    #: moving one page to/from backing store (seek + transfer, amortised)
    swap_io_cycles: int = 50_000
    #: reading the hardware SOURCE/DESTINATION registers for the I4
    #: remap-guard check (two uncached loads)
    remap_check_cycles: int = 140

    # ------------------------------------------------------------ DMA / NIC
    #: delay from the Load event to the DMA engine's first burst
    dma_start_cycles: int = 300
    #: DMA (memory -> device over the I/O bus) bandwidth in bytes/cycle;
    #: 0.55 B/cycle at 60 MHz is 33 MB/s, an EISA-burst-like figure
    dma_bytes_per_cycle: float = 0.55
    #: NIC packet-header construction / launch setup, per packet; the wire
    #: cannot start until the header is built, but the header overlaps the
    #: DMA fill (cut-through packetizing)
    packet_header_cycles: int = 250
    #: network wire bandwidth in bytes/cycle (slightly below the DMA fill
    #: rate, so the wire is the steady-state bottleneck and a single
    #: message's time includes a short wire tail after the fill completes
    #: -- this produces the 94 %-at-4KB anchor of Figure 8)
    wire_bytes_per_cycle: float = 0.5
    #: minimum wire time remaining after the fill completes (FIFO flush)
    wire_flush_cycles: int = 50
    #: per-hop routing latency in the interconnect backplane
    hop_cycles: int = 40
    #: receive-side unpacking/checking plus DMA flush, per packet; the
    #: receive DMA streams cut-through behind the wire, so this fixed tail
    #: is all a packet adds after its last byte arrives
    rx_check_cycles: int = 400
    #: receive-side DMA (incoming FIFO -> memory) bandwidth in bytes/cycle;
    #: faster than the wire, hence never the bottleneck (kept for the
    #: store-and-forward ablation)
    rx_dma_bytes_per_cycle: float = 0.6

    # ------------------------------------------------------------- IOMMU
    #: IOTLB hit on the receive path (the I/O translation cache in front
    #: of the receive DMA); charged as receive-DMA occupancy
    iommu_iotlb_hit_cycles: int = 2
    #: full I/O page-table walk on an IOTLB miss (two dependent uncached
    #: table reads by the NIC-side walker)
    iommu_walk_cycles: int = 140
    #: kernel service of one parked transfer (interrupt + map-in fixup),
    #: excluding swap I/O which is charged separately at swap_io_cycles
    iommu_fault_service_cycles: int = 900

    # --------------------------------------------------------- generic disk
    disk_seek_cycles: int = 600_000          # ~10 ms at 60 MHz
    disk_bytes_per_cycle: float = 0.17       # ~10 MB/s streaming

    # ------------------------------------------------------------ structure
    page_size: int = DEFAULT_PAGE_SIZE
    word_size: int = WORD_SIZE
    tlb_entries: int = 64
    #: page-table walk penalty on a TLB miss
    tlb_miss_cycles: int = 24
    #: depth of the section-7 hardware request queue (0 = unqueued device)
    udma_queue_depth: int = 0

    # ------------------------------------------------------------- helpers
    def cycles_to_us(self, cycles: float) -> float:
        """Convert a cycle count to microseconds at this CPU clock."""
        return cycles / self.cpu_hz * 1e6

    def us_to_cycles(self, us: float) -> int:
        """Convert microseconds to (rounded) cycles at this CPU clock."""
        return int(round(us * 1e-6 * self.cpu_hz))

    def bytes_per_second(self, bytes_per_cycle: float) -> float:
        """Convert a bytes/cycle rate into bytes/second."""
        return bytes_per_cycle * self.cpu_hz

    @property
    def udma_initiation_cycles(self) -> int:
        """Cost of the complete two-instruction initiation sequence.

        One uncached STORE, a fence, one uncached LOAD, plus the user-level
        alignment check -- the quantity the paper measures at 2.8 us.
        """
        return (
            self.io_ref_cycles * 2
            + self.fence_cycles
            + self.udma_align_check_cycles
        )

    def traditional_dma_overhead_cycles(self, pages: int) -> int:
        """Kernel-path overhead of a traditional DMA spanning ``pages`` pages.

        Follows the four-step recipe of section 2: syscall, per-page
        translate + pin + descriptor entry, device start, completion
        interrupt, per-page unpin, syscall return, reschedule.
        """
        per_page = (
            self.translate_page_cycles
            + self.pin_page_cycles
            + self.descriptor_entry_cycles
            + self.unpin_page_cycles
        )
        return (
            self.syscall_entry_cycles
            + pages * per_page
            + self.device_start_cycles
            + self.interrupt_cycles
            + self.syscall_exit_cycles
            + self.reschedule_cycles
        )

    def scaled(self, **overrides: object) -> "CostModel":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]


def shrimp(**overrides: object) -> CostModel:
    """The SHRIMP-calibrated preset (see module docstring)."""
    return CostModel().scaled(**overrides)


def shrimp_queued(depth: int = 16, **overrides: object) -> CostModel:
    """SHRIMP preset with the section-7 hardware request queue enabled."""
    return CostModel(udma_queue_depth=depth).scaled(**overrides)


def hippi_paragon(**overrides: object) -> CostModel:
    """A HIPPI-on-Paragon-like preset for the section-1 motivation numbers.

    Models a 100 MB/s channel whose kernel send path costs a bit over
    350 us, so that 1 KB blocks achieve roughly 2.7 MB/s (under 2 % of the
    raw bandwidth) and 80 MB/s requires very large blocks.
    """
    model = CostModel(
        cpu_hz=50e6,
        # 100 MB/s at 50 MHz = 2 bytes/cycle
        dma_bytes_per_cycle=2.0,
        wire_bytes_per_cycle=2.0,
        # ~350 us of software overhead at 50 MHz = 17,500 cycles; split over
        # the traditional-DMA path constants
        # fixed costs dominate (the Paragon driver used a pre-pinned,
        # physically contiguous region, so per-page costs are small)
        syscall_entry_cycles=2_800,
        syscall_exit_cycles=2_000,
        translate_page_cycles=40,
        pin_page_cycles=60,
        unpin_page_cycles=50,
        descriptor_entry_cycles=40,
        device_start_cycles=800,
        interrupt_cycles=7_500,
        reschedule_cycles=4_400,
        dma_start_cycles=60,
        packet_header_cycles=200,
    )
    return model.scaled(**overrides)
