"""Pluggable protection backends for the two-instruction send.

See :mod:`repro.protection.base` for the interface and the
outcome-equivalence contract, and ``docs/PROTECTION.md`` for the guide.

Backends are named by a spec string accepted everywhere a backend can be
configured (``Machine(protection=...)``, ``ShrimpCluster``, chaos, CLI):

* ``"proxy"``            — the paper's MMU-aliasing scheme (default);
* ``"captable"``         — CAPIO-style capability table;
* ``"handler"``          — SBPF-style pre-validated kernel accessor;
* ``"captable:stale-cap"`` etc. — a backend with a *planted bug*, used
  to prove the conformance suite catches real divergences.
"""

from __future__ import annotations

from typing import Optional, Tuple, Type

from repro.errors import ConfigurationError
from repro.protection.base import (
    FAULT_KINDS,
    ProtectionBackend,
    fault_kinds_from_errors,
)
from repro.protection.captable import CapTableBackend
from repro.protection.handler import HandlerBackend
from repro.protection.proxy import ProxyBackend

#: stock (bug-free) backend names, reference backend first
BACKEND_NAMES: Tuple[str, ...] = ("proxy", "captable", "handler")

_REGISTRY = {
    ProxyBackend.name: ProxyBackend,
    CapTableBackend.name: CapTableBackend,
    HandlerBackend.name: HandlerBackend,
}


def backend_class(name: str) -> Type[ProtectionBackend]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown protection backend {name!r}"
            f" (available: {', '.join(sorted(_REGISTRY))})"
        ) from None


def make_backend(spec: "str | ProtectionBackend | None") -> ProtectionBackend:
    """Build a backend from a ``"name"`` or ``"name:bug"`` spec string.

    Passing an existing instance returns it unchanged; ``None`` means
    the default (``proxy``).
    """
    if spec is None:
        return ProxyBackend()
    if isinstance(spec, ProtectionBackend):
        return spec
    name, sep, bug = spec.partition(":")
    return backend_class(name)(bug if sep else None)


__all__ = [
    "BACKEND_NAMES",
    "FAULT_KINDS",
    "CapTableBackend",
    "HandlerBackend",
    "ProtectionBackend",
    "ProxyBackend",
    "backend_class",
    "fault_kinds_from_errors",
    "make_backend",
]
