"""The protection-backend interface behind the two-instruction send.

The paper's proxy address space (section 4) is one point in a design
space: CAPIO obtains the same safe kernel bypass from capabilities, and
the SBPF line of work offloads a pre-validated accessor into the kernel.
This module factors the *protection decision* — destination-proxy
decode, per-page send-right lookup, and grant/fault classification — out
of :class:`~repro.core.controller.UdmaController` so those alternatives
can be swapped in behind one interface.

Outcome-equivalence contract (enforced by ``repro.chaos.conformance``):

* every backend must produce the **same grants, the same fault kinds,
  the same NIPT effects and the same memory digests** for any schedule;
* **simulated cycle counts may differ** per backend (each charges its
  own ``initiation_check_cycles`` on the initiating LOAD) and are only
  required to be deterministic *within* a backend;
* the ``proxy`` backend is the default and must remain bit-identical to
  the pre-refactor controller — its check is free because the MMU
  already performed it during address translation.

Faults are recorded in a canonical, frozen vocabulary (``FAULT_KINDS``)
so new backends diff against fixed strings instead of ad-hoc messages.
"""

from __future__ import annotations

from functools import partial

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.core.state_machine import ProxyOperand, SpaceKind
from repro.devices.base import ERR_ALIGNMENT, ERR_DEVICE_BASE, ERR_RANGE, ERR_READONLY
from repro.errors import AddressError, ConfigurationError
from repro.mem.layout import Region

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.controller import UdmaController
    from repro.devices.base import UDMADevice

# Frozen protection fault vocabulary (satellite: golden-tested).  The
# names mirror the paper's refusal reasons for the two-instruction send:
#
#   bad-load      LOAD from a proxy in the same space as the latched
#                 destination (section 5's "wrong space" refusal);
#   inval         a context-switch INVAL cleared a latched destination
#                 before its LOAD arrived (I1);
#   alignment     device alignment veto on the initiating LOAD;
#   range         transfer exceeds the device's proxy window;
#   readonly      store side of the pair hit a read-only mapping;
#   no-receive    the NIC refused to be a DMA *source* (send-only);
#   nipt-invalid  destination page has no valid NIPT entry / capability.
#
# Device-specific bits above the NIPT bit fold into ``device``.
FAULT_KINDS: Tuple[str, ...] = (
    "bad-load",
    "inval",
    "alignment",
    "range",
    "readonly",
    "no-receive",
    "nipt-invalid",
    "device",
)

_FAULT_LOG_CAP = 1 << 16

# Bit positions of the two NIC-defined error bits (see repro.net.nic).
_ERR_NO_RECEIVE = ERR_DEVICE_BASE
_ERR_NIPT_INVALID = ERR_DEVICE_BASE << 1


def fault_kinds_from_errors(errors: int) -> Tuple[str, ...]:
    """Decode a device-error bitmask into canonical fault kinds."""
    kinds = []
    if errors & ERR_ALIGNMENT:
        kinds.append("alignment")
    if errors & ERR_RANGE:
        kinds.append("range")
    if errors & ERR_READONLY:
        kinds.append("readonly")
    if errors & _ERR_NO_RECEIVE:
        kinds.append("no-receive")
    if errors & _ERR_NIPT_INVALID:
        kinds.append("nipt-invalid")
    if errors & ~(ERR_ALIGNMENT | ERR_RANGE | ERR_READONLY | _ERR_NO_RECEIVE | _ERR_NIPT_INVALID):
        kinds.append("device")
    return tuple(kinds)


class ProtectionBackend:
    """Base class for the pluggable protection check.

    One instance serves one :class:`UdmaController` (per-node state such
    as capability tables lives here).  Subclasses override
    :meth:`source_errors` / :meth:`dest_errors` — the veto decision for
    the initiating LOAD — and may hook grant/revoke and NIPT traffic.
    """

    #: registry name ("proxy", "captable", "handler")
    name: str = "abstract"
    #: extra cycles charged on every initiating LOAD's protection check.
    #: The proxy scheme rides the MMU translation already paid for, so
    #: its check is free; table walks and kernel handlers are not.
    initiation_check_cycles: int = 0
    #: planted-bug knobs accepted by ``make_backend("name:bug")``
    BUGS: Tuple[str, ...] = ()

    def __init__(self, bug: Optional[str] = None) -> None:
        if bug is not None and bug not in self.BUGS:
            raise ConfigurationError(
                f"backend {self.name!r} has no planted bug {bug!r}"
                f" (available: {', '.join(self.BUGS) or 'none'})"
            )
        self.bug = bug
        #: bumped whenever a protection decision could change (grant,
        #: revoke, NIPT set/clear).  Cached ``_SendPlan`` stamps compare
        #: against this before skipping the re-check.
        self.generation = 0
        #: canonical fault kinds, in order of occurrence (hard refusals
        #: only — transient busy/queue-full retries are not protection
        #: faults).  Bounded so adversarial schedules cannot grow it
        #: without limit.
        self.fault_log: List[str] = []
        self._controller: Optional["UdmaController"] = None
        self._layout = None
        self._page_size = 0

    # ------------------------------------------------------------ wiring
    def attach(self, controller: "UdmaController") -> None:
        """Bind to a controller (called once by the controller)."""
        self._controller = controller
        self._layout = controller.layout
        self._page_size = controller.page_size

    def device_attached(self, device: "UDMADevice") -> None:
        """A device was registered with the controller.

        The base class subscribes to the device's NIPT (when it has one)
        so every set/clear bumps :attr:`generation` — recycled entries
        must invalidate outstanding ``_SendPlan`` stamps on every
        backend.
        """
        nipt = getattr(device, "nipt", None)
        if nipt is not None:
            # partial (not a lambda): NIPT listener lists are part of the
            # machine snapshot and must pickle with the device.
            nipt.add_listener(partial(self.nipt_changed, device))

    # ----------------------------------------------------- change events
    def nipt_changed(self, device: "UDMADevice", index: int, installed: bool) -> None:
        """A NIPT entry was set (``installed``) or cleared."""
        self.generation += 1

    def note_grant(self, asid: int, device_name: str, writable: bool) -> None:
        """The kernel mapped (part of) a device window for ``asid``."""
        self.generation += 1

    def note_revoke(self, asid: int, device_name: str) -> None:
        """The kernel tore down a device-window grant."""
        self.generation += 1

    # -------------------------------------------------------- the checks
    def decode(self, paddr: int) -> ProxyOperand:
        """Classify a physical address into a proxy operand.

        All backends share the paper's address-space layout — what
        differs is how the *send right* is verified, not how proxies are
        decoded.  The controller caches decodes; the cache is flushed on
        backend switches so this method stays authoritative.
        """
        region = self._layout.region_of(paddr)
        if region is Region.MEMORY_PROXY:
            return ProxyOperand(paddr, SpaceKind.MEMORY)
        if region is Region.DEVICE_PROXY:
            return ProxyOperand(paddr, SpaceKind.DEVICE)
        raise AddressError(
            paddr, f"{self._controller.name} was handed a non-proxy address"
        )

    def source_errors(self, device: "UDMADevice", offset: int, nbytes: int) -> int:
        """Veto bits for using ``device`` as the DMA *source*."""
        raise NotImplementedError

    def dest_errors(self, device: "UDMADevice", offset: int, nbytes: int) -> int:
        """Veto bits for using ``device`` as the DMA *destination*."""
        raise NotImplementedError

    # ------------------------------------------------------------ ledger
    def record_fault(self, kind: str) -> None:
        if kind not in FAULT_KINDS:
            raise ConfigurationError(f"unknown protection fault kind {kind!r}")
        if len(self.fault_log) < _FAULT_LOG_CAP:
            self.fault_log.append(kind)

    def record_error_bits(self, errors: int) -> None:
        for kind in fault_kinds_from_errors(errors):
            self.record_fault(kind)

    # ------------------------------------------------------------- misc
    @property
    def spec(self) -> str:
        """The ``make_backend`` string that reproduces this instance."""
        return self.name if self.bug is None else f"{self.name}:{self.bug}"

    def describe(self) -> str:
        return (
            f"{self.spec} (+{self.initiation_check_cycles} cycles/initiation,"
            f" gen={self.generation}, faults={len(self.fault_log)})"
        )
