"""CAPIO-style capability-table protection backend.

Instead of letting the MMU's proxy aliasing *be* the protection check,
this backend keeps an explicit per-node capability table and consults it
on every initiating LOAD:

* a **send capability** per (device, page) — minted when the kernel
  installs the page's NIPT entry, revoked when the entry is cleared.
  Capabilities occupy recycled table slots guarded by per-slot
  generation numbers, so a stale handle to a recycled slot can never
  validate (the CAPIO revocation idiom).
* a **window capability** per (asid, device) — minted by
  ``grant_device_proxy``.  Outcome-wise this duplicates the MMU mapping
  the kernel creates at the same moment (a process without the grant
  cannot even address the proxy page), so it is bookkeeping the
  conformance suite can audit rather than an extra veto.
* devices with no NIPT (e.g. the bench sink) get a **blanket device
  capability** at attach time — their only protection is the window
  grant, same as under the proxy scheme.

The table walk is charged as ``initiation_check_cycles`` on the LOAD;
the *verdict* must match the proxy backend bit-for-bit.

Planted bug ``stale-cap`` (for the conformance suite to catch): the
per-page verdict memo is never invalidated, so a revoked capability for
a recycled NIPT entry keeps validating — exactly the class of bug the
slot generations exist to prevent.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Set, Tuple

from repro.net.nic import ERR_NIPT_INVALID
from repro.protection.base import ProtectionBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.devices.base import UDMADevice


class CapTableBackend(ProtectionBackend):
    name = "captable"
    #: Calibrated against CAPIO's measured fast path: their capability
    #: validation is ~2 dependent cache-line reads (slot entry, then the
    #: generation word) plus compares -- tens of ns on commodity cores,
    #: i.e. ~10 cycles of a 100 MHz SHRIMP-era node once the accesses
    #: hit cache.  The earlier placeholder of 6 undercounted the second
    #: dependent read.
    initiation_check_cycles = 10
    BUGS = ("stale-cap",)

    def __init__(self, bug=None) -> None:
        super().__init__(bug)
        self._slot_gen: List[int] = []
        self._free_slots: List[int] = []
        #: (device name, page index) -> (slot, generation at mint time)
        self._caps: Dict[Tuple[str, int], Tuple[int, int]] = {}
        #: (asid, device name) -> writable
        self._windows: Dict[Tuple[int, str], bool] = {}
        self._blanket: Set[str] = set()
        self._verdict_memo: Dict[Tuple[str, int], bool] = {}

    # ------------------------------------------------------------ wiring
    def device_attached(self, device: "UDMADevice") -> None:
        super().device_attached(device)
        nipt = getattr(device, "nipt", None)
        if nipt is None:
            self._blanket.add(device.name)
            return
        # Backend switches happen on live machines: mint capabilities
        # for entries the kernel installed before we were listening.
        for index, _entry in nipt.entries():
            self._mint(device.name, index)

    # ----------------------------------------------------- change events
    def nipt_changed(self, device: "UDMADevice", index: int, installed: bool) -> None:
        self.generation += 1
        if installed:
            self._mint(device.name, index)
        else:
            self._revoke(device.name, index)

    def note_grant(self, asid: int, device_name: str, writable: bool) -> None:
        super().note_grant(asid, device_name, writable)
        self._windows[(asid, device_name)] = writable

    def note_revoke(self, asid: int, device_name: str) -> None:
        super().note_revoke(asid, device_name)
        self._windows.pop((asid, device_name), None)

    # -------------------------------------------------------- the checks
    def source_errors(self, device: "UDMADevice", offset: int, nbytes: int) -> int:
        # Source-side protection is the window grant, which the MMU
        # enforced when the user formed the address; only the physical
        # constraints (alignment/range/direction) remain.
        return device.physical_errors(True, offset, nbytes)

    def dest_errors(self, device: "UDMADevice", offset: int, nbytes: int) -> int:
        errors = device.physical_errors(False, offset, nbytes)
        if getattr(device, "nipt", None) is not None:
            page = offset // getattr(device, "page_size", self._page_size)
            if not self._check_send_cap(device.name, page):
                errors |= ERR_NIPT_INVALID
        elif device.name not in self._blanket:
            errors |= ERR_NIPT_INVALID
        return errors

    # ------------------------------------------------------------- table
    def _mint(self, device_name: str, index: int) -> None:
        if self._free_slots:
            slot = self._free_slots.pop()
            self._slot_gen[slot] += 1
        else:
            slot = len(self._slot_gen)
            self._slot_gen.append(0)
        self._caps[(device_name, index)] = (slot, self._slot_gen[slot])

    def _revoke(self, device_name: str, index: int) -> None:
        cap = self._caps.pop((device_name, index), None)
        if cap is not None:
            slot, _gen = cap
            # Invalidate every outstanding handle to the slot before it
            # can be recycled for a fresh capability.
            self._slot_gen[slot] += 1
            self._free_slots.append(slot)

    def _check_send_cap(self, device_name: str, page: int) -> bool:
        key = (device_name, page)
        if self.bug == "stale-cap" and self._verdict_memo.get(key):
            return True  # planted: memo never invalidated on revoke
        cap = self._caps.get(key)
        verdict = cap is not None and self._slot_gen[cap[0]] == cap[1]
        if self.bug == "stale-cap" and verdict:
            self._verdict_memo[key] = True
        return verdict

    # --------------------------------------------------- test inspection
    def send_capability(self, device_name: str, page: int) -> bool:
        """Does a valid send capability exist for (device, page)?"""
        cap = self._caps.get((device_name, page))
        return cap is not None and self._slot_gen[cap[0]] == cap[1]

    def window_capability(self, asid: int, device_name: str) -> bool:
        return (asid, device_name) in self._windows
