"""SBPF-style validated-handler protection backend.

The SBPF work lets a user process install a *pre-validated* accessor in
the kernel: the kernel verifies the handler once at install time, then
every fast-path operation runs it in kernel context without a full
syscall.  Here the "handler" for a device is compiled (closed over the
device's transfer-check entry points) when the device is attached, and
every initiating LOAD is charged the cost of trapping into that
in-kernel check — heavier than a capability lookup, far lighter than the
hundreds-of-instructions traditional DMA syscall.

The verdict must match the proxy backend bit-for-bit; only the charged
cycles differ.

Planted bug ``skip-align`` (for the conformance suite to catch): the
install-time validator "optimises away" the alignment test, so the
compiled accessor lets unaligned transfers through to the device.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict

from repro.devices.base import ERR_ALIGNMENT
from repro.protection.base import ProtectionBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.devices.base import UDMADevice


class HandlerBackend(ProtectionBackend):
    name = "handler"
    #: Calibrated against the SBPF paper's measured dispatch: a
    #: protected (ring-crossing-free) entry into the pre-validated
    #: program, the accessor body, and the return.  SBPF reports the
    #: whole round trip at a small fraction of a syscall (~100ns-class
    #: syscall vs ~tens of ns dispatch); modelled here as ~20 cycles of
    #: entry/exit plus ~16 for the compiled range/alignment/export
    #: checks.  The earlier placeholder of 18 counted the entry alone.
    initiation_check_cycles = 36
    BUGS = ("skip-align",)

    def __init__(self, bug=None) -> None:
        super().__init__(bug)
        self._accessors: Dict[str, Callable[[bool, int, int], int]] = {}

    def device_attached(self, device: "UDMADevice") -> None:
        super().device_attached(device)
        self._accessors[device.name] = self._compile(device)

    def _compile(self, device: "UDMADevice") -> Callable[[bool, int, int], int]:
        check = device.check_transfer
        if self.bug == "skip-align":
            def accessor(as_source: bool, offset: int, nbytes: int) -> int:
                return check(as_source, offset, nbytes) & ~ERR_ALIGNMENT
            return accessor
        return check

    def _accessor(self, device: "UDMADevice") -> Callable[[bool, int, int], int]:
        accessor = self._accessors.get(device.name)
        if accessor is None:  # device attached before the backend: compile now
            accessor = self._accessors[device.name] = self._compile(device)
        return accessor

    def source_errors(self, device: "UDMADevice", offset: int, nbytes: int) -> int:
        return self._accessor(device)(True, offset, nbytes)

    def dest_errors(self, device: "UDMADevice", offset: int, nbytes: int) -> int:
        return self._accessor(device)(False, offset, nbytes)
