"""The paper's proxy-address-space protection scheme (the default).

"Address translation hardware on the CPU provides protection" (section
4): because a user process can only *reach* a proxy page the kernel
mapped for it, the MMU has already made the grant decision by the time
the two-instruction sequence hits the controller.  The only remaining
work on the initiating LOAD is the device's own transfer check
(alignment, range, NIPT validity for the NIC) — exactly what the
pre-refactor controller asked of ``device.check_transfer``.

This backend must stay **bit-identical** to that pre-refactor behaviour:
it charges zero extra cycles and delegates the veto verbatim.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.protection.base import ProtectionBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.devices.base import UDMADevice


class ProxyBackend(ProtectionBackend):
    name = "proxy"
    initiation_check_cycles = 0
    BUGS = ()

    def source_errors(self, device: "UDMADevice", offset: int, nbytes: int) -> int:
        return device.check_transfer(True, offset, nbytes)

    def dest_errors(self, device: "UDMADevice", offset: int, nbytes: int) -> int:
        return device.check_transfer(False, offset, nbytes)
