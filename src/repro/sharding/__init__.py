"""Sharded conservative-PDES execution of multi-node SHRIMP clusters.

The cluster is partitioned into shards -- contiguous node blocks, each
with its own event queues -- synchronised by null-message promises with
lookahead equal to the interconnect's wire latency.  See
``docs/SHARDING.md`` for the model and the determinism argument.
"""

from repro.sharding.engine import (
    InProcessEngine,
    ShardRunResult,
    WorkerEngine,
    build_shards,
    run_sharded,
)
from repro.sharding.shard import Shard, probe_canonical_frames
from repro.sharding.spec import ClusterSpec, ShardSpec, partition

__all__ = [
    "ClusterSpec",
    "ShardSpec",
    "Shard",
    "ShardRunResult",
    "InProcessEngine",
    "WorkerEngine",
    "build_shards",
    "partition",
    "probe_canonical_frames",
    "run_sharded",
]
