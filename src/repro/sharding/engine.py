"""Engines that drive a partitioned cluster to completion.

Two engines, one contract: run every shard's conservative schedule until
the workload drains, then merge the per-shard reports into a single
:class:`ShardRunResult` whose node-keyed artefacts (logs, digests,
curated counters) are **bit-identical at any shard count**.

* :class:`InProcessEngine` -- all shards in this process.  Cross-shard
  bounds are read live (a shard asks its peer's promise directly) and
  cross-shard packets are ingested immediately, so there is no round
  protocol and no staleness: this is the deterministic reference and the
  debugging vehicle.

* :class:`WorkerEngine` -- one OS process per shard, exchanging packets
  and null-message promises through the parent in lock-step rounds (a
  star relay: worker -> parent -> owning worker).  The parent forwards a
  round's packets *and* promises together, so every packet that a
  promise could unblock is ingested before the promise applies.

Either engine produces the same simulation: bounds only gate execution
(never reorder it), so staleness costs rounds, not determinism.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationLimitError
from repro.params import CostModel
from repro.sharding.shard import INFINITY, Shard, probe_canonical_frames
from repro.sharding.spec import ClusterSpec, ShardSpec, partition

#: consecutive no-progress, no-traffic, promises-unchanged rounds the
#: worker engine tolerates before declaring the protocol wedged
STALE_ROUND_LIMIT = 3


@dataclass
class ShardRunResult:
    """A completed run, merged across shards.

    ``logs``, ``digests`` and the node-keyed ``counters`` are the
    determinism surface: equal specs must yield equal values regardless
    of shard count or engine.  Shard-keyed counters (``shard{j}.*``) and
    ``rounds`` describe the *execution*, which legitimately differs.
    """

    engine: str
    num_shards: int
    logs: List[str] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    digests: Dict[str, str] = field(default_factory=dict)
    metrics: Dict[str, object] = field(default_factory=dict)
    events_fired: int = 0
    ops_executed: int = 0
    audits: int = 0
    now: int = 0
    sent: int = 0
    retries: int = 0
    net_routed: int = 0
    net_bytes: int = 0
    rounds: int = 0
    #: translation-cache totals aggregated across every node (the bench
    #: report used to show 0.0 here because per-shard stats were dropped)
    xlat_hits: int = 0
    xlat_misses: int = 0

    def curated_counters(self) -> Dict[str, int]:
        """The shard-count-invariant counter subset (plus net totals)."""
        curated = {
            k: v for k, v in self.counters.items()
            if not k.startswith("shard")
        }
        curated["net.routed"] = self.net_routed
        curated["net.bytes"] = self.net_bytes
        return curated


def _merge(engine: str, num_shards: int, reports: List[dict], rounds: int) -> ShardRunResult:
    result = ShardRunResult(engine=engine, num_shards=num_shards, rounds=rounds)
    logs: Dict[int, List[str]] = {}
    for report in reports:
        logs.update(report["logs"])
        result.counters.update(report["counters"])
        result.digests.update(report["digests"])
        result.metrics.update(report["metrics"])
        result.events_fired += report["events_fired"]
        result.ops_executed += report["ops"]
        result.audits += report["audits"]
        result.sent += report["sent"]
        result.retries += report["retries"]
        result.now = max(result.now, report["now"])
        index = report["shard"]
        result.net_routed += report["counters"][f"shard{index}.net.routed"]
        result.net_bytes += report["counters"][f"shard{index}.net.bytes"]
    for node_id in sorted(logs):
        result.logs.extend(logs[node_id])
    for key, value in result.counters.items():
        if key.endswith(".xlat_hits"):
            result.xlat_hits += value
        elif key.endswith(".xlat_misses"):
            result.xlat_misses += value
    return result


def build_shards(
    spec: ClusterSpec,
    num_shards: int,
    costs: "CostModel | None" = None,
    audit: bool = False,
) -> List[Shard]:
    """Probe the canonical frames once, then construct every shard."""
    frames = probe_canonical_frames(spec, costs)
    blocks = partition(spec.num_nodes, num_shards)
    return [
        Shard(
            spec,
            ShardSpec(
                index=j,
                num_shards=num_shards,
                nodes=block,
                rx_frames=frames,
            ),
            costs=costs,
            audit=audit,
        )
        for j, block in enumerate(blocks)
    ]


class InProcessEngine:
    """Every shard in this process: live bounds, immediate delivery."""

    def __init__(
        self,
        spec: ClusterSpec,
        num_shards: int = 1,
        costs: "CostModel | None" = None,
        audit: bool = False,
    ) -> None:
        self.spec = spec
        self.num_shards = num_shards
        #: host seconds spent inside :meth:`run` (construction happens
        #: in ``__init__``, so the run window is pure execution)
        self.timed_seconds: Optional[float] = None
        self.shards = build_shards(spec, num_shards, costs=costs, audit=audit)
        owner: Dict[int, Shard] = {}
        for shard in self.shards:
            for node_id in shard.shard_spec.nodes:
                owner[node_id] = shard
        self._owner = owner
        for shard in self.shards:
            shard.deliver_remote = self._deliver
            shard.remote_bound = self._bound

    def _reattach_after_restore(self) -> None:
        for shard in self.shards:
            shard._reattach_after_restore()

    def _deliver(
        self, src: int, dst: int, arrival: int, chseq: int, data: bytes
    ) -> None:
        self._owner[dst].ingest(src, dst, arrival, chseq, data)

    def _bound(self, src: int, dst: int, lookahead: int) -> float:
        shard = self._owner[src]
        promise = shard.promise(shard.runtimes[src])
        return INFINITY if promise is None else promise + lookahead

    def run(self, max_rounds: int = 1_000_000) -> ShardRunResult:
        t0 = time.perf_counter()
        rounds = 0
        while True:
            rounds += 1
            if rounds > max_rounds:
                raise SimulationLimitError(
                    limit=max_rounds,
                    fired=sum(s.ops_executed for s in self.shards),
                    pending=sum(
                        0 if s.idle() else 1 for s in self.shards
                    ),
                    now=max(
                        rt.clock.now
                        for s in self.shards
                        for rt in s.runtimes.values()
                    ),
                    next_event_time=-1,
                )
            progress = [shard.run_until_blocked() for shard in self.shards]
            if any(progress):
                continue
            if all(shard.idle() for shard in self.shards):
                break
            # Conservative-PDES liveness: the globally minimal operation
            # is always executable under live bounds, so a quiescent,
            # non-idle state is a protocol bug, not a workload property.
            raise ConfigurationError(
                "sharded run wedged with pending operations: "
                + "; ".join(
                    f"shard{s.shard_spec.index} next="
                    + str(min(
                        (s.next_op(rt) for rt in s.runtimes.values()
                         if s.next_op(rt) is not None),
                        default=None,
                    ))
                    for s in self.shards
                    if not s.idle()
                )
            )
        self.timed_seconds = time.perf_counter() - t0
        return _merge(
            "in-process",
            self.num_shards,
            [shard.report() for shard in self.shards],
            rounds,
        )


# --------------------------------------------------------------- workers
def _worker_main(conn, spec: ClusterSpec, shard_spec: ShardSpec, audit: bool) -> None:
    """One shard in its own OS process; lock-step rounds with the parent.

    Per round: execute everything locally safe, then send the freshly
    generated cross-shard packets, the per-out-link promises, and an
    idle/progress flag.  The parent relays packets and promises and the
    round repeats until it sends ``finish`` (whereupon the final report
    ships back) or ``abort``.
    """
    try:
        shard = Shard(spec, shard_spec, audit=audit)
        conn.send({"ready": True})
        while True:
            progress = shard.run_until_blocked()
            msgs = shard.outbox
            shard.outbox = []
            conn.send({
                "msgs": msgs,
                "promises": shard.out_promises(),
                "idle": shard.idle(),
                "progress": progress or bool(msgs),
            })
            command = conn.recv()
            if command.get("cmd") == "finish":
                conn.send({"report": shard.report()})
                return
            if command.get("cmd") == "abort":
                return
            for src, dst, arrival, chseq, data in command.get("msgs", ()):
                shard.ingest(src, dst, arrival, chseq, data)
            for (src, dst), bound in command.get("bounds", {}).items():
                shard.set_chan_bound(src, dst, bound)
    except Exception as exc:  # ship the failure; never hang the parent
        try:
            conn.send({"error": f"{type(exc).__name__}: {exc}"})
        except Exception:
            pass
        raise


class WorkerEngine:
    """One worker process per shard, packets and promises star-relayed.

    ``fork`` is preferred (cheap, inherits the import state); ``spawn``
    is the fallback where fork is unavailable.  Worker count equals
    shard count -- the engine is about *parallelism*, so there is no
    oversubscription knob.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        num_shards: int,
        audit: bool = False,
        mp_context: "str | None" = None,
    ) -> None:
        if num_shards < 1:
            raise ConfigurationError("WorkerEngine needs >= 1 shard")
        self.spec = spec
        self.num_shards = num_shards
        self.audit = audit
        #: host seconds from "every worker built its shard" to "relay
        #: drained" -- the benchmark's timed window (construction and
        #: final-report pickling excluded)
        self.timed_seconds: Optional[float] = None
        if mp_context is None:
            methods = mp.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else methods[0]
        self._ctx = mp.get_context(mp_context)

    def run(self, max_rounds: int = 1_000_000) -> ShardRunResult:
        frames = probe_canonical_frames(self.spec)
        blocks = partition(self.spec.num_nodes, self.num_shards)
        shard_specs = [
            ShardSpec(
                index=j,
                num_shards=self.num_shards,
                nodes=block,
                rx_frames=frames,
            )
            for j, block in enumerate(blocks)
        ]
        owner: Dict[int, int] = {
            node_id: j
            for j, block in enumerate(blocks)
            for node_id in block
        }
        conns = []
        workers = []
        for shard_spec in shard_specs:
            parent_conn, child_conn = self._ctx.Pipe()
            worker = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, self.spec, shard_spec, self.audit),
                daemon=True,
            )
            worker.start()
            child_conn.close()
            conns.append(parent_conn)
            workers.append(worker)
        try:
            for conn in conns:
                ready = conn.recv()
                if "error" in ready:
                    raise ConfigurationError(
                        f"shard worker failed to build: {ready['error']}"
                    )
            t0 = time.perf_counter()
            rounds = self._relay(conns, owner, max_rounds)
            self.timed_seconds = time.perf_counter() - t0
            reports = []
            for conn in conns:
                conn.send({"cmd": "finish"})
            for conn in conns:
                final = conn.recv()
                if "error" in final:
                    raise ConfigurationError(
                        f"shard worker failed: {final['error']}"
                    )
                reports.append(final["report"])
        except BaseException:
            for conn in conns:
                try:
                    conn.send({"cmd": "abort"})
                except Exception:
                    pass
            raise
        finally:
            for worker in workers:
                worker.join(timeout=30)
                if worker.is_alive():  # pragma: no cover - defensive
                    worker.terminate()
        return _merge("worker", self.num_shards, reports, rounds)

    def _relay(self, conns, owner: Dict[int, int], max_rounds: int) -> int:
        """Drive lock-step rounds until every shard is idle and quiet."""
        rounds = 0
        stale = 0
        last_promises: Optional[dict] = None
        while True:
            rounds += 1
            if rounds > max_rounds:
                raise SimulationLimitError(
                    limit=max_rounds, fired=rounds, pending=self.num_shards,
                    now=-1, next_event_time=-1,
                )
            states = [conn.recv() for conn in conns]
            for state in states:
                if "error" in state:
                    raise ConfigurationError(
                        f"shard worker failed: {state['error']}"
                    )
            outgoing_msgs: List[List[tuple]] = [[] for _ in conns]
            outgoing_bounds: List[dict] = [{} for _ in conns]
            traffic = False
            all_promises = {}
            for state in states:
                for msg in state["msgs"]:
                    outgoing_msgs[owner[msg[1]]].append(msg)
                    traffic = True
                for (src, dst), bound in state["promises"].items():
                    outgoing_bounds[owner[dst]][(src, dst)] = bound
                    all_promises[(src, dst)] = bound
            if not traffic and all(s["idle"] for s in states):
                return rounds
            progressed = any(s["progress"] for s in states)
            if not progressed and not traffic and all_promises == last_promises:
                stale += 1
                if stale >= STALE_ROUND_LIMIT:
                    raise ConfigurationError(
                        "worker-engine relay wedged: no progress, no "
                        f"traffic, promises unchanged for {stale} rounds "
                        f"(promises: {all_promises})"
                    )
            else:
                stale = 0
            last_promises = all_promises
            for conn, msgs, bounds in zip(conns, outgoing_msgs, outgoing_bounds):
                conn.send({"msgs": msgs, "bounds": bounds})


def run_sharded(
    spec: ClusterSpec,
    num_shards: int = 1,
    engine: str = "in-process",
    audit: bool = False,
) -> ShardRunResult:
    """Convenience front door used by the CLI, chaos oracle and bench."""
    if engine == "in-process":
        return InProcessEngine(spec, num_shards, audit=audit).run()
    if engine == "worker":
        return WorkerEngine(spec, num_shards, audit=audit).run()
    raise ConfigurationError(
        f"unknown sharding engine {engine!r} (use 'in-process' or 'worker')"
    )
