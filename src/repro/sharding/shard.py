"""One shard of a partitioned SHRIMP cluster.

A :class:`Shard` owns a contiguous block of nodes, each built on its own
:class:`~repro.sim.clock.ShardClock`, plus a :class:`ShardInterconnect`
that intercepts the routing backplane: deliveries to local nodes are
scheduled as keyed arrival events, deliveries to remote nodes become
cross-shard handoffs (the *only* inter-shard channel).

Execution is conservative PDES.  A node's next **operation** is either
its earliest queued event or its next workload step; operations execute
strictly in canonical ``(time, key)`` order per node, and an operation
may only execute while it is provably safe: earlier than every in-link's
*bound* (the link source's promised next-operation time plus the link's
lookahead -- the minimum wire latency).  Bounds only ever gate
execution, never reorder it, which is the whole determinism argument:
the per-node operation sequence -- and hence every cycle count, counter
and memory image -- is a pure function of the
:class:`~repro.sharding.spec.ClusterSpec`, identical at any shard count
and under either engine.

Workload steps are *atomic*: the node's CPU charges cycles without
firing events (:class:`~repro.sim.clock.ShardClock` defers them), so a
step is one indivisible operation.  That is why the workload uses only
the paper's raw two-instruction initiation (``UdmaUser.initiate``,
never ``wait=True`` polling): a bounded, non-blocking step that cannot
need to coast the clock.
"""

from __future__ import annotations

import hashlib
from functools import partial
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.workloads import make_payload
from repro.config import MachineConfig
from repro.errors import ConfigurationError, DmaError
from repro.kernel.invariants import InvariantChecker
from repro.kernel.process import Process
from repro.machine import Machine
from repro.net.interconnect import Interconnect
from repro.net.nic import ShrimpNic
from repro.net.packet import Packet
from repro.net.pool import PacketPool
from repro.obs import Observability, ObsConfig
from repro.params import CostModel, shrimp
from repro.sharding.spec import RETRY_GAP_CYCLES, ClusterSpec, ShardSpec
from repro.sim.clock import Clock, ShardClock
from repro.sim.trace import NULL_TRACER, Tracer
from repro.userlib.udma import UdmaUser

#: canonical key class of a workload step: sorts after every hardware
#: event (empty key) and every network arrival ((1, src, seq)) at the
#: same cycle
STEP_KEY: Tuple = (2,)

#: "no bound" sentinel (an unreachable simulated time)
INFINITY = float("inf")


class ShardInterconnect(Interconnect):
    """The backplane as seen from inside one shard.

    Latency accounting (hops, per-hop cycles) is inherited; delivery is
    redirected to the owning shard's :meth:`Shard.handoff`, which either
    schedules a keyed arrival on a local node's clock or emits a
    cross-shard handoff.  Fault injectors and span tracking are not
    supported in sharded mode (the chaos wire-fault harness drives the
    single-clock engine).
    """

    def __init__(self, shard: "Shard", costs: CostModel, spec: ClusterSpec) -> None:
        super().__init__(
            Clock(),  # never consulted: tracing is off and delivery is keyed
            costs,
            NULL_TRACER,
            topology=spec.topology,
            mesh_width=spec.mesh_width,
        )
        self.validate_topology(spec.num_nodes)
        self._shard = shard
        if spec.pooling:
            # One pool per shard: free lists never cross a process
            # boundary (the worker engine pickles only wire bytes).
            self.packet_pool = PacketPool()

    def route(self, src_node: int, dst_node: int, wire) -> None:
        if self.fault_injector is not None:
            raise ConfigurationError(
                "wire-fault injection is not supported in sharded mode"
            )
        nbytes = wire.wire_bytes if isinstance(wire, Packet) else len(wire)
        delay = self.hops(src_node, dst_node) * self.costs.hop_cycles
        self.packets_routed += 1
        self.bytes_routed += nbytes
        self._shard.handoff(src_node, dst_node, delay, wire)


@dataclass
class NodeRuntime:
    """One node's simulation state plus its self-driving send schedule."""

    node_id: int
    machine: Machine
    nic: ShrimpNic
    clock: ShardClock
    tx_proc: Process
    udma: UdmaUser
    buffer: int
    src_proxy: int
    dst_proxy: int
    msg_bytes: int
    messages_total: int
    gap: int
    next_step: Optional[int]
    rx_proc: Process
    rx_buf: int
    in_links: List[Tuple[int, int]] = field(default_factory=list)
    sent: int = 0
    steps: int = 0
    retries: int = 0
    log: List[str] = field(default_factory=list)


def build_node(
    spec: ClusterSpec,
    costs: CostModel,
    node_id: int,
    obs: Observability,
    interconnect: Interconnect,
) -> Tuple[Machine, ShrimpNic]:
    """Construct one node (machine + NIC) on a fresh ShardClock."""
    machine = Machine(
        config=MachineConfig(
            costs=costs,
            mem_size=spec.mem_size,
            obs=obs,
            fast_paths=True,
            iommu=spec.iommu,
        ),
        clock=ShardClock(pooling=spec.pooling),
        name=f"node{node_id}",
    )
    nic = ShrimpNic(
        node_id=node_id,
        costs=costs,
        physmem=machine.physmem,
        nipt_entries=spec.nipt_entries,
        cut_through=True,
    )
    machine.attach_device(nic)
    nic.connect(interconnect)
    machine.cpu.store_snoop = nic.snoop_store
    return machine, nic


def _export_receive_buffer(
    machine: Machine, process: Process, vaddr: int, npages: int
) -> Tuple[int, ...]:
    """Receiver-side export: resident, dirty, pinned (cluster.py's model)."""
    if vaddr % machine.layout.page_size:
        raise ConfigurationError("receive buffers must be page aligned")
    frames: List[int] = []
    base_vpage = vaddr // machine.layout.page_size
    for i in range(npages):
        frame = machine.kernel.vm.touch_resident(process, base_vpage + i)
        pte = process.page_table.get(base_vpage + i)
        assert pte is not None
        pte.dirty = True  # receiving-side I3: incoming DMA will write it
        machine.kernel.frames.pin(frame)
        frames.append(frame)
    return tuple(frames)


def setup_node(
    spec: ClusterSpec,
    costs: CostModel,
    node_id: int,
    machine: Machine,
    nic: ShrimpNic,
    canonical_frames: Optional[Tuple[int, ...]] = None,
) -> NodeRuntime:
    """Run the per-node OS setup and return the workload runtime.

    Every node performs the identical sequence -- receive process and
    buffer, export, sender NIPT install (naming the *canonical* frames),
    send process, grant, buffer fill -- so construction is deterministic
    and the canonical-frame substitution is sound.  The assertion makes
    a divergence loud rather than a silent digest mismatch.
    """
    ps = costs.page_size
    npages = spec.channel_pages
    nbytes = npages * ps
    kernel = machine.kernel

    rx_proc = machine.create_process(f"rx{node_id}")
    rx_buf = kernel.syscalls.alloc(rx_proc, nbytes)
    dst = spec.dst_of(node_id)
    if spec.iommu:
        # Virtual-address tier: export the window to the IOMMU and leave
        # the buffer *cold* -- no residency, no pin -- so the first
        # delivery to each page parks, fault-services and replays.  The
        # NIPT names the destination's (asid, vpage); identical
        # construction makes our own rx identifiers the destination's,
        # so no canonical-frame probe is needed (or possible: frames are
        # assigned at fault-service time).
        assert machine.iommu is not None
        base_vpage = rx_buf // ps
        for i in range(npages):
            machine.iommu.register_window(
                rx_proc.asid, base_vpage + i, writable=True
            )
        for k in range(npages):
            nic.nipt.set_entry(k, dst, base_vpage + k, rx_proc.asid)
    else:
        frames = _export_receive_buffer(machine, rx_proc, rx_buf, npages)
        if canonical_frames is not None and frames != tuple(canonical_frames):
            raise ConfigurationError(
                f"node {node_id} receive frames {frames} diverged from the "
                f"canonical {tuple(canonical_frames)}; deterministic "
                "construction is broken"
            )
        # Sender side of the ring channel node_id -> dst: NIPT entries
        # name the destination's canonical frames (identical construction
        # makes them knowable without touching the destination's shard).
        for k, frame in enumerate(canonical_frames or frames):
            nic.nipt.set_entry(k, dst, frame)

    tx_proc = machine.create_process(f"tx{node_id}")
    grant = kernel.syscalls.grant_device_proxy(
        tx_proc, nic.name, writable=True, pages=(0, npages)
    )
    buffer = kernel.syscalls.alloc(tx_proc, nbytes)
    kernel.scheduler.switch_to(tx_proc)
    machine.cpu.write_bytes(
        buffer, make_payload(spec.msg_bytes, seed=1 + node_id % 251)
    )
    return NodeRuntime(
        node_id=node_id,
        machine=machine,
        nic=nic,
        clock=machine.clock,  # type: ignore[arg-type]
        tx_proc=tx_proc,
        udma=UdmaUser(machine, tx_proc),
        buffer=buffer,
        src_proxy=machine.layout.proxy(buffer),
        dst_proxy=grant,
        msg_bytes=spec.msg_bytes,
        messages_total=spec.messages_per_node,
        gap=spec.gap_cycles,
        rx_proc=rx_proc,
        rx_buf=rx_buf,
        # Setup itself charges the node's clock (identically on every
        # node); the schedule is relative to that end so the per-node
        # jitter survives whatever setup costs.
        next_step=machine.clock.now + spec.start_cycle + spec.start_offset(node_id),
    )


def probe_canonical_frames(
    spec: ClusterSpec, costs: "CostModel | None" = None
) -> Tuple[int, ...]:
    """Build one throwaway template node; return its receive frames."""
    if spec.iommu:
        # Virtual NIPT entries carry (asid, vpage), not frames; frames
        # are assigned at fault-service time, so there is nothing to
        # probe and nothing for senders to need.
        return ()
    costs = costs if costs is not None else shrimp()
    scratch = Interconnect(Clock(), costs, topology="linear")
    obs = Observability(ObsConfig(metrics=False))
    machine, nic = build_node(spec, costs, 0, obs, scratch)
    rt = setup_node(spec, costs, 0, machine, nic)
    del rt
    ps = costs.page_size
    # Re-derive the frames from the NIPT install (entry k names frame k).
    return tuple(
        nic.nipt.require(k).dst_page for k in range(spec.channel_pages)
    )


class Shard:
    """A block of nodes plus the conservative execution machinery."""

    def __init__(
        self,
        spec: ClusterSpec,
        shard_spec: ShardSpec,
        costs: "CostModel | None" = None,
        tracer: "Tracer | None" = None,
        audit: bool = False,
    ) -> None:
        self.spec = spec
        self.shard_spec = shard_spec
        self.costs = costs if costs is not None else shrimp()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: per-shard observability plane; node metrics land as node{i}.*
        self.obs = Observability(ObsConfig(metrics=True))
        self.interconnect = ShardInterconnect(self, self.costs, spec)
        self.runtimes: Dict[int, NodeRuntime] = {}
        self.order: List[int] = list(shard_spec.nodes)
        self.ops_executed = 0
        self.audit_count = 0
        self._checkers: Dict[int, InvariantChecker] = {}
        self._audit = audit
        #: per-(src, dst) channel sequence numbers, assigned in source
        #: causal order -- the second component of every arrival key
        self._chseq: Dict[Tuple[int, int], int] = {}
        #: cross-shard messages awaiting relay: (src, dst, arrival,
        #: chseq, wire_bytes)
        self.outbox: List[Tuple[int, int, int, int, bytes]] = []
        #: absolute safe bounds for cross-shard in-links, from null
        #: messages: (src, dst) -> promised time + lookahead
        self.chan_bound: Dict[Tuple[int, int], float] = {}
        #: engine override: called for cross-shard deliveries instead of
        #: the outbox (the in-process engine delivers immediately)
        self.deliver_remote: Optional[Callable[[int, int, int, int, bytes], None]] = None
        #: engine override: live bound for a cross-shard in-link (the
        #: in-process engine reads the peer shard's promise directly)
        self.remote_bound: Optional[Callable[[int, int, int], float]] = None

        lookaheads = spec.lookaheads(self.costs)
        local = set(shard_spec.nodes)
        for node_id in self.order:
            machine, nic = build_node(
                spec, self.costs, node_id, self.obs, self.interconnect
            )
            rt = setup_node(
                spec, self.costs, node_id, machine, nic,
                canonical_frames=shard_spec.rx_frames or None,
            )
            rt.in_links = [
                (s, lookaheads[(s, d)])
                for (s, d) in spec.links()
                if d == node_id
            ]
            self.runtimes[node_id] = rt
            if audit:
                self._checkers[node_id] = InvariantChecker(machine.kernel)
        self._cross_out = [
            (s, d, lookaheads[(s, d)])
            for (s, d) in spec.links()
            if s in local and d not in local
        ]
        reg = self.obs.registry
        ic = self.interconnect
        p = f"shard{shard_spec.index}."
        reg.counter(p + "backplane.packets_routed", lambda: ic.packets_routed)
        reg.counter(p + "backplane.bytes_routed", lambda: ic.bytes_routed)
        reg.counter(p + "ops_executed", lambda: self.ops_executed)

    def _reattach_after_restore(self) -> None:
        """Rebind sampled metric reads after a snapshot restore.

        Node machines rebind their own instruments first (each takes the
        registry's rebinding window itself), then the shard-level
        backplane counters get fresh closures over the restored
        interconnect.
        """
        for rt in self.runtimes.values():
            rt.machine._reattach_after_restore()
        reg = self.obs.registry
        ic = self.interconnect
        p = f"shard{self.shard_spec.index}."
        with reg.rebinding():
            reg.counter(
                p + "backplane.packets_routed", lambda: ic.packets_routed
            )
            reg.counter(p + "backplane.bytes_routed", lambda: ic.bytes_routed)
            reg.counter(p + "ops_executed", lambda: self.ops_executed)

    # ----------------------------------------------------------- delivery
    def handoff(self, src: int, dst: int, delay: int, wire) -> None:
        """Deliver a routed packet: keyed local arrival or cross-shard.

        The arrival time is the sending node's *current* cycle plus the
        wire delay; the key ``(1, src, chseq)`` fixes the arrival's rank
        among same-cycle operations at the destination, independent of
        which shard -- or which worker process -- performed the delivery.
        """
        arrival = self.runtimes[src].clock.now + delay
        chseq = self._chseq.get((src, dst), 0)
        self._chseq[(src, dst)] = chseq + 1
        if self.tracer.enabled:
            self.tracer.emit(
                self.runtimes[src].clock.now,
                f"shard{self.shard_spec.index}",
                "handoff",
                src=src,
                dst=dst,
                arrival=arrival,
                seq=chseq,
            )
        rt = self.runtimes.get(dst)
        if rt is not None:
            # partial (not a lambda): in-flight handoffs are snapshot
            # state and must pickle with the shard clock's event queue.
            rt.clock.schedule_keyed(
                arrival, (1, src, chseq), partial(rt.nic.deliver, wire)
            )
            return
        if isinstance(wire, Packet):
            data = wire.encode()
            # Cross-shard transit is always wire bytes; the pooled shell
            # has served its purpose and can go straight home.
            pool = self.interconnect.packet_pool
            if pool is not None:
                pool.release(wire)
        else:
            data = bytes(wire)
        if self.deliver_remote is not None:
            self.deliver_remote(src, dst, arrival, chseq, data)
        else:
            self.outbox.append((src, dst, arrival, chseq, data))

    def ingest(self, src: int, dst: int, arrival: int, chseq: int, data: bytes) -> None:
        """Accept a cross-shard arrival (wire bytes; the decode path)."""
        rt = self.runtimes[dst]
        rt.clock.schedule_keyed(
            arrival, (1, src, chseq), partial(rt.nic.deliver, data)
        )

    def set_chan_bound(self, src: int, dst: int, bound: "float | None") -> None:
        """Apply a null message: link (src, dst) is safe strictly below
        ``bound`` (None = the source is finished; no further traffic)."""
        self.chan_bound[(src, dst)] = INFINITY if bound is None else bound
        if self.tracer.enabled:
            self.tracer.emit(
                0, f"shard{self.shard_spec.index}", "lbts",
                src=src, dst=dst, bound=bound,
            )

    # ---------------------------------------------------------- operations
    def next_op(self, rt: NodeRuntime) -> Optional[Tuple[int, Tuple, str]]:
        """The node's earliest potential operation: (time, key, kind)."""
        event = rt.clock.next_op()
        step: Optional[Tuple[int, Tuple, str]] = None
        if rt.next_step is not None:
            # A step that fell behind the node's own clock (a long event
            # burst) runs at `now`; both inputs are per-node deterministic.
            step = (max(rt.next_step, rt.clock.now), STEP_KEY, "step")
        if event is not None:
            candidate = (event[0], event[1], "event")
            if step is None or candidate[:2] <= step[:2]:
                return candidate
        return step

    def promise(self, rt: NodeRuntime) -> Optional[int]:
        """Lower bound on the node's next operation time (None = done)."""
        op = self.next_op(rt)
        return None if op is None else op[0]

    def bound_for(self, rt: NodeRuntime) -> float:
        """Conservative safe horizon: min over in-links of promise + L."""
        bound = INFINITY
        for src, lookahead in rt.in_links:
            peer = self.runtimes.get(src)
            if peer is not None:
                p = self.promise(peer)
                b = INFINITY if p is None else p + lookahead
            elif self.remote_bound is not None:
                b = self.remote_bound(src, rt.node_id, lookahead)
            else:
                b = self.chan_bound.get((src, rt.node_id), 0)
            if b < bound:
                bound = b
        return bound

    @staticmethod
    def executable(op: Tuple[int, Tuple, str], bound: float) -> bool:
        """Safe to execute now?

        Local hardware events (empty key) may run at the bound itself: a
        same-cycle arrival sorts after them anyway.  Arrivals and steps
        need the strict inequality -- an in-flight arrival at exactly
        the bound could still sort before them.
        """
        time, key, _kind = op
        if key == ():
            return time <= bound
        return time < bound

    def execute(self, rt: NodeRuntime, op: Tuple[int, Tuple, str]) -> None:
        _time, _key, kind = op
        if kind == "event":
            rt.clock.fire_next()
        else:
            self._execute_step(rt)
        self.ops_executed += 1
        checker = self._checkers.get(rt.node_id)
        if checker is not None:
            checker.check_all()
            self.audit_count += 1

    def _execute_step(self, rt: NodeRuntime) -> None:
        """One atomic workload step: mark the message, initiate the send.

        Exactly the paper's user-level critical path -- alignment check,
        STORE to the destination proxy, fence, LOAD of the status word --
        with a busy device folded into the schedule as a deterministic
        retry.  No polling, no coasting: the step is bounded CPU work.
        """
        assert rt.next_step is not None
        step_t = max(rt.next_step, rt.clock.now)
        if rt.clock.now < step_t:
            rt.clock.advance(step_t - rt.clock.now)  # idle until the step
        cpu = rt.machine.cpu
        cpu.store(rt.buffer, rt.sent + 1)  # the app stamps its message
        cpu.execute(self.costs.udma_align_check_cycles)
        status = rt.udma.initiate(rt.dst_proxy, rt.src_proxy, rt.msg_bytes)
        if status.hard_error:
            raise DmaError(
                f"node {rt.node_id} initiation failed: {status.describe()}"
            )
        if status.started:
            rt.sent += 1
            outcome = "sent"
            rt.next_step = (
                step_t + rt.gap if rt.sent < rt.messages_total else None
            )
        else:
            rt.retries += 1
            outcome = "busy"
            rt.next_step = step_t + RETRY_GAP_CYCLES
        rt.steps += 1
        rt.log.append(
            f"n{rt.node_id:03d} {rt.steps:04d} {outcome:<5} "
            f"m={rt.sent}/{rt.messages_total} t={rt.clock.now} r={rt.retries}"
        )

    # ------------------------------------------------------------- running
    def run_until_blocked(self) -> bool:
        """Execute every provably-safe operation; True if any ran.

        Node-at-a-time batching: executing a node's operations can only
        *raise* other nodes' bounds (promises are monotone), so a stale
        bound is merely conservative, never unsafe.
        """
        progress = False
        advanced = True
        while advanced:
            advanced = False
            for node_id in self.order:
                rt = self.runtimes[node_id]
                while True:
                    op = self.next_op(rt)
                    if op is None:
                        break
                    if not self.executable(op, self.bound_for(rt)):
                        break
                    self.execute(rt, op)
                    advanced = True
                    progress = True
        return progress

    def idle(self) -> bool:
        """No operations remain on any node."""
        return all(self.next_op(rt) is None for rt in self.runtimes.values())

    def out_promises(self) -> Dict[Tuple[int, int], "float | None"]:
        """Null-message payload: per cross-shard out-link safe bound."""
        promises: Dict[Tuple[int, int], "float | None"] = {}
        for src, dst, lookahead in self._cross_out:
            p = self.promise(self.runtimes[src])
            promises[(src, dst)] = None if p is None else p + lookahead
        return promises

    # ------------------------------------------------------------ observers
    def node_counters(self, rt: NodeRuntime) -> Dict[str, int]:
        """Curated per-node counters (the chaos oracle's set)."""
        machine = rt.machine
        cpu, vm = machine.cpu, machine.kernel.vm
        sched = machine.kernel.scheduler
        i = rt.node_id
        extra: Dict[str, int] = {}
        if machine.iommu is not None:
            # The park/replay ledger joins the determinism surface: a
            # shard-count-dependent fault service would show up here
            # before it corrupted a digest.
            extra = {
                f"io{i}.{key}": value
                for key, value in machine.iommu.counters().items()
            }
        return {
            **extra,
            f"n{i}.now": rt.clock.now,
            f"n{i}.loads": cpu.loads,
            f"n{i}.stores": cpu.stores,
            f"n{i}.instructions": cpu.instructions,
            f"n{i}.charged": cpu.charged_cycles,
            f"n{i}.faults": vm.faults_handled,
            f"n{i}.proxy_faults": vm.proxy_faults,
            f"n{i}.mmu_faults": machine.mmu.faults,
            f"n{i}.switches": sched.switches,
            f"n{i}.invals": sched.invals_fired,
            f"n{i}.xlat_hits": cpu.xlat_hits,
            f"n{i}.xlat_misses": cpu.xlat_misses,
            f"nic{i}.tx": rt.nic.packets_sent,
            f"nic{i}.rx": rt.nic.packets_received,
            f"nic{i}.rx_err": rt.nic.rx_errors,
            f"nic{i}.bytes_rx": rt.nic.bytes_received,
        }

    def report(self) -> dict:
        """Everything the engine needs to merge: logs, counters, digests.

        Keys are per-node, so merging across shards is a plain union and
        the merged artefacts are bit-identical at any shard count.
        """
        logs: Dict[int, List[str]] = {}
        counters: Dict[str, int] = {}
        digests: Dict[str, str] = {}
        events = 0
        now = 0
        sent = retries = 0
        for node_id in self.order:
            rt = self.runtimes[node_id]
            summary = (
                f"n{node_id:03d} done  sent={rt.sent} retries={rt.retries} "
                f"rx={rt.nic.packets_received} t={rt.clock.now}"
            )
            logs[node_id] = rt.log + [summary]
            counters.update(self.node_counters(rt))
            h = hashlib.blake2b(digest_size=16)
            h.update(rt.machine.physmem.view(0, rt.machine.physmem.size))
            digests[f"n{node_id}"] = h.hexdigest()
            events += rt.clock.events_fired
            now = max(now, rt.clock.now)
            sent += rt.sent
            retries += rt.retries
        counters[f"shard{self.shard_spec.index}.net.routed"] = (
            self.interconnect.packets_routed
        )
        counters[f"shard{self.shard_spec.index}.net.bytes"] = (
            self.interconnect.bytes_routed
        )
        return {
            "shard": self.shard_spec.index,
            "logs": logs,
            "counters": counters,
            "digests": digests,
            "events_fired": events,
            "now": now,
            "sent": sent,
            "retries": retries,
            "ops": self.ops_executed,
            "audits": self.audit_count,
            "metrics": self.obs.registry.snapshot(),
        }
