"""Specifications for the sharded conservative-PDES cluster.

A :class:`ClusterSpec` describes a *self-driving* multi-node workload --
a Paragon-style mesh/torus of nodes, a ring of deliberate-update
channels, and a fixed per-node send schedule -- precisely enough that
any engine (single shard, K in-process shards, K worker processes) can
reconstruct the identical simulation from it.  The spec is plain data:
it crosses process boundaries by pickling and serialises to JSON for
failing-schedule artifacts.

The determinism contract hangs off two properties of the spec:

* **Deterministic construction.**  Every node is built by the same code
  path with the same parameters, so the physical frames backing each
  node's receive buffer are identical across nodes.  The sending side's
  NIPT entries can therefore name the *canonical* frames (probed from a
  template node) without ever touching the receiving node's shard --
  cross-shard packet handoff stays the only inter-shard channel.

* **Fixed lookahead.**  The minimum latency from a send on ``src`` to an
  arrival at ``dst`` is the dimension-ordered routing distance times
  ``hop_cycles``.  That constant is each link's *lookahead*: a shard may
  safely execute everything strictly earlier than its neighbours'
  promised next-operation time plus the lookahead.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.params import CostModel, shrimp

#: gap before a failed (device-busy) initiation is retried
RETRY_GAP_CYCLES = 512


@dataclass(frozen=True)
class ClusterSpec:
    """One reproducible sharded-cluster workload.

    Attributes:
        num_nodes: cluster size (must fill the topology's rectangle).
        topology: ``"linear"``, ``"mesh2d"`` or ``"torus2d"``.
        mesh_width: columns of the 2D grid (0 = square).
        messages_per_node: sends each node performs.
        msg_bytes: payload bytes per message (one page max: each send is
            a single bounded two-instruction initiation).
        gap_cycles: nominal cycles between a node's sends.
        start_cycle: earliest first-send time.
        seed: perturbs per-node start offsets (schedule diversity for
            the differential suite).
        mem_size: per-node RAM.
        channel_pages: channel/buffer length in pages.
        nipt_entries: sender NIPT size (sized to the channel).
        pooling: enable the event/packet free-list fast lane (exact: the
            simulation is bit-identical on or off, which the chaos
            ``--no-pool`` differential mode verifies).
        iommu: run every node with the virtual-address RDMA tier
            (:mod:`repro.iommu`): NIPT entries name (asid, virtual page)
            on the receiver, receive buffers start *cold* (allocated but
            not resident, never pinned), and the first delivery to each
            page takes the park / fault-service / replay path.  Park and
            replay are local clock events, so the determinism contract
            is unchanged: equal specs yield bit-identical artefacts at
            any shard count.
    """

    num_nodes: int = 64
    topology: str = "mesh2d"
    mesh_width: int = 0
    messages_per_node: int = 8
    msg_bytes: int = 2048
    gap_cycles: int = 6000
    start_cycle: int = 1000
    seed: int = 0
    mem_size: int = 96 * 4096
    channel_pages: int = 1
    nipt_entries: int = 16
    pooling: bool = True
    iommu: bool = False

    def __post_init__(self) -> None:
        costs = shrimp()
        if self.num_nodes < 2:
            raise ConfigurationError(
                f"a sharded cluster needs >= 2 nodes, got {self.num_nodes}"
            )
        if not 4 <= self.msg_bytes <= costs.page_size:
            raise ConfigurationError(
                f"msg_bytes must be in [4, {costs.page_size}] so each send "
                f"is one bounded initiation, got {self.msg_bytes}"
            )
        if self.msg_bytes % 4:
            raise ConfigurationError(
                f"msg_bytes must be 4-byte aligned, got {self.msg_bytes}"
            )
        if self.messages_per_node < 1:
            raise ConfigurationError("messages_per_node must be >= 1")
        if self.gap_cycles < 1 or self.start_cycle < 0:
            raise ConfigurationError("gap_cycles/start_cycle out of range")

    # ------------------------------------------------------------ schedule
    def start_offset(self, node: int) -> int:
        """Deterministic per-node jitter of the first send (seed-mixed)."""
        h = (node * 2654435761 + self.seed * 97003 + 12345) & 0xFFFFFFFF
        return h % 997

    def dst_of(self, node: int) -> int:
        """The ring: node ``i`` sends to node ``i + 1`` (mod N)."""
        return (node + 1) % self.num_nodes

    def links(self) -> List[Tuple[int, int]]:
        """Every configured channel as a (src, dst) pair."""
        return [(i, self.dst_of(i)) for i in range(self.num_nodes)]

    def lookaheads(self, costs: "CostModel | None" = None) -> Dict[Tuple[int, int], int]:
        """Per-link lookahead: min wire latency = hops x hop_cycles."""
        from repro.net.interconnect import Interconnect
        from repro.sim.clock import Clock

        costs = costs if costs is not None else shrimp()
        probe = Interconnect(
            Clock(), costs, topology=self.topology, mesh_width=self.mesh_width
        )
        probe.validate_topology(self.num_nodes)
        return {
            (s, d): probe.hops(s, d) * costs.hop_cycles
            for (s, d) in self.links()
        }

    # --------------------------------------------------------- serialising
    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterSpec":
        return cls(**data)


@dataclass(frozen=True)
class ShardSpec:
    """One shard's slice of a :class:`ClusterSpec`.

    Attributes:
        index: shard number in [0, num_shards).
        num_shards: total shard count.
        nodes: node ids this shard owns (a contiguous block).
        rx_frames: canonical receive-buffer frames every node's identical
            construction yields (probed once from a template node); the
            sender side's NIPT entries name these without touching the
            receiving shard.
    """

    index: int
    num_shards: int
    nodes: Tuple[int, ...]
    rx_frames: Tuple[int, ...] = field(default=())


def partition(num_nodes: int, num_shards: int) -> List[Tuple[int, ...]]:
    """Contiguous, near-equal node blocks, one per shard."""
    if not 1 <= num_shards <= num_nodes:
        raise ConfigurationError(
            f"num_shards must be in [1, {num_nodes}], got {num_shards}"
        )
    base, extra = divmod(num_nodes, num_shards)
    blocks: List[Tuple[int, ...]] = []
    start = 0
    for j in range(num_shards):
        size = base + (1 if j < extra else 0)
        blocks.append(tuple(range(start, start + size)))
        start += size
    return blocks
