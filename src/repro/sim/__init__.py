"""Discrete-event simulation substrate: the cycle clock and event tracing."""

from repro.sim.clock import Clock, Event
from repro.sim.trace import TraceEvent, Tracer

__all__ = ["Clock", "Event", "TraceEvent", "Tracer"]
