"""The global cycle clock and discrete-event queue.

Every component of a simulated machine shares one :class:`Clock`.  The CPU
*charges* cycles for the instructions it executes (`advance`), while
asynchronous hardware (DMA engines, NICs, disks, the interconnect) schedules
completion callbacks at absolute cycle times (`schedule`).  Whenever the
clock advances past an event's due time, the event fires.

Time is kept in integer cycles.  Fractional byte/cycle rates are rounded up
when converted to durations, which models the bus clocking the last partial
burst.

The queue is allocation- and scan-free on the hot path: a live-event
counter makes :meth:`Clock.pending` O(1), cancellation drops the callback
reference immediately (so closed-over buffers are reclaimable before the
tombstone is popped), and the heap compacts itself when tombstones
outnumber live events.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional

#: Compaction fires when ``len(queue) > 2 * live + COMPACT_SLACK``: the
#: slack keeps tiny queues from compacting on every cancel.
COMPACT_SLACK = 64


@dataclass(slots=True)
class Event:
    """A scheduled callback.  Ordered by (time, sequence number)."""

    time: int
    seq: int
    callback: Optional[Callable[[], None]] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    _clock: Optional["Clock"] = field(default=None, compare=False, repr=False)

    def __lt__(self, other: "Event") -> bool:
        # Hand-written instead of dataclass(order=True): the heap sift
        # calls this on every push/pop, and the generated version builds
        # two tuples per comparison.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def cancel(self) -> None:
        """Prevent the event from firing.

        The tombstone stays in the queue until popped or compacted, but
        the callback reference (and anything it closes over -- staging
        buffers, endpoints) is released *now*, so a cancelled transfer
        does not pin its buffers until the due time passes.  Cancelling
        an already-fired or already-cancelled event is a no-op.
        """
        if self.cancelled or self.callback is None:
            return
        self.cancelled = True
        self.callback = None
        if self._clock is not None:
            self._clock._on_cancel()


class Clock:
    """A shared cycle counter with an event queue.

    The clock never runs backwards.  Events scheduled for a time that has
    already passed fire on the next :meth:`advance` / :meth:`run` call.
    """

    def __init__(self) -> None:
        self._now = 0
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._live = 0  # exact count of scheduled-but-unfired, uncancelled
        #: total events fired over the clock's lifetime (host-perf metric;
        #: the bench harness reports events/second against it)
        self.events_fired = 0
        #: optional auditing hook invoked after every fired event (the
        #: chaos harness's continuous invariant auditor); None keeps the
        #: hot path a single attribute check
        self.audit_hook: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------- reading
    @property
    def now(self) -> int:
        """The current time in cycles."""
        return self._now

    def pending(self) -> int:
        """Number of live (uncancelled) events still queued.  O(1)."""
        return self._live

    def next_event_time(self) -> Optional[int]:
        """Due time of the earliest live event, or None if the queue is idle."""
        queue = self._queue
        while queue and queue[0].cancelled:
            heapq.heappop(queue)
        if not queue:
            return None
        return queue[0].time

    # ---------------------------------------------------------- scheduling
    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to fire ``delay`` cycles from now.

        A zero delay fires as soon as time next moves (or on :meth:`run`).
        Negative delays are configuration errors.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule an event {delay} cycles in the past")
        event = Event(self._now + delay, next(self._seq), callback, False, self)
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def schedule_at(self, time: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute cycle ``time`` (>= now)."""
        return self.schedule(time - self._now, callback)

    # ------------------------------------------------------------- running
    def advance(self, cycles: int) -> None:
        """Charge ``cycles`` of CPU work, firing any events that come due.

        This is how the simulated CPU consumes time: events interleave with
        instruction execution at cycle granularity.
        """
        if cycles < 0:
            raise ValueError(f"cannot advance time by {cycles} cycles")
        target = self._now + cycles
        if self._live:
            self._fire_until(target)
        self._now = target

    def run(self, until: Optional[int] = None) -> None:
        """Fire queued events until the queue drains (or ``until`` is hit).

        Used when the CPU is idle (e.g. a process blocked on I/O) and the
        simulation should coast forward on device activity alone.
        """
        limit = math.inf if until is None else until
        queue = self._queue
        pop = heapq.heappop
        while queue:
            head = queue[0]
            if head.cancelled:
                pop(queue)
                continue
            if head.time > limit:
                break
            pop(queue)
            self._fire(head)
        if until is not None and until > self._now:
            self._now = until

    def run_until_idle(self, max_events: int = 1_000_000) -> None:
        """Drain every queued event (events may schedule further events).

        ``max_events`` guards against a component that reschedules itself
        forever.
        """
        queue = self._queue
        pop = heapq.heappop
        fired = 0
        while queue:
            head = pop(queue)
            if head.cancelled:
                continue
            self._fire(head)
            fired += 1
            if fired > max_events:
                raise RuntimeError(
                    f"run_until_idle fired more than {max_events} events; "
                    "a component appears to reschedule itself unboundedly"
                )

    # ------------------------------------------------------------ internal
    def _fire(self, event: Event) -> None:
        """Fire one popped, live event (advancing time to its due cycle)."""
        callback = event.callback
        event.callback = None  # mark fired; a later cancel() is a no-op
        self._live -= 1
        self.events_fired += 1
        if event.time > self._now:
            self._now = event.time
        assert callback is not None
        callback()
        hook = self.audit_hook
        if hook is not None:
            hook()

    def _fire_until(self, target: int) -> None:
        queue = self._queue
        pop = heapq.heappop
        while queue:
            head = queue[0]
            if head.cancelled:
                pop(queue)
                continue
            if head.time > target:
                return
            pop(queue)
            self._fire(head)

    def _on_cancel(self) -> None:
        self._live -= 1
        if len(self._queue) > 2 * self._live + COMPACT_SLACK:
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without tombstones.

        In place (``[:]``) so iterators holding the list object -- the
        localised hot loops above -- stay valid if a callback's cancel
        triggers compaction mid-drain.
        """
        self._queue[:] = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)


def transfer_cycles(nbytes: int, bytes_per_cycle: float) -> int:
    """Cycles to move ``nbytes`` at ``bytes_per_cycle``, rounded up.

    The round-up models the bus clocking the last partial burst.
    Zero-byte transfers take zero cycles.
    """
    if nbytes < 0:
        raise ValueError(f"cannot transfer {nbytes} bytes")
    if nbytes == 0:
        return 0
    if bytes_per_cycle <= 0:
        raise ValueError(f"bytes_per_cycle must be positive, got {bytes_per_cycle}")
    return int(math.ceil(nbytes / bytes_per_cycle))
