"""The global cycle clock and discrete-event queue.

Every component of a simulated machine shares one :class:`Clock`.  The CPU
*charges* cycles for the instructions it executes (`advance`), while
asynchronous hardware (DMA engines, NICs, disks, the interconnect) schedules
completion callbacks at absolute cycle times (`schedule`).  Whenever the
clock advances past an event's due time, the event fires.

Time is kept in integer cycles.  Fractional byte/cycle rates are rounded up
when converted to durations, which models the bus clocking the last partial
burst.

The queue is allocation- and scan-free on the hot path: a live-event
counter makes :meth:`Clock.pending` O(1), cancellation drops the callback
reference immediately (so closed-over buffers are reclaimable before the
tombstone is popped), and the heap compacts itself when tombstones
outnumber live events.

Two further fast-lane mechanisms (on by default, disabled together with
``pooling=False`` for the chaos differential oracle):

* **Event free list** -- fired events are recycled instead of freed, so a
  steady-state workload schedules without allocating.  Only *fired* events
  are recycled; cancelled tombstones are dropped (a stale ``cancel()``
  through a retained reference must never kill a pool successor).  The
  contract for holders of an :class:`Event` reference is unchanged: once
  the event has fired the reference is dead and ``cancel()`` must not be
  called through it (the existing callers -- DMA completion, retransmit
  timers -- already null or replace their references before that point).
* **Same-time FIFO bucket** -- a burst of events scheduled for one due
  time (the common shape on the per-message path) lands in a deque instead
  of the heap.  Firing compares the bucket head against the heap head with
  the ordinary event ordering, so the global ``(time[, key], seq)`` fire
  order is bit-identical to the heap-only queue: bucket entries all share
  one due time and the empty key, and are appended in sequence order, so
  the deque is sorted by construction.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Set, Tuple

from repro.errors import (
    ConfigurationError,
    PoolIntegrityError,
    SimulationLimitError,
)
from repro.snapshot.protocol import SnapshotMixin

#: Compaction fires when ``len(queue) > 2 * live + COMPACT_SLACK``: the
#: slack keeps tiny queues from compacting on every cancel.
COMPACT_SLACK = 64

#: Upper bound on the per-clock event free list.  Steady-state messaging
#: needs a handful of in-flight events per channel; the cap only matters
#: after a transient burst and bounds worst-case retained memory.
EVENT_FREE_LIST_CAP = 4096


@dataclass(slots=True)
class Event:
    """A scheduled callback.  Ordered by (time, sequence number)."""

    time: int
    seq: int
    callback: Optional[Callable[[], None]] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    _clock: Optional["Clock"] = field(default=None, compare=False, repr=False)

    def __lt__(self, other: "Event") -> bool:
        # Hand-written instead of dataclass(order=True): the heap sift
        # calls this on every push/pop, and the generated version builds
        # two tuples per comparison.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def cancel(self) -> None:
        """Prevent the event from firing.

        The tombstone stays in the queue until popped or compacted, but
        the callback reference (and anything it closes over -- staging
        buffers, endpoints) is released *now*, so a cancelled transfer
        does not pin its buffers until the due time passes.  Cancelling
        an already-fired or already-cancelled event is a no-op.
        """
        if self.cancelled or self.callback is None:
            return
        self.cancelled = True
        self.callback = None
        if self._clock is not None:
            self._clock._on_cancel()


@dataclass(slots=True)
class KeyedEvent(Event):
    """An event with a canonical ordering key: (time, key, seq).

    The sharded kernel uses the ``key`` to make per-node execution order a
    pure function of the workload rather than of scheduling interleaving:
    local hardware events carry the empty key ``()`` (sorting first at a
    given cycle), network arrivals carry ``(1, src_node, channel_seq)`` so
    same-cycle arrivals land in a source/sequence order that is identical
    no matter which shard — or which worker process — delivered them.
    """

    key: Tuple = ()

    def __lt__(self, other: "KeyedEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.key != other.key:
            return self.key < other.key
        return self.seq < other.seq


class Clock(SnapshotMixin):
    """A shared cycle counter with an event queue.

    The clock never runs backwards.  Events scheduled for a time that has
    already passed fire on the next :meth:`advance` / :meth:`run` call.

    ``pooling`` (default on) enables the event free list and the
    same-time FIFO bucket; both are exact optimisations -- fire order,
    fire times and every counter are bit-identical either way, which the
    chaos differential oracle checks (``python -m repro chaos
    --no-pool``).  ``pool_debug`` adds ownership checks that raise
    :class:`~repro.errors.PoolIntegrityError` on double releases or
    foreign acquires.
    """

    #: event class used by :meth:`schedule`; a class hook (rather than a
    #: per-event branch) so the single-clock hot path pays nothing for the
    #: sharded kernel's keyed ordering
    _event_cls = Event
    #: set on ShardClock: recycled events need their ``key`` reset
    _keyed = False

    def __init__(self, pooling: bool = True, pool_debug: bool = False) -> None:
        self._now = 0
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._live = 0  # exact count of scheduled-but-unfired, uncancelled
        #: total events fired over the clock's lifetime (host-perf metric;
        #: the bench harness reports events/second against it)
        self.events_fired = 0
        #: optional auditing hook invoked after every fired event (the
        #: chaos harness's continuous invariant auditor); None keeps the
        #: hot path a single attribute check
        self.audit_hook: Optional[Callable[[], None]] = None
        self.pooling = pooling
        self.pool_debug = pool_debug
        #: events served from the free list (pool effectiveness metric)
        self.pool_reuses = 0
        self._free: List[Event] = []
        self._free_ids: Set[int] = set()  # pool_debug ownership ledger
        #: same-time FIFO bucket: every entry shares ``_bucket_time`` and
        #: the empty key, appended in seq order (sorted by construction)
        self._bucket: Deque[Event] = deque()
        self._bucket_time = 0

    # ---------------------------------------------------------- snapshotting
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # The audit hook is an observer owned by whoever installed it
        # (the chaos InvariantAuditor); pickling it would drag the whole
        # auditor -- and its captured log -- into every snapshot.  It is
        # dropped here and re-installed by the owner after restore.
        state["audit_hook"] = None
        # The pool-debug ownership ledger keys on id(); identities do not
        # survive restore, so it is rebuilt from the free list instead.
        state["_free_ids"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._free_ids = {id(e) for e in self._free}

    # ------------------------------------------------------------- reading
    @property
    def now(self) -> int:
        """The current time in cycles."""
        return self._now

    def pending(self) -> int:
        """Number of live (uncancelled) events still queued.  O(1)."""
        return self._live

    def next_event_time(self) -> Optional[int]:
        """Due time of the earliest live event, or None if the queue is idle."""
        head = self._peek()
        return None if head is None else head.time

    # ---------------------------------------------------------- scheduling
    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to fire ``delay`` cycles from now.

        A zero delay fires as soon as time next moves (or on :meth:`run`).
        Negative delays are configuration errors.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule an event {delay} cycles in the past")
        due = self._now + delay
        free = self._free
        if free:
            event = free.pop()
            if self.pool_debug:
                self._debug_acquire(event)
            event.time = due
            event.seq = next(self._seq)
            event.callback = callback
            event.cancelled = False
            event._clock = self
            if self._keyed:
                event.key = ()
            self.pool_reuses += 1
        else:
            event = self._event_cls(due, next(self._seq), callback, False, self)
        bucket = self._bucket
        if bucket:
            if due == self._bucket_time:
                bucket.append(event)
            else:
                heapq.heappush(self._queue, event)
        elif self.pooling:
            self._bucket_time = due
            bucket.append(event)
        else:
            heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def schedule_at(self, time: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute cycle ``time`` (>= now)."""
        return self.schedule(time - self._now, callback)

    # ------------------------------------------------------------- running
    def advance(self, cycles: int) -> None:
        """Charge ``cycles`` of CPU work, firing any events that come due.

        This is how the simulated CPU consumes time: events interleave with
        instruction execution at cycle granularity.
        """
        if cycles < 0:
            raise ValueError(f"cannot advance time by {cycles} cycles")
        target = self._now + cycles
        if self._live:
            self._fire_until(target)
        self._now = target

    def run(self, until: Optional[int] = None) -> None:
        """Fire queued events until the queue drains (or ``until`` is hit).

        Used when the CPU is idle (e.g. a process blocked on I/O) and the
        simulation should coast forward on device activity alone.
        """
        limit = math.inf if until is None else until
        while True:
            head = self._peek()
            if head is None or head.time > limit:
                break
            self._pop(head)
            self._fire(head)
        if until is not None and until > self._now:
            self._now = until

    def run_until_idle(self, max_events: int = 1_000_000) -> None:
        """Drain every queued event (events may schedule further events).

        ``max_events`` guards against a component that reschedules itself
        forever.  On exhaustion the guard trips *before* firing event
        ``max_events + 1`` and raises :class:`SimulationLimitError` with
        the stop point; the unfired event stays queued, so
        :meth:`pending` / :meth:`next_event_time` remain consistent and
        the caller can inspect (or keep draining) the survivors.
        """
        fired = 0
        while True:
            head = self._peek()
            if head is None:
                return
            if fired >= max_events:
                raise SimulationLimitError(
                    limit=max_events,
                    fired=fired,
                    pending=self._live,
                    now=self._now,
                    next_event_time=head.time,
                )
            self._pop(head)
            self._fire(head)
            fired += 1

    # ------------------------------------------------------------ internal
    def _peek(self) -> Optional[Event]:
        """Earliest live event across heap and bucket, without popping.

        Skims cancelled tombstones off both heads.  The winner is chosen
        with the event ordering itself, so heap/bucket placement can never
        perturb fire order.
        """
        queue = self._queue
        while queue and queue[0].cancelled:
            heapq.heappop(queue)
        bucket = self._bucket
        while bucket and bucket[0].cancelled:
            bucket.popleft()
        if bucket:
            head = bucket[0]
            if queue and queue[0] < head:
                return queue[0]
            return head
        return queue[0] if queue else None

    def _pop(self, head: Event) -> None:
        """Remove ``head`` (the current :meth:`_peek` result) from its home."""
        bucket = self._bucket
        if bucket and head is bucket[0]:
            bucket.popleft()
        else:
            heapq.heappop(self._queue)

    def _fire(self, event: Event) -> None:
        """Fire one popped, live event (advancing time to its due cycle)."""
        callback = event.callback
        event.callback = None  # mark fired; a later cancel() is a no-op
        self._live -= 1
        self.events_fired += 1
        if event.time > self._now:
            self._now = event.time
        assert callback is not None
        callback()
        hook = self.audit_hook
        if hook is not None:
            hook()
        if self.pooling:
            free = self._free
            if len(free) < EVENT_FREE_LIST_CAP:
                if self.pool_debug:
                    self._debug_release(event)
                event._clock = None
                free.append(event)

    def _fire_until(self, target: int) -> None:
        queue = self._queue
        bucket = self._bucket
        pop = heapq.heappop
        while True:
            while queue and queue[0].cancelled:
                pop(queue)
            while bucket and bucket[0].cancelled:
                bucket.popleft()
            if bucket:
                head = bucket[0]
                if queue and queue[0] < head:
                    head = queue[0]
            elif queue:
                head = queue[0]
            else:
                return
            if head.time > target:
                return
            if bucket and head is bucket[0]:
                bucket.popleft()
            else:
                pop(queue)
            self._fire(head)

    def _debug_acquire(self, event: Event) -> None:
        eid = id(event)
        if eid not in self._free_ids:
            raise PoolIntegrityError(
                "acquired an event the pool does not own"
            )
        self._free_ids.discard(eid)
        if event.callback is not None or event.cancelled:
            raise PoolIntegrityError(
                "pooled event was not reset (callback or cancelled flag set)"
            )

    def _debug_release(self, event: Event) -> None:
        eid = id(event)
        if eid in self._free_ids:
            raise PoolIntegrityError("event double-released to pool")
        if event.callback is not None:
            raise PoolIntegrityError("live event released to pool")
        self._free_ids.add(eid)

    def _on_cancel(self) -> None:
        self._live -= 1
        if len(self._queue) > 2 * self._live + COMPACT_SLACK:
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without tombstones.

        In place (``[:]``) so iterators holding the list object -- the
        localised hot loops above -- stay valid if a callback's cancel
        triggers compaction mid-drain.
        """
        self._queue[:] = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)


class ShardClock(Clock):
    """A per-node clock driven by a shard engine instead of by itself.

    In the sharded kernel every node owns one ShardClock.  Two rules make
    the execution order a pure function of the workload (and therefore
    bit-identical across shard counts and across the in-process /
    worker-process engines):

    1. **Charging never fires.**  :meth:`advance` only moves ``now``; the
       engine fires events explicitly, between workload steps, in
       canonical ``(time, key, seq)`` order.  Conservative-PDES bounds can
       then only *delay* an event, never reorder it relative to the
       node's other work.
    2. **Arrivals are keyed.**  Cross-node deliveries are scheduled with
       :meth:`schedule_keyed` carrying ``(1, src_node, channel_seq)``, so
       same-cycle arrivals sort after local hardware events (empty key)
       and in a source order independent of delivery interleaving.

    ``run`` / ``run_until_idle`` raise: any component that coasts the
    clock itself would fire events outside engine control and silently
    break the determinism contract, so misuse fails loudly.

    The same-time bucket only ever holds plain :meth:`schedule` events
    (empty key); keyed arrivals always take the heap, so the bucket's
    sorted-by-construction invariant (one time, one key, ascending seq)
    holds here too.
    """

    _event_cls = KeyedEvent
    _keyed = True

    def advance(self, cycles: int) -> None:
        """Charge CPU cycles without firing events (engine fires them)."""
        if cycles < 0:
            raise ValueError(f"cannot advance time by {cycles} cycles")
        self._now += cycles

    def run(self, until: Optional[int] = None) -> None:
        raise ConfigurationError(
            "ShardClock is engine-driven: components must not coast the "
            "clock (got run()); sharded workloads must use non-blocking "
            "initiations"
        )

    def run_until_idle(self, max_events: int = 1_000_000) -> None:
        raise ConfigurationError(
            "ShardClock is engine-driven: use the shard engine to drain "
            "events, not run_until_idle()"
        )

    # -------------------------------------------------------- engine API
    def schedule_keyed(
        self, time: int, key: Tuple, callback: Callable[[], None]
    ) -> KeyedEvent:
        """Schedule at absolute ``time`` with an explicit ordering key.

        Unlike :meth:`schedule_at` this permits ``time <= now``: a
        cross-shard arrival may be ingested after the receiving node's
        clock has already charged past the wire arrival cycle; it still
        sorts (and fires) at its true arrival time.
        """
        free = self._free
        if free:
            event = free.pop()
            if self.pool_debug:
                self._debug_acquire(event)
            event.time = time
            event.seq = next(self._seq)
            event.callback = callback
            event.cancelled = False
            event._clock = self
            event.key = key
            self.pool_reuses += 1
        else:
            event = KeyedEvent(time, next(self._seq), callback, False, self, key)
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def next_op(self) -> Optional[Tuple[int, Tuple]]:
        """(time, key) of the earliest live event, or None if idle."""
        head = self._peek()
        if head is None:
            return None
        return (head.time, head.key)

    def fire_next(self) -> int:
        """Pop and fire the earliest live event; returns its due time."""
        head = self._peek()
        if head is None:
            raise ConfigurationError("fire_next() on an idle ShardClock")
        self._pop(head)
        time = head.time
        self._fire(head)
        return time


def transfer_cycles(nbytes: int, bytes_per_cycle: float) -> int:
    """Cycles to move ``nbytes`` at ``bytes_per_cycle``, rounded up.

    The round-up models the bus clocking the last partial burst.
    Zero-byte transfers take zero cycles.
    """
    if nbytes < 0:
        raise ValueError(f"cannot transfer {nbytes} bytes")
    if nbytes == 0:
        return 0
    if bytes_per_cycle <= 0:
        raise ValueError(f"bytes_per_cycle must be positive, got {bytes_per_cycle}")
    return int(math.ceil(nbytes / bytes_per_cycle))
