"""The global cycle clock and discrete-event queue.

Every component of a simulated machine shares one :class:`Clock`.  The CPU
*charges* cycles for the instructions it executes (`advance`), while
asynchronous hardware (DMA engines, NICs, disks, the interconnect) schedules
completion callbacks at absolute cycle times (`schedule`).  Whenever the
clock advances past an event's due time, the event fires.

Time is kept in integer cycles.  Fractional byte/cycle rates are rounded up
when converted to durations, which models the bus clocking the last partial
burst.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by (time, sequence number)."""

    time: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the event from firing (it stays in the queue, inert)."""
        self.cancelled = True


class Clock:
    """A shared cycle counter with an event queue.

    The clock never runs backwards.  Events scheduled for a time that has
    already passed fire on the next :meth:`advance` / :meth:`run` call.
    """

    def __init__(self) -> None:
        self._now = 0
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._firing = False

    # ------------------------------------------------------------- reading
    @property
    def now(self) -> int:
        """The current time in cycles."""
        return self._now

    def pending(self) -> int:
        """Number of live (uncancelled) events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    def next_event_time(self) -> Optional[int]:
        """Due time of the earliest live event, or None if the queue is idle."""
        self._drop_cancelled_head()
        if not self._queue:
            return None
        return self._queue[0].time

    # ---------------------------------------------------------- scheduling
    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to fire ``delay`` cycles from now.

        A zero delay fires as soon as time next moves (or on :meth:`run`).
        Negative delays are configuration errors.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule an event {delay} cycles in the past")
        event = Event(self._now + delay, next(self._seq), callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute cycle ``time`` (>= now)."""
        return self.schedule(time - self._now, callback)

    # ------------------------------------------------------------- running
    def advance(self, cycles: int) -> None:
        """Charge ``cycles`` of CPU work, firing any events that come due.

        This is how the simulated CPU consumes time: events interleave with
        instruction execution at cycle granularity.
        """
        if cycles < 0:
            raise ValueError(f"cannot advance time by {cycles} cycles")
        target = self._now + cycles
        self._fire_until(target)
        self._now = target

    def run(self, until: Optional[int] = None) -> None:
        """Fire queued events until the queue drains (or ``until`` is hit).

        Used when the CPU is idle (e.g. a process blocked on I/O) and the
        simulation should coast forward on device activity alone.
        """
        limit = math.inf if until is None else until
        while True:
            self._drop_cancelled_head()
            if not self._queue:
                break
            head = self._queue[0]
            if head.time > limit:
                break
            heapq.heappop(self._queue)
            if head.time > self._now:
                self._now = head.time
            head.callback()
        if until is not None and until > self._now:
            self._now = until

    def run_until_idle(self, max_events: int = 1_000_000) -> None:
        """Drain every queued event (events may schedule further events).

        ``max_events`` guards against a component that reschedules itself
        forever.
        """
        fired = 0
        while True:
            self._drop_cancelled_head()
            if not self._queue:
                return
            head = heapq.heappop(self._queue)
            if head.time > self._now:
                self._now = head.time
            head.callback()
            fired += 1
            if fired > max_events:
                raise RuntimeError(
                    f"run_until_idle fired more than {max_events} events; "
                    "a component appears to reschedule itself unboundedly"
                )

    # ------------------------------------------------------------ internal
    def _fire_until(self, target: int) -> None:
        while True:
            self._drop_cancelled_head()
            if not self._queue or self._queue[0].time > target:
                return
            head = heapq.heappop(self._queue)
            if head.time > self._now:
                self._now = head.time
            head.callback()

    def _drop_cancelled_head(self) -> None:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)


def transfer_cycles(nbytes: int, bytes_per_cycle: float) -> int:
    """Cycles to move ``nbytes`` at ``bytes_per_cycle``, rounded up.

    The round-up models the bus clocking out the final partial burst.
    Zero-byte transfers take zero cycles.
    """
    if nbytes < 0:
        raise ValueError(f"cannot transfer {nbytes} bytes")
    if nbytes == 0:
        return 0
    if bytes_per_cycle <= 0:
        raise ValueError(f"bytes_per_cycle must be positive, got {bytes_per_cycle}")
    return int(math.ceil(nbytes / bytes_per_cycle))
