"""Text timeline rendering for trace events.

Turns a recorded trace into a compact per-component lane chart, which
makes pipeline behaviour -- DMA fills overlapping wire drains overlapping
receive DMA -- visible at a glance in a terminal::

    node0.udma   |S L...............T  |
    nic0         |      h=========w    |
    nic1         |              r==|

Each lane is one event source; each column is a time bucket; the glyph is
the first letter of the event kind (collisions show the latest event).
This is a debugging aid, not a measurement tool.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.sim.trace import TraceEvent

#: preferred glyphs for well-known event kinds
_GLYPHS = {
    "proxy-store": "S",
    "proxy-load": "L",
    "dma-start": "d",
    "dma-complete": "D",
    "transfer-done": "T",
    "packet-tx": "w",
    "packet-rx": "r",
    "rx-error": "!",
    "inval": "I",
    "page-fault": "f",
    "page-out": "o",
    "proxy-map": "m",
    "switch": "s",
    "route": ">",
    "chain-start": "c",
    "chain-complete": "C",
    "handoff": "h",
    "lbts": "b",
}


def _glyph(kind: str) -> str:
    glyph = _GLYPHS.get(kind)
    if glyph is not None:
        return glyph
    return kind[0] if kind else "?"


def render_timeline(
    events: Sequence[TraceEvent],
    width: int = 72,
    sources: Optional[Iterable[str]] = None,
    start: Optional[int] = None,
    end: Optional[int] = None,
) -> str:
    """Render events into a lane chart string.

    Args:
        events: recorded trace events (any order; they are sorted).
        width: number of time buckets (columns).
        sources: restrict to these sources (default: all, in first-seen
            order).
        start, end: time window (defaults to the events' full span).

    Returns the chart, one line per lane, plus a time-scale footer.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    ordered = sorted(events, key=lambda e: e.time)
    if sources is not None:
        wanted = list(sources)
        ordered = [e for e in ordered if e.source in wanted]
        lane_names = wanted
    else:
        lane_names = []
        for event in ordered:
            if event.source not in lane_names:
                lane_names.append(event.source)
    if not ordered:
        return "(no events)"

    t0 = ordered[0].time if start is None else start
    t1 = ordered[-1].time if end is None else end
    span = max(1, t1 - t0)
    lanes: Dict[str, List[str]] = {name: [" "] * width for name in lane_names}
    for event in ordered:
        if not t0 <= event.time <= t1:
            continue
        column = min(width - 1, (event.time - t0) * width // span)
        lanes[event.source][column] = _glyph(event.kind)

    label_width = max(len(name) for name in lane_names)
    lines = [
        f"{name:<{label_width}} |{''.join(cells)}|"
        for name, cells in lanes.items()
    ]
    footer = (
        f"{'':<{label_width}}  {t0} .. {t1} cycles "
        f"({span // width} cycles/column)"
    )
    lines.append(footer)
    return "\n".join(lines)


def legend() -> str:
    """The glyph legend for :func:`render_timeline` output."""
    pairs = sorted(_GLYPHS.items())
    return "  ".join(f"{glyph}={kind}" for kind, glyph in pairs)
