"""Structured event tracing.

Components emit :class:`TraceEvent` records through a shared
:class:`Tracer`.  Tracing is off by default (the null tracer discards
everything at near-zero cost); tests and the bench harness attach a
recording tracer to observe hardware-level behaviour -- state-machine
transitions, packets on the wire, page faults -- without poking at
internals.
"""

from __future__ import annotations

import logging
from repro.snapshot.protocol import SnapshotMixin
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

_log = logging.getLogger(__name__)


@dataclass(frozen=True)
class TraceEvent:
    """One traced occurrence.

    Attributes:
        time: cycle timestamp.
        source: emitting component (e.g. ``"udma"``, ``"nic0"``, ``"kernel"``).
        kind: event name (e.g. ``"state"``, ``"packet-tx"``, ``"page-fault"``).
        detail: free-form payload fields.
    """

    time: int
    source: str
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        fields = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:>10}] {self.source}.{self.kind} {fields}".rstrip()


class Tracer(SnapshotMixin):
    """Collects trace events and dispatches them to subscribers.

    With ``record=False`` and no subscribers, :meth:`emit` is a cheap no-op
    apart from building the call; the hot paths therefore guard emission
    with :attr:`enabled`.  ``enabled`` is a plain precomputed attribute
    (not a property) so those guards cost one attribute load on the
    simulator's hottest paths; it is kept in sync by the ``record`` setter
    and :meth:`subscribe`.
    """

    def __init__(self, record: bool = False) -> None:
        self.events: List[TraceEvent] = []
        self._subscribers: List[Callable[[TraceEvent], None]] = []
        self._record = record
        #: True when emitting would have any observable effect (read-only;
        #: derived from ``record`` and the subscriber list)
        self.enabled = record
        #: subscriber exceptions swallowed (observers must never be able
        #: to crash the simulation step that emitted the event)
        self.subscriber_errors = 0

    @property
    def record(self) -> bool:
        """Whether emitted events are kept in :attr:`events`."""
        return self._record

    @record.setter
    def record(self, value: bool) -> None:
        self._record = value
        self._refresh_enabled()

    def subscribe(self, handler: Callable[[TraceEvent], None]) -> None:
        """Add a live handler invoked for every emitted event."""
        self._subscribers.append(handler)
        self._refresh_enabled()

    def _refresh_enabled(self) -> None:
        self.enabled = self._record or bool(self._subscribers)

    def emit(self, time: int, source: str, kind: str, **detail: Any) -> None:
        """Record and dispatch one event (no-op when disabled)."""
        if not self.enabled:
            return
        event = TraceEvent(time, source, kind, detail)
        if self.record:
            self.events.append(event)
        for handler in self._subscribers:
            # Observers are isolated: a broken handler must not propagate
            # into (and desync) the simulation step that emitted the event.
            try:
                handler(event)
            except Exception:
                self.subscriber_errors += 1
                _log.exception(
                    "trace subscriber %r raised on %s.%s", handler, source, kind
                )

    # -------------------------------------------------------- snapshotting
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # Subscribers are external observers (test harnesses, exporters);
        # a snapshot captures the machine, not its audience.  Dropping
        # them also drops ``enabled`` back to the record flag alone.
        state["_subscribers"] = []
        state["enabled"] = state["_record"]
        return state

    def __reduce_ex__(self, protocol: int):
        # The process-wide null tracer must restore to the *same* object:
        # components compare it by identity, and duplicating it would give
        # a restored machine a private, orphaned default tracer.
        if self is NULL_TRACER:
            return (_null_tracer, ())
        return super().__reduce_ex__(protocol)

    # ------------------------------------------------------------ querying
    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All recorded events with the given kind."""
        return [e for e in self.events if e.kind == kind]

    def from_source(self, source: str) -> List[TraceEvent]:
        """All recorded events emitted by the given source."""
        return [e for e in self.events if e.source == source]

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


#: A process-wide tracer that drops everything; components use it as the
#: default so callers never need to pass a tracer explicitly.
NULL_TRACER = Tracer(record=False)


def _null_tracer() -> Tracer:
    """Pickle target restoring the module-level null tracer by identity."""
    return NULL_TRACER
