"""Machine snapshot/restore and fork-based scenario branching.

A *snapshot* is a deterministic, versioned serialisation of a whole
simulated system -- a :class:`~repro.machine.Machine`, a
:class:`~repro.cluster.ShrimpCluster`, or any object graph built from
the simulator's components -- at one instant of simulated time.  The
contract is **restore-equivalence**: a run that is snapshotted at step
*k*, restored, and driven to completion produces bit-identical digests,
counters, audit logs and traces to the run that was never interrupted.
``tests/snapshot/`` and the chaos harness's ``--checkpoint-every`` gate
hold that contract under every feature combination (paging, IOMMU,
reliable transport, all protection backends, 1..N shards).

Three operations:

* :func:`snapshot` -- capture an object graph to ``bytes``.
* :func:`restore` -- rebuild the graph from a blob (refusing blobs
  written by a different format version with
  :class:`~repro.errors.SnapshotVersionError`).
* :func:`fork` -- an in-memory deep copy, for cheap scenario branching
  (run the same machine down two different futures) without paying the
  serialise/compress round trip.

What is captured: every byte of simulated state -- the clock and its
event queue (including pooled free lists and the same-time bucket),
physical memory, MMU/TLB and translation-cache generations, paging
state, the NIPT and the active protection backend, NIC FIFOs and
in-flight packets, reliable-transport channels and armed retransmit
timers, the IOMMU's page table, IOTLB, park queue and pin ledger, and
every observability counter and histogram.

What is deliberately *not* captured: external observers.  Trace
subscribers, the chaos auditor's clock hook, and the sampled metric
``read`` callbacks all point from the outside in; they are dropped at
capture and re-attached on restore (components expose
``_reattach_after_restore`` for the parts they own).  See
``docs/SNAPSHOT.md`` for the format and the full capture matrix.
"""

from repro.snapshot.api import fork, reattach, restore, snapshot
from repro.snapshot.format import MAGIC, SNAPSHOT_VERSION
from repro.snapshot.protocol import SnapshotMixin, Snapshottable

__all__ = [
    "snapshot",
    "restore",
    "fork",
    "reattach",
    "MAGIC",
    "SNAPSHOT_VERSION",
    "SnapshotMixin",
    "Snapshottable",
]
