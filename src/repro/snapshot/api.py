"""Capture, restore and fork whole simulated systems.

The three public operations share one discipline: serialisation (or
deep copy) first, observer re-attachment second.  Re-attachment runs
over the *finished* graph via :func:`reattach` -- never from inside
``__setstate__``, which executes while sibling objects may still be
half-reconstructed and must not be called into.
"""

from __future__ import annotations

import copy
from typing import Any, TypeVar

from repro.snapshot import format as _format

T = TypeVar("T")


def snapshot(obj: Any) -> bytes:
    """Capture ``obj`` (a machine, cluster, world...) as a snapshot blob.

    The source object is untouched and remains fully runnable; capture
    has no observable effect on the simulation (gated by the
    restore-equivalence tier).
    """
    return _format.encode(obj)


def restore(blob: bytes) -> Any:
    """Rebuild the object graph captured in ``blob``.

    Raises :class:`~repro.errors.SnapshotVersionError` if the blob was
    written by a different format version, and
    :class:`~repro.errors.SnapshotError` for anything that is not a
    well-formed snapshot.  The result has had its observers re-attached
    and is immediately runnable.
    """
    obj = _format.decode(blob)
    reattach(obj)
    return obj


def fork(obj: T) -> T:
    """An independent deep copy of a live system, for scenario branching.

    ``fork(m)`` is equivalent to ``restore(snapshot(m))`` -- the copy
    shares no mutable state with the original, and both sides satisfy
    restore-equivalence -- but skips the serialise/compress round trip,
    so branching a scenario mid-run is cheap enough to do per-step.
    """
    clone = copy.deepcopy(obj)
    reattach(clone)
    return clone


def reattach(obj: Any) -> Any:
    """Re-attach dropped observers on a restored or forked graph.

    Components that own external-facing observers (sampled metric
    bindings, primarily) expose ``_reattach_after_restore()``; anything
    else restores fully from its pickled state and needs no hook.  Plain
    containers (tuple/list/dict) are walked element-wise, so a snapshot
    whose root bundles a machine with its user-level handles reattaches
    the machine inside.  An object exposing the hook owns its whole
    subtree -- its hook is called and the walk does not descend further.
    Restoring through :func:`restore` / :func:`fork` calls this for you;
    it is public for callers that unpickle machine graphs through their
    own framing (the chaos checkpoint cache does).
    """
    hook = getattr(obj, "_reattach_after_restore", None)
    if hook is not None:
        hook()
        return obj
    if isinstance(obj, (tuple, list, set, frozenset)):
        for item in obj:
            reattach(item)
    elif isinstance(obj, dict):
        for item in obj.values():
            reattach(item)
    return obj
