"""The snapshot wire format: a versioned header over a compressed pickle.

Layout (all integers little-endian, fixed width)::

    offset  size  field
    0       8     MAGIC          b"SHRIMPSN"
    8       4     version        uint32, must equal SNAPSHOT_VERSION
    12      4     flags          uint32, bit 0 = payload is zlib-compressed
    16      ...   payload        pickle (optionally zlib-compressed)

The header is parsed *before* any unpickling, so version refusal never
depends on the payload being readable: a blob from a different build
fails with :class:`~repro.errors.SnapshotVersionError` naming both
versions, not with an opaque unpickling error three layers deep.

Snapshots serialise internal object graphs, so the version is bumped on
*any* change to the persisted shape of a component -- there is no
migration path, only refusal (see ``docs/SNAPSHOT.md``).
"""

from __future__ import annotations

import io
import pickle
import struct
import zlib

from repro.errors import SnapshotError, SnapshotVersionError

#: identifies a blob as a simulator snapshot before anything is trusted
MAGIC = b"SHRIMPSN"

#: bump on any change to a pickled component's persisted shape
SNAPSHOT_VERSION = 1

#: payloads at or above this size are zlib-compressed (mostly zero-filled
#: physical memory compresses ~100x; tiny payloads skip the overhead)
_COMPRESS_THRESHOLD = 4096

_FLAG_COMPRESSED = 1

_HEADER = struct.Struct("<8sII")


def encode(obj: object, *, version: int = SNAPSHOT_VERSION) -> bytes:
    """Serialise ``obj`` into a framed snapshot blob.

    ``version`` is overridable only so tests can mint blobs that the
    reader must refuse; production callers always write the current
    version.
    """
    try:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise SnapshotError(
            f"object graph is not snapshottable: {exc}"
        ) from exc
    flags = 0
    if len(payload) >= _COMPRESS_THRESHOLD:
        compressed = zlib.compress(payload, level=1)
        if len(compressed) < len(payload):
            payload = compressed
            flags |= _FLAG_COMPRESSED
    return _HEADER.pack(MAGIC, version, flags) + payload


def decode(blob: bytes) -> object:
    """Parse a snapshot blob back into the object graph it captured."""
    if len(blob) < _HEADER.size:
        raise SnapshotError(
            f"blob is {len(blob)} bytes, shorter than the "
            f"{_HEADER.size}-byte snapshot header"
        )
    magic, version, flags = _HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise SnapshotError(
            f"bad magic {magic!r}: not a simulator snapshot"
        )
    if version != SNAPSHOT_VERSION:
        raise SnapshotVersionError(found=version, expected=SNAPSHOT_VERSION)
    payload = blob[_HEADER.size:]
    if flags & _FLAG_COMPRESSED:
        try:
            payload = zlib.decompress(payload)
        except zlib.error as exc:
            raise SnapshotError(f"corrupt compressed payload: {exc}") from exc
    try:
        return _RestrictedUnpickler(io.BytesIO(payload)).load()
    except SnapshotError:
        raise
    except Exception as exc:
        raise SnapshotError(f"corrupt snapshot payload: {exc}") from exc


class _RestrictedUnpickler(pickle.Unpickler):
    """Refuses globals outside the simulator and the stdlib.

    Snapshots are produced and consumed by the same trusted process
    family (checkpointing, test tiers), but CI also round-trips blobs
    through artifact uploads; limiting resolvable globals keeps a
    tampered artifact from importing arbitrary code on load.
    """

    _ALLOWED_ROOTS = frozenset(
        {
            "repro",
            "builtins",
            "collections",
            "_collections",
            "functools",
            "_functools",
            "itertools",
            "operator",
            "_operator",
            "copyreg",
        }
    )

    def find_class(self, module: str, name: str):
        if module.split(".", 1)[0] in self._ALLOWED_ROOTS:
            return super().find_class(module, name)
        raise SnapshotError(
            f"snapshot references disallowed global {module}.{name}"
        )
