"""The per-component state protocol behind whole-system snapshots.

Whole-system capture (:func:`repro.snapshot.snapshot`) pickles the
object graph in one piece, so cross-component references (every device
holding the shared clock, packets in two FIFOs at once) are preserved
exactly.  Alongside that, each stateful component exposes a uniform
*single-component* surface:

* ``state_dict()`` -- a detached deep copy of the component's persisted
  state, keyed by attribute name;
* ``load_state(state)`` -- overwrite the component's state from such a
  dict.

The pair is built on the same ``__getstate__``/``__setstate__`` hooks
pickling uses, so a component's snapshot behaviour is defined once:
whatever a component excludes from pickling (memoryviews, observer
callbacks, id()-keyed ledgers) is equally excluded from -- and rebuilt
after -- ``state_dict()``/``load_state()``.  Directed tests use the pair
to freeze and reset one subsystem without serialising a whole machine.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Protocol, runtime_checkable


@runtime_checkable
class Snapshottable(Protocol):
    """Anything exposing the single-component state surface."""

    def state_dict(self) -> Dict[str, Any]: ...

    def load_state(self, state: Dict[str, Any]) -> None: ...


class SnapshotMixin:
    """Derives ``state_dict``/``load_state`` from the pickle hooks.

    Components inherit this (or just copy the two methods) and define
    ``__getstate__``/``__setstate__`` only when they hold something that
    must not ride through serialisation.  ``object.__getstate__`` (3.11)
    already handles plain ``__dict__`` and ``__slots__`` layouts, so
    most components need nothing beyond the mixin itself.
    """

    def state_dict(self) -> Dict[str, Any]:
        """A detached deep copy of this component's persisted state."""
        state = self.__getstate__()
        if isinstance(state, tuple):
            # object.__getstate__ on a __slots__ layout: (dict, slots).
            managed, slots = state
            merged = dict(managed or {})
            merged.update(slots or {})
            return copy.deepcopy(merged)
        return copy.deepcopy(dict(state or {}))

    def load_state(self, state: Dict[str, Any]) -> None:
        """Overwrite this component's state from a ``state_dict()``."""
        state = copy.deepcopy(dict(state))
        setstate = getattr(type(self), "__setstate__", None)
        if setstate is not None:
            # Components with a custom __setstate__ take the flat dict
            # their __getstate__ produced (the repo-wide convention).
            setstate(self, state)
            return
        if hasattr(self, "__dict__"):
            self.__dict__.clear()
        for name, value in state.items():
            setattr(self, name, value)
