"""Synthetic traffic models for the SHRIMP cluster.

The paper evaluates UDMA with microbenchmarks (Figures 7-9: latency and
bandwidth of back-to-back transfers).  This package scales that style of
measurement to *cluster workloads*: seeded traffic patterns (uniform,
hotspot, incast, all-to-all collective), multi-tenant process placement
that stresses NIPT capacity and channel eviction, and an event-driven
engine that pushes millions of messages through the per-message hot path
without ever coasting the clock from inside a callback.

Everything is deterministic: patterns draw from an explicit xorshift64*
stream (never the ``random`` module), so a scenario replays bit-identically
across runs, across pooling/pipelining modes, and across hosts -- which is
what lets ``BENCH_scale.json`` gate host throughput on a fixed workload.
"""

from repro.traffic.engine import TrafficEngine, TrafficResult, run_scenario
from repro.traffic.generators import (
    AllToAllTraffic,
    HotspotTraffic,
    IncastTraffic,
    TrafficPattern,
    UniformTraffic,
    Xorshift,
    make_pattern,
)
from repro.traffic.tenants import TenantPlacement

__all__ = [
    "AllToAllTraffic",
    "HotspotTraffic",
    "IncastTraffic",
    "TenantPlacement",
    "TrafficEngine",
    "TrafficPattern",
    "TrafficResult",
    "UniformTraffic",
    "Xorshift",
    "make_pattern",
    "run_scenario",
]
