"""Event-driven traffic engine: millions of messages, one shared clock.

Each *driver* is a (source node, tenant) pair with a message quota and a
wake time.  The engine is a top-level pump loop over a wake-time heap:
coast the clock to the earliest wake (``clock.run(until=...)`` fires any
due network events), then perform exactly one non-blocking send
(:meth:`Sender.try_send`) for that driver.  On success the driver draws
its next destination from its seeded stream and re-arms ``gap_cycles``
later; on a transient refusal (the node's UDMA engine is still draining
the previous message) it retries the *same* destination after
``retry_gap_cycles``.

CPU work never happens inside a clock-event callback.  A send charges
cycles (context switch, initiation stores), and a charge fires any due
events -- if those events performed their *own* CPU work, they would
context-switch a node away mid-instruction-sequence.  The pump loop keeps
every send at the top level, so the run is one deterministic interleaving
-- identical, by construction, with pooling/pipelining on or off.

Host throughput (messages/s, MB/s moved through simulated host memory)
is measured around the pump; simulated results (cycles, counters,
deliveries) are pure functions of the scenario parameters.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import asdict, dataclass
from typing import List, Optional

from repro.cluster import ShrimpCluster
from repro.errors import ConfigurationError
from repro.traffic.generators import TrafficPattern, Xorshift, _mix_seed, make_pattern
from repro.traffic.tenants import TenantPlacement
from repro.config import ClusterConfig

#: Retry delay after a busy UDMA engine, mirroring the sharded transport's
#: RETRY_GAP_CYCLES so single-clock and sharded workloads back off alike.
RETRY_GAP_CYCLES = 512


@dataclass
class TrafficResult:
    """Everything a scenario run produced, simulated and host-side."""

    scenario: str
    pattern: str
    num_nodes: int
    tenants_per_node: int
    messages: int
    msg_bytes: int
    retries: int
    churns: int
    sim_cycles: int
    events: int
    delivered: int
    xlat_hit_rate: float
    pooling: bool
    pipelining: bool
    host_seconds: float
    messages_per_sec: float
    host_mb_per_sec: float

    def as_dict(self) -> dict:
        return asdict(self)


class _Driver:
    __slots__ = ("src", "tenant", "quota", "sent", "retries", "stream",
                 "next_dst", "since_churn", "senders")

    def __init__(self, src: int, tenant: int, quota: int, stream) -> None:
        self.src = src
        self.tenant = tenant
        self.quota = quota
        self.sent = 0
        self.retries = 0
        self.stream = stream
        self.next_dst = stream()
        self.since_churn = 0
        #: dst -> Sender, filled lazily from the placement and refreshed
        #: on churn (host-side lookup cache for the per-message path)
        self.senders: dict = {}


class TrafficEngine:
    """Drive a built :class:`TenantPlacement` to its message quota."""

    def __init__(
        self,
        cluster: ShrimpCluster,
        placement: TenantPlacement,
        messages: int,
        msg_bytes: int = 512,
        gap_cycles: int = 4000,
        retry_gap_cycles: int = RETRY_GAP_CYCLES,
        churn_every: int = 0,
        scenario: str = "custom",
    ) -> None:
        if messages < 1:
            raise ConfigurationError(f"messages must be >= 1, got {messages}")
        if msg_bytes < 4 or msg_bytes % 4:
            raise ConfigurationError(
                f"msg_bytes must be a positive multiple of 4, got {msg_bytes}"
            )
        if gap_cycles < 1 or retry_gap_cycles < 1:
            raise ConfigurationError("gap cycles must be >= 1")
        channel_bytes = placement.channel_pages * cluster.costs.page_size
        if msg_bytes > channel_bytes:
            raise ConfigurationError(
                f"msg_bytes {msg_bytes} exceeds the {channel_bytes}-byte channel"
            )
        self.cluster = cluster
        self.placement = placement
        self.messages = messages
        self.msg_bytes = msg_bytes
        self.gap_cycles = gap_cycles
        self.retry_gap_cycles = retry_gap_cycles
        self.churn_every = churn_every
        self.scenario = scenario
        self.payload = bytes(
            (0x41 + (i % 23)) for i in range(min(msg_bytes, channel_bytes))
        )
        self._drivers = self._make_drivers()

    def _make_drivers(self) -> List[_Driver]:
        pattern = self.placement.pattern
        keys = [
            (src, tenant)
            for tenant in range(self.placement.tenants_per_node)
            for src in range(pattern.num_nodes)
            if pattern.peers(src)
        ]
        if not keys:
            raise ConfigurationError("pattern has no sending nodes")
        base, extra = divmod(self.messages, len(keys))
        drivers = []
        for i, (src, tenant) in enumerate(keys):
            quota = base + (1 if i < extra else 0)
            if quota:
                drivers.append(
                    _Driver(src, tenant, quota, pattern.dst_stream(src, tenant))
                )
        return drivers

    # --------------------------------------------------------------- run
    def run(self, max_events: Optional[int] = None) -> TrafficResult:
        """Build, drive to quota, drain in-flight traffic, and measure."""
        cluster = self.cluster
        self.placement.build(cluster, self.payload)
        clock = cluster.clock
        self._incoming = [
            cluster.nic(i).incoming for i in range(cluster.num_nodes)
        ]
        base_events = clock.events_fired
        base_cycles = clock.now
        base_delivered = self._packets_received()
        if max_events is None:
            max_events = self.messages * 64 + 100_000

        host_start = time.perf_counter()
        heap: List = []
        for i, d in enumerate(self._drivers):
            jitter = Xorshift(
                _mix_seed(self.placement.pattern.seed, d.src, d.tenant) ^ 0x117E4
            )
            heapq.heappush(
                heap, (clock.now + 1 + jitter.below(self.gap_cycles), i, d)
            )
        seq = len(self._drivers)
        while heap:
            wake, _, d = heapq.heappop(heap)
            if wake > clock.now:
                clock.run(until=wake)
            rearm = self._step(d)
            if rearm:
                heapq.heappush(heap, (clock.now + rearm, seq, d))
                seq += 1
        cluster.run_until_idle(max_events=max_events)
        host_seconds = time.perf_counter() - host_start

        sent = sum(d.sent for d in self._drivers)
        retries = sum(d.retries for d in self._drivers)
        hits = sum(cluster.node(i).cpu.xlat_hits for i in range(cluster.num_nodes))
        misses = sum(
            cluster.node(i).cpu.xlat_misses for i in range(cluster.num_nodes)
        )
        lookups = hits + misses
        return TrafficResult(
            scenario=self.scenario,
            pattern=self.placement.pattern.name,
            num_nodes=cluster.num_nodes,
            tenants_per_node=self.placement.tenants_per_node,
            messages=sent,
            msg_bytes=self.msg_bytes,
            retries=retries,
            churns=self.placement.churns,
            sim_cycles=clock.now - base_cycles,
            events=clock.events_fired - base_events,
            delivered=self._packets_received() - base_delivered,
            xlat_hit_rate=(hits / lookups) if lookups else 0.0,
            pooling=cluster.pooling,
            pipelining=cluster.pipelining,
            host_seconds=host_seconds,
            messages_per_sec=sent / host_seconds if host_seconds > 0 else 0.0,
            host_mb_per_sec=(
                sent * self.msg_bytes / 1e6 / host_seconds
                if host_seconds > 0
                else 0.0
            ),
        )

    def _packets_received(self) -> int:
        return sum(
            self.cluster.nic(i).packets_received
            for i in range(self.cluster.num_nodes)
        )

    def _step(self, d: _Driver) -> int:
        """One send attempt; returns the re-arm delay (0 = quota reached)."""
        # Credit-style flow control: when the destination's incoming FIFO
        # is more than half full (incast fan-in outrunning receive-side
        # DMA), hold the message and retry -- a deterministic stand-in for
        # the return-channel backpressure real deliberate-update systems
        # apply, and the reason a million-message incast cannot overflow
        # the sink regardless of gap settings.
        dst = d.next_dst
        incoming = self._incoming[dst]
        if incoming.used_bytes * 2 > incoming.capacity_bytes:
            d.retries += 1
            return self.retry_gap_cycles
        sender = d.senders.get(dst)
        if sender is None:
            sender = self.placement.sender(d.src, d.tenant, dst)
            d.senders[dst] = sender
        if sender.try_send(self.msg_bytes):
            d.sent += 1
            d.since_churn += 1
            if self.churn_every and d.since_churn >= self.churn_every:
                d.since_churn = 0
                d.senders[dst] = self.placement.churn(
                    self.cluster, d.src, d.tenant, dst, self.payload
                )
            if d.sent >= d.quota:
                return 0
            d.next_dst = d.stream()
            return self.gap_cycles
        d.retries += 1
        return self.retry_gap_cycles


def run_scenario(
    name: str,
    pattern: str,
    num_nodes: int,
    tenants_per_node: int = 1,
    messages: int = 10_000,
    msg_bytes: int = 512,
    seed: int = 0,
    gap_cycles: int = 4000,
    retry_gap_cycles: int = RETRY_GAP_CYCLES,
    churn_every: int = 0,
    channel_pages: int = 1,
    pooling: bool = True,
    pipelining: bool = True,
    topology: str = "linear",
    mesh_width: int = 0,
    nipt_entries: Optional[int] = None,
    max_events: Optional[int] = None,
    **pattern_kwargs,
) -> TrafficResult:
    """Build pattern + cluster + placement, run, and return the result.

    The cluster is sized from the placement's own demand accounting:
    enough frames per node for every receive export, send buffer, and the
    worst-case churn re-allocations, and (unless overridden) a NIPT just
    big enough for the busiest node -- so churn genuinely cycles the NIC
    page table through its free list rather than rattling around in an
    oversized one.
    """
    pat = make_pattern(pattern, num_nodes, seed=seed, **pattern_kwargs)
    placement = TenantPlacement(
        pat, tenants_per_node=tenants_per_node, channel_pages=channel_pages
    )
    senders = sum(
        tenants_per_node for src in range(num_nodes) if pat.peers(src)
    )
    per_driver = -(-messages // max(senders, 1))
    churns_per_driver = per_driver // churn_every if churn_every else 0
    pages = 0
    nipt_need = 8
    for node in range(num_nodes):
        churn_pages = (
            tenants_per_node * churns_per_driver * channel_pages
            if pat.peers(node)
            else 0
        )
        pages = max(pages, placement.required_pages(node) + churn_pages)
        nipt_need = max(nipt_need, placement.nipt_demand(node))
    mem_size = max((pages + 64) * 4096, 1 << 22)
    cluster = ShrimpCluster(
                  config=ClusterConfig(
                      num_nodes=num_nodes,
                      mem_size=mem_size,
                      nipt_entries=nipt_entries if nipt_entries is not None else nipt_need,
                      topology=topology,
                      mesh_width=mesh_width,
                      pooling=pooling,
                      pipelining=pipelining,
                  ),
              )
    engine = TrafficEngine(
        cluster,
        placement,
        messages=messages,
        msg_bytes=msg_bytes,
        gap_cycles=gap_cycles,
        retry_gap_cycles=retry_gap_cycles,
        churn_every=churn_every,
        scenario=name,
    )
    return engine.run(max_events=max_events)
