"""Seeded destination-pattern generators.

A :class:`TrafficPattern` answers two questions for each source node:

* :meth:`TrafficPattern.peers` -- which destinations it will ever talk to
  (the channel set the OS must configure before the run starts), and
* :meth:`TrafficPattern.dst_stream` -- the per-message destination
  sequence, as a zero-argument callable.

Streams draw from :class:`Xorshift` (xorshift64*), an explicit-state
generator seeded from ``(pattern seed, src, tenant)`` -- no hidden
``random`` module state, so every scenario is a pure function of its
parameters and replays bit-identically anywhere.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.errors import ConfigurationError

_MASK64 = (1 << 64) - 1


class Xorshift:
    """xorshift64* -- tiny, fast, explicit-state PRNG.

    Good enough spectral behaviour for traffic spreading; chosen over the
    ``random`` module so streams are seedable per (src, tenant) without
    global state and are identical across Python versions.
    """

    __slots__ = ("state",)

    def __init__(self, seed: int) -> None:
        # SplitMix-style scramble so small/sequential seeds diverge fast.
        mixed = (seed + 0x9E3779B97F4A7C15) & _MASK64
        mixed = ((mixed ^ (mixed >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        mixed = ((mixed ^ (mixed >> 27)) * 0x94D049BB133111EB) & _MASK64
        self.state = (mixed ^ (mixed >> 31)) or 0x9E3779B97F4A7C15

    def next(self) -> int:
        x = self.state
        x ^= x >> 12
        x = (x ^ (x << 25)) & _MASK64
        x ^= x >> 27
        self.state = x
        return (x * 0x2545F4914F6CDD1D) & _MASK64

    def below(self, n: int) -> int:
        """Uniform integer in [0, n) (modulo bias is irrelevant here)."""
        return self.next() % n


def _mix_seed(seed: int, src: int, tenant: int) -> int:
    return (seed * 0x1000193) ^ (src * 2654435761) ^ (tenant * 40503) ^ 0x5BD1


class TrafficPattern:
    """Base class: a deterministic communication pattern over N nodes."""

    name = "pattern"

    def __init__(self, num_nodes: int, seed: int = 0) -> None:
        if num_nodes < 2:
            raise ConfigurationError(
                f"traffic patterns need >= 2 nodes, got {num_nodes}"
            )
        self.num_nodes = num_nodes
        self.seed = seed

    def peers(self, src: int) -> Tuple[int, ...]:
        """Destinations ``src`` will ever send to (its channel set)."""
        raise NotImplementedError

    def dst_stream(self, src: int, tenant: int = 0) -> Callable[[], int]:
        """Zero-argument callable yielding the per-message destination."""
        raise NotImplementedError

    # ------------------------------------------------------------ helpers
    def _sample_peers(self, src: int, degree: int) -> Tuple[int, ...]:
        """A seeded sample of ``degree`` distinct destinations != src."""
        others = [n for n in range(self.num_nodes) if n != src]
        if degree >= len(others):
            return tuple(others)
        rng = Xorshift(_mix_seed(self.seed, src, 0x7EE5))
        chosen: List[int] = []
        for _ in range(degree):
            pick = rng.below(len(others))
            chosen.append(others.pop(pick))
        chosen.sort()
        return tuple(chosen)


class UniformTraffic(TrafficPattern):
    """Each message goes to a uniformly random peer.

    ``degree`` bounds the per-source channel set (a node talks to a seeded
    sample of ``degree`` peers, uniform over that set), keeping channel
    setup O(N * degree) rather than O(N^2) at large N.
    """

    name = "uniform"

    def __init__(self, num_nodes: int, seed: int = 0, degree: int = 8) -> None:
        super().__init__(num_nodes, seed)
        if degree < 1:
            raise ConfigurationError(f"degree must be >= 1, got {degree}")
        self.degree = degree

    def peers(self, src: int) -> Tuple[int, ...]:
        return self._sample_peers(src, self.degree)

    def dst_stream(self, src: int, tenant: int = 0) -> Callable[[], int]:
        peers = self.peers(src)
        rng = Xorshift(_mix_seed(self.seed, src, tenant))
        n = len(peers)

        def next_dst() -> int:
            return peers[rng.below(n)]

        return next_dst


class HotspotTraffic(TrafficPattern):
    """A fraction of all traffic converges on one hot node.

    Models the classic shared-structure hotspot: with probability
    ``hot_permille/1000`` a message targets ``hot_node``; otherwise it is
    uniform over a seeded sample of cold peers.
    """

    name = "hotspot"

    def __init__(
        self,
        num_nodes: int,
        seed: int = 0,
        hot_node: int = 0,
        hot_permille: int = 500,
        degree: int = 8,
    ) -> None:
        super().__init__(num_nodes, seed)
        if not 0 <= hot_node < num_nodes:
            raise ConfigurationError(f"hot_node {hot_node} out of range")
        if not 0 < hot_permille <= 1000:
            raise ConfigurationError(
                f"hot_permille must be in (0, 1000], got {hot_permille}"
            )
        self.hot_node = hot_node
        self.hot_permille = hot_permille
        self.degree = degree

    def peers(self, src: int) -> Tuple[int, ...]:
        cold = self._sample_peers(src, self.degree)
        if src == self.hot_node or self.hot_node in cold:
            return cold
        return tuple(sorted(cold + (self.hot_node,)))

    def dst_stream(self, src: int, tenant: int = 0) -> Callable[[], int]:
        peers = self.peers(src)
        hot = self.hot_node if src != self.hot_node else None
        cold = tuple(p for p in peers if p != hot)
        rng = Xorshift(_mix_seed(self.seed, src, tenant))
        permille = self.hot_permille
        n_cold = len(cold)

        def next_dst() -> int:
            if hot is not None and (n_cold == 0 or rng.below(1000) < permille):
                return hot
            return cold[rng.below(n_cold)]

        return next_dst


class IncastTraffic(TrafficPattern):
    """Everyone hammers one sink (the N-to-1 collective tail).

    The sink sends nothing; every other node's channel set is exactly the
    sink.  Stresses the receive-side DMA serialisation timeline.
    """

    name = "incast"

    def __init__(self, num_nodes: int, seed: int = 0, sink: int = 0) -> None:
        super().__init__(num_nodes, seed)
        if not 0 <= sink < num_nodes:
            raise ConfigurationError(f"sink {sink} out of range")
        self.sink = sink

    def peers(self, src: int) -> Tuple[int, ...]:
        return () if src == self.sink else (self.sink,)

    def dst_stream(self, src: int, tenant: int = 0) -> Callable[[], int]:
        sink = self.sink

        def next_dst() -> int:
            return sink

        return next_dst


class AllToAllTraffic(TrafficPattern):
    """The all-to-all personalised collective: round-robin over all peers.

    Each source walks every other node in ring order, starting from a
    source/tenant-dependent rotation so the wave front is staggered rather
    than synchronised (the standard balanced all-to-all schedule).
    """

    name = "all_to_all"

    def peers(self, src: int) -> Tuple[int, ...]:
        return tuple(n for n in range(self.num_nodes) if n != src)

    def dst_stream(self, src: int, tenant: int = 0) -> Callable[[], int]:
        peers = self.peers(src)
        n = len(peers)
        state = {"i": (src + tenant) % n}

        def next_dst() -> int:
            i = state["i"]
            state["i"] = (i + 1) % n
            return peers[i]

        return next_dst


_PATTERNS = {
    "uniform": UniformTraffic,
    "hotspot": HotspotTraffic,
    "incast": IncastTraffic,
    "all_to_all": AllToAllTraffic,
}


def make_pattern(name: str, num_nodes: int, seed: int = 0, **kwargs) -> TrafficPattern:
    """Build a pattern by name (``uniform``/``hotspot``/``incast``/``all_to_all``)."""
    try:
        cls = _PATTERNS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown traffic pattern {name!r}; choose from {sorted(_PATTERNS)}"
        ) from None
    return cls(num_nodes, seed=seed, **kwargs)
