"""Multi-tenant process placement over a SHRIMP cluster.

``tenants_per_node`` independent processes share each node; tenant ``t``
on node ``i`` talks only to tenant ``t`` on its pattern peers (the usual
space-shared allocation of a multicomputer).  Every tenant owns its own
receive buffers, channels and NIPT entries, so tenants contend for
exactly the resources the paper's protection model guards: the NIC's
page-table capacity, pinned receive frames, and the per-node UDMA device.

Channel *churn* models eviction under NIPT pressure: :meth:`TenantPlacement.churn`
tears a live channel down (``release_channel`` clears its NIPT entries and
unpins its frames) and rebuilds it through the full OS path.  The NIPT
generation bump automatically invalidates any cached send plans, so the
userlib fast lane re-validates instead of replaying stale state.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cluster import Channel, ShrimpCluster
from repro.errors import ConfigurationError
from repro.traffic.generators import TrafficPattern
from repro.userlib.messaging import Sender


class TenantPlacement:
    """Processes + channels + senders realising a pattern at M tenants/node."""

    def __init__(
        self,
        pattern: TrafficPattern,
        tenants_per_node: int = 1,
        channel_pages: int = 1,
    ) -> None:
        if tenants_per_node < 1:
            raise ConfigurationError(
                f"tenants_per_node must be >= 1, got {tenants_per_node}"
            )
        if channel_pages < 1:
            raise ConfigurationError(
                f"channel_pages must be >= 1, got {channel_pages}"
            )
        self.pattern = pattern
        self.tenants_per_node = tenants_per_node
        self.channel_pages = channel_pages
        self.tx_process: Dict[Tuple[int, int], object] = {}
        self.rx_process: Dict[Tuple[int, int], object] = {}
        #: (src, tenant, dst) -> receive-buffer vaddr on dst (stable across
        #: churns, so a rebuilt channel re-exports the same pages)
        self.rx_vaddr: Dict[Tuple[int, int, int], int] = {}
        self.channels: Dict[Tuple[int, int, int], Channel] = {}
        self.senders: Dict[Tuple[int, int, int], Sender] = {}
        self.churns = 0

    # ------------------------------------------------------------- sizing
    def channel_count(self, *, incoming_to: "int | None" = None) -> int:
        """Total channels, or just those terminating at one node."""
        total = 0
        for src in range(self.pattern.num_nodes):
            for dst in self.pattern.peers(src):
                if incoming_to is None or dst == incoming_to:
                    total += self.tenants_per_node
        return total

    def nipt_demand(self, src: int) -> int:
        """NIPT entries node ``src``'s NIC needs for all its channels."""
        return (
            len(self.pattern.peers(src))
            * self.tenants_per_node
            * self.channel_pages
        )

    def required_pages(self, node: int) -> int:
        """Data pages node ``node`` must back (rx exports + tx buffers)."""
        outgoing = len(self.pattern.peers(node)) * self.tenants_per_node
        incoming = self.channel_count(incoming_to=node)
        return (outgoing + incoming) * self.channel_pages

    # ------------------------------------------------------------ building
    def build(self, cluster: ShrimpCluster, payload: bytes) -> None:
        """Create every process, channel and sender; fill send buffers."""
        pattern = self.pattern
        if cluster.num_nodes != pattern.num_nodes:
            raise ConfigurationError(
                f"cluster has {cluster.num_nodes} nodes but the pattern "
                f"expects {pattern.num_nodes}"
            )
        for tenant in range(self.tenants_per_node):
            for node in range(pattern.num_nodes):
                self.rx_process[(node, tenant)] = cluster.node(
                    node
                ).create_process(f"rx{node}.{tenant}")
        for tenant in range(self.tenants_per_node):
            for src in range(pattern.num_nodes):
                peers = pattern.peers(src)
                if not peers:
                    continue
                tx = cluster.node(src).create_process(f"tx{src}.{tenant}")
                self.tx_process[(src, tenant)] = tx
                for dst in peers:
                    self._wire(cluster, src, tenant, dst, payload)

    def _wire(
        self, cluster: ShrimpCluster, src: int, tenant: int, dst: int, payload: bytes
    ) -> Sender:
        key = (src, tenant, dst)
        rx = self.rx_process[(dst, tenant)]
        nbytes = self.channel_pages * cluster.costs.page_size
        vaddr = self.rx_vaddr.get(key)
        if vaddr is None:
            vaddr = cluster.node(dst).kernel.syscalls.alloc(rx, nbytes)
            self.rx_vaddr[key] = vaddr
        channel = cluster.create_channel(src, dst, rx, vaddr, nbytes)
        sender = Sender(cluster, self.tx_process[(src, tenant)], channel)
        sender._ensure_current()
        cluster.node(src).cpu.write_bytes(sender.buffer, payload)
        self.channels[key] = channel
        self.senders[key] = sender
        return sender

    # -------------------------------------------------------------- churn
    def churn(
        self, cluster: ShrimpCluster, src: int, tenant: int, dst: int, payload: bytes
    ) -> Sender:
        """Evict one live channel and rebuild it through the full OS path.

        The release clears the sender NIC's NIPT entries (bumping the
        generation that invalidates cached send plans) and unpins the
        receive frames; the rebuild re-exports the same receive buffer and
        re-allocates NIPT space from the free list.
        """
        key = (src, tenant, dst)
        cluster.release_channel(self.channels[key])
        self.churns += 1
        return self._wire(cluster, src, tenant, dst, payload)

    def sender(self, src: int, tenant: int, dst: int) -> Sender:
        return self.senders[(src, tenant, dst)]
