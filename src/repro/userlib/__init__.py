"""User-level library: what an application links against.

* :mod:`repro.userlib.udma` -- the two-instruction initiation sequence,
  retry loops, page-boundary splitting and completion polling (the code a
  SHRIMP application's runtime library would contain).
* :mod:`repro.userlib.messaging` -- user-level message passing over
  deliberate-update channels.
* :mod:`repro.userlib.collectives` -- broadcast/gather/reduce/barrier
  built on mesh channels.
* :mod:`repro.userlib.rpc` -- request/response messaging, the fine-grain
  workload the paper's introduction motivates.
"""

from repro.userlib.collectives import CollectiveGroup
from repro.userlib.messaging import Receiver, Sender
from repro.userlib.ring import MessageRing, RingReceiver, RingSender
from repro.userlib.rpc import RpcClient, RpcServer
from repro.userlib.rpc import connect as rpc_connect
from repro.userlib.shmem import SharedRegion
from repro.userlib.udma import DeviceRef, MemoryRef, TransferStats, UdmaUser

__all__ = [
    "CollectiveGroup",
    "MessageRing",
    "RingReceiver",
    "RingSender",
    "SharedRegion",
    "DeviceRef",
    "MemoryRef",
    "Receiver",
    "RpcClient",
    "RpcServer",
    "Sender",
    "TransferStats",
    "UdmaUser",
    "rpc_connect",
]
