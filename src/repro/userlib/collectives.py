"""Collective operations over deliberate-update channels.

The paper motivates UDMA with multicomputer workloads whose communication
is fine-grained; collectives are the canonical library layer above
point-to-point message passing.  :class:`CollectiveGroup` wires a full
mesh of channels once (OS work), after which every collective is pure
user-level UDMA.

Message framing: each member owns one receive *slot* per peer inside its
channel buffers, and a one-word sequence flag written *after* the payload
orders delivery (packets on a channel are delivered in order, so the flag
word acts as the arrival barrier -- the idiom SHRIMP applications used).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster import Channel, ShrimpCluster
from repro.errors import ConfigurationError, DmaError
from repro.kernel.process import Process
from repro.userlib.messaging import Receiver, Sender

_FLAG = struct.Struct("<I")


class CollectiveGroup:
    """An N-member group with mesh channels and collective operations.

    Args:
        cluster: the multicomputer.
        processes: one process per node, rank order == node order.
        slot_bytes: per-peer receive slot size (max message per collective
            step); rounded up to whole pages internally by the channels.
    """

    def __init__(
        self,
        cluster: ShrimpCluster,
        processes: Sequence[Process],
        slot_bytes: int = 8192,
    ) -> None:
        if len(processes) != cluster.num_nodes:
            raise ConfigurationError(
                f"need one process per node: {len(processes)} processes, "
                f"{cluster.num_nodes} nodes"
            )
        self.cluster = cluster
        self.processes = list(processes)
        self.size = cluster.num_nodes
        page = cluster.costs.page_size
        # Slot = payload area + one trailing flag page position; round the
        # whole slot to pages so channels stay page aligned.
        self.slot_bytes = -(-(slot_bytes + _FLAG.size) // page) * page
        self._senders: Dict[Tuple[int, int], Sender] = {}
        self._receivers: Dict[Tuple[int, int], Receiver] = {}
        self._recv_base: Dict[Tuple[int, int], int] = {}
        self._seq = 0
        self._build_mesh()

    # ------------------------------------------------------------ plumbing
    def _build_mesh(self) -> None:
        for dst in range(self.size):
            dst_proc = self.processes[dst]
            node = self.cluster.node(dst)
            # One contiguous receive arena with a slot per peer.
            arena = node.kernel.syscalls.alloc(
                dst_proc, self.slot_bytes * (self.size - 1)
            )
            slot = 0
            for src in range(self.size):
                if src == dst:
                    continue
                base = arena + slot * self.slot_bytes
                channel = self.cluster.create_channel(
                    src, dst, dst_proc, base, self.slot_bytes
                )
                self._senders[(src, dst)] = Sender(
                    self.cluster, self.processes[src], channel
                )
                self._receivers[(src, dst)] = Receiver(
                    self.cluster, dst_proc, channel
                )
                self._recv_base[(src, dst)] = base
                slot += 1

    def _payload_capacity(self) -> int:
        return self.slot_bytes - _FLAG.size

    def _send(self, src: int, dst: int, data: bytes, seq: int) -> None:
        if len(data) > self._payload_capacity():
            raise DmaError(
                f"collective payload of {len(data)} bytes exceeds the "
                f"{self._payload_capacity()}-byte slot"
            )
        sender = self._senders[(src, dst)]
        # Payload first, then the flag word: channel packets arrive in
        # order, so a visible flag implies a complete payload.
        framed = data + bytes(
            (-len(data)) % 4
        ) + _FLAG.pack(seq)
        sender.send_bytes(framed, channel_offset=0, wait=True)

    def _recv(self, src: int, dst: int, nbytes: int, seq: int) -> bytes:
        receiver = self._receivers[(src, dst)]
        receiver.drain()
        padded = nbytes + ((-nbytes) % 4)
        raw = receiver.recv_bytes(padded + _FLAG.size)
        flag = _FLAG.unpack(raw[padded:])[0]
        if flag != seq:
            raise DmaError(
                f"collective sequence mismatch on {src}->{dst}: "
                f"expected {seq}, found {flag}"
            )
        return raw[:nbytes]

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # ----------------------------------------------------------- operations
    def broadcast(self, root: int, data: bytes) -> List[bytes]:
        """Root sends ``data`` to every other member; returns each copy."""
        self._check_rank(root)
        seq = self._next_seq()
        for dst in range(self.size):
            if dst != root:
                self._send(root, dst, data, seq)
        out: List[bytes] = [b""] * self.size
        out[root] = data
        for dst in range(self.size):
            if dst != root:
                out[dst] = self._recv(root, dst, len(data), seq)
        return out

    def gather(self, root: int, contributions: Sequence[bytes]) -> List[bytes]:
        """Every member sends its contribution to root; returns the list.

        ``contributions[i]`` is rank i's payload (they may differ in
        length).
        """
        self._check_rank(root)
        if len(contributions) != self.size:
            raise ConfigurationError("one contribution per rank required")
        seq = self._next_seq()
        for src in range(self.size):
            if src != root:
                self._send(src, root, contributions[src], seq)
        gathered: List[bytes] = []
        for src in range(self.size):
            if src == root:
                gathered.append(contributions[root])
            else:
                gathered.append(self._recv(src, root, len(contributions[src]), seq))
        return gathered

    def reduce_sum(self, root: int, values: Sequence[Sequence[int]]) -> List[int]:
        """Element-wise int32 sum of per-rank vectors, at root."""
        width = len(values[0])
        if any(len(v) != width for v in values):
            raise ConfigurationError("all reduce vectors must have equal length")
        packed = [struct.pack(f"<{width}i", *v) for v in values]
        gathered = self.gather(root, packed)
        totals = [0] * width
        for blob in gathered:
            for i, value in enumerate(struct.unpack(f"<{width}i", blob)):
                totals[i] += value
        return totals

    def barrier(self) -> None:
        """Token-ring barrier: a token circulates 0 -> 1 -> ... -> 0 twice.

        Two laps make the barrier symmetric: after the second lap every
        member has proof that every other member reached the barrier.
        """
        token = b"BARR"
        for _ in range(2):
            seq = self._next_seq()
            for src in range(self.size):
                dst = (src + 1) % self.size
                self._send(src, dst, token, seq)
                received = self._recv(src, dst, len(token), seq)
                if received != token:
                    raise DmaError("barrier token corrupted")

    def ring_pass(self, payloads: Sequence[bytes]) -> List[bytes]:
        """Each rank sends to its right neighbour; returns what each got."""
        if len(payloads) != self.size:
            raise ConfigurationError("one payload per rank required")
        seq = self._next_seq()
        for src in range(self.size):
            self._send(src, (src + 1) % self.size, payloads[src], seq)
        return [
            self._recv((dst - 1) % self.size, dst, len(payloads[(dst - 1) % self.size]), seq)
            for dst in range(self.size)
        ]

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ConfigurationError(f"rank {rank} out of range 0..{self.size - 1}")
