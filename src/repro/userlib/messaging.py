"""User-level message passing over deliberate-update channels.

"A user process sends a packet to another machine with a simple UDMA
transfer of the data from memory to the network interface device"
(section 8).  :class:`Sender` wraps exactly that: it owns a grant over the
channel's slice of the NIC's device-proxy window and a send buffer, and
each :meth:`Sender.send` is nothing but user-level UDMA initiations.

:class:`Receiver` is the passive side: data appears directly in its
buffer, written by the receive-side DMA with no receiver CPU involvement;
it reads the buffer through ordinary loads.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster import Channel, ShrimpCluster
from repro.errors import DmaError
from repro.kernel.process import Process
from repro.userlib.udma import DeviceRef, MemoryRef, TransferStats, UdmaUser


class Sender:
    """The sending endpoint of a channel.

    Construction performs the one-time OS work (device-proxy grant and
    send-buffer allocation); after that, every send is kernel-free.
    """

    def __init__(
        self,
        cluster: ShrimpCluster,
        process: Process,
        channel: Channel,
        buffer_bytes: Optional[int] = None,
    ) -> None:
        self.cluster = cluster
        self.channel = channel
        self.process = process
        self.machine = cluster.node(channel.src_node)
        self.nic = cluster.nic(channel.src_node)
        kernel = self.machine.kernel
        # Grant only the channel's pages of the NIC window (least privilege).
        self.grant_base = kernel.syscalls.grant_device_proxy(
            process,
            self.nic.name,
            writable=True,
            pages=(channel.nipt_base, channel.npages),
        )
        nbytes = buffer_bytes if buffer_bytes is not None else channel.nbytes
        self.buffer = kernel.syscalls.alloc(process, nbytes)
        self.buffer_bytes = nbytes
        self.udma = UdmaUser(
            self.machine, process, pipelining=getattr(cluster, "pipelining", True)
        )
        # (nbytes, buffer_offset, channel_offset) -> (src ref, dst ref,
        # padded length): back-to-back sends of the same shape reuse one
        # validated endpoint pair, which also keeps the UDMA runtime's
        # plan cache hitting on identical keys.
        self._ref_memo: "dict[tuple, tuple]" = {}
        # Per-shape fast-lane plan handles ([plan-or-None] boxes) and one
        # reusable cumulative stats object for try_send -- both host-side
        # only, so reuse cannot perturb the simulation.
        self._plan_memo: "dict[tuple, list]" = {}
        self._try_stats = TransferStats()

    def device_ref(self, channel_offset: int = 0) -> DeviceRef:
        """Device-proxy endpoint for a byte offset within the channel."""
        return DeviceRef(self.grant_base + channel_offset)

    def send_bytes(
        self, data: bytes, channel_offset: int = 0, wait: bool = True
    ) -> TransferStats:
        """Copy ``data`` into the send buffer, then UDMA it to the channel.

        The buffer fill uses ordinary stores (it is the application
        preparing its message); the network part is pure UDMA.
        """
        if len(data) > self.buffer_bytes:
            raise DmaError(
                f"message of {len(data)} bytes exceeds the "
                f"{self.buffer_bytes}-byte send buffer"
            )
        self._ensure_current()
        self.machine.cpu.write_bytes(self.buffer, data)
        return self.send_buffer(len(data), channel_offset=channel_offset, wait=wait)

    def send_buffer(
        self, nbytes: int, buffer_offset: int = 0, channel_offset: int = 0,
        wait: bool = True,
    ) -> TransferStats:
        """UDMA ``nbytes`` of the (already filled) send buffer.

        The NIC "transfers outgoing message data aligned on 4-byte
        boundaries" (section 8), so the runtime pads the transfer length
        up to the device alignment -- the padding bytes land in the
        channel past the message, which the channel sizing must allow.
        Offsets must already be aligned.
        """
        source, destination, padded = self._refs(
            nbytes, buffer_offset, channel_offset
        )
        self._ensure_current()
        return self.udma.transfer(
            source=source, destination=destination, nbytes=padded, wait=wait
        )

    def try_send(
        self, nbytes: int, buffer_offset: int = 0, channel_offset: int = 0
    ) -> bool:
        """One non-blocking send attempt of the (already filled) buffer.

        The event-driven traffic engine's primitive: returns True when the
        UDMA transfer started, False on a transient refusal (device still
        draining the previous message) -- the caller schedules its own
        retry instead of spinning.  Never coasts the clock, so it is safe
        to call from inside an event callback.
        """
        key = (nbytes, buffer_offset, channel_offset)
        source, destination, padded = self._refs(
            nbytes, buffer_offset, channel_offset
        )
        box = self._plan_memo.get(key)
        if box is None:
            box = [None]
            self._plan_memo[key] = box
        if box[0] is None:
            box[0] = self.udma.plan_for(source, destination, padded)
        self._ensure_current()
        return self.udma.send_once(
            source, destination, padded, stats=self._try_stats, plan=box[0]
        )

    def _refs(
        self, nbytes: int, buffer_offset: int, channel_offset: int
    ) -> "tuple[MemoryRef, DeviceRef, int]":
        key = (nbytes, buffer_offset, channel_offset)
        memo = self._ref_memo.get(key)
        if memo is not None:
            return memo
        if channel_offset + nbytes > self.channel.nbytes:
            raise DmaError(
                f"send of {nbytes} bytes at channel offset {channel_offset} "
                f"exceeds the {self.channel.nbytes}-byte channel"
            )
        align = self.nic.alignment or 1
        padded = -(-nbytes // align) * align
        if channel_offset + padded > self.channel.nbytes:
            padded = nbytes  # no room to pad; let the device report it
        memo = (
            MemoryRef(self.buffer + buffer_offset),
            self.device_ref(channel_offset),
            padded,
        )
        if len(self._ref_memo) < 1024:
            self._ref_memo[key] = memo
        return memo

    def _ensure_current(self) -> None:
        kernel = self.machine.kernel
        if kernel.current is not self.process:
            kernel.scheduler.switch_to(self.process)


class Receiver:
    """The receiving endpoint of a channel: a buffer the network writes."""

    def __init__(
        self,
        cluster: ShrimpCluster,
        process: Process,
        channel: Channel,
    ) -> None:
        self.cluster = cluster
        self.channel = channel
        self.process = process
        self.machine = cluster.node(channel.dst_node)
        self.nic = cluster.nic(channel.dst_node)

    def drain(self) -> None:
        """Let all in-flight packets land (coast the shared clock)."""
        self.cluster.run_until_idle()

    def recv_bytes(self, nbytes: int, offset: int = 0) -> bytes:
        """Read received data out of the buffer with ordinary loads.

        The receiver must run as the current process on its node (the
        caller switches if needed); data arrived without any CPU work.
        """
        kernel = self.machine.kernel
        if kernel.current is not self.process:
            kernel.scheduler.switch_to(self.process)
        return self.machine.cpu.read_bytes(self.channel.dst_vaddr + offset, nbytes)

    def recv_into(self, buf, offset: int = 0) -> int:
        """Zero-copy variant of :meth:`recv_bytes`: fill ``buf`` in place.

        Returns the number of bytes read (``len(buf)``).  Same charging
        and protection as :meth:`recv_bytes`; the caller keeps ownership
        of the buffer, so a polling consumer can reuse one allocation.
        """
        kernel = self.machine.kernel
        if kernel.current is not self.process:
            kernel.scheduler.switch_to(self.process)
        return self.machine.cpu.read_into(self.channel.dst_vaddr + offset, buf)

    @property
    def packets_received(self) -> int:
        """Packets the node's NIC has delivered to memory so far."""
        return self.nic.packets_received
