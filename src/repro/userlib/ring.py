"""A message queue over a deliberate-update channel (ring-buffer protocol).

Channels are raw remote-memory windows; real applications layered queues
on top.  This module implements the classic SHRIMP-style receiver ring:

* the channel carries a *data ring* plus one trailing control page;
* the sender appends a record by UDMA-writing ``[length | payload]`` at
  its write cursor and then UDMA-writing the new cursor into the control
  page -- in-order packet delivery makes the cursor update the commit
  point (the same flag-word idiom the collectives use);
* the receiver polls the committed cursor in *local* memory (zero network
  cost) and consumes records behind it;
* flow control is sender-side: it tracks the receiver's consumption
  cursor, which the receiver publishes back over a tiny reverse channel.

Everything after setup is user-level: appends are two UDMA transfers,
polls are local loads.
"""

from __future__ import annotations

import struct
from typing import List, Optional

from repro.cluster import ShrimpCluster
from repro.errors import ConfigurationError, DmaError
from repro.kernel.process import Process
from repro.userlib.messaging import Receiver, Sender

_CURSOR = struct.Struct("<I")
_LENGTH = struct.Struct("<I")


def _pad4(n: int) -> int:
    return n + ((-n) % 4)


class RingSender:
    """The producing endpoint of a message ring."""

    def __init__(self, ring: "MessageRing") -> None:
        self._ring = ring
        self._write_cursor = 0
        self._consumed_seen = 0
        self.records_sent = 0

    def try_send(self, payload: bytes) -> bool:
        """Append one record; False if the ring is currently full."""
        ring = self._ring
        need = _pad4(_LENGTH.size + len(payload))
        if need > ring.data_bytes:
            raise DmaError(
                f"record of {len(payload)} bytes can never fit a "
                f"{ring.data_bytes}-byte ring"
            )
        self._refresh_consumed()
        used = self._write_cursor - self._consumed_seen
        if used + need > ring.data_bytes:
            return False
        offset = self._write_cursor % ring.data_bytes
        record = _LENGTH.pack(len(payload)) + payload + bytes(
            _pad4(len(payload)) - len(payload)
        )
        if offset + need <= ring.data_bytes:
            ring.data_sender.send_bytes(record, channel_offset=offset,
                                        wait=True)
        else:
            split = ring.data_bytes - offset
            ring.data_sender.send_bytes(record[:split], channel_offset=offset,
                                        wait=True)
            ring.data_sender.send_bytes(record[split:], channel_offset=0,
                                        wait=True)
        self._write_cursor += need
        # Commit: publish the new cursor on the control page.
        ring.data_sender.send_bytes(
            _CURSOR.pack(self._write_cursor),
            channel_offset=ring.data_bytes,  # first word of the control page
            wait=True,
        )
        self.records_sent += 1
        return True

    def send(self, payload: bytes, spin_limit: int = 10_000) -> None:
        """Append, letting the simulation make progress while full."""
        for _ in range(spin_limit):
            if self.try_send(payload):
                return
            clock = self._ring.cluster.clock
            next_time = clock.next_event_time()
            if next_time is not None:
                clock.run(until=next_time)
            else:
                # Nothing in flight: the receiver must consume.
                raise DmaError("ring full and no consumption in sight")
        raise DmaError("ring stayed full past the spin limit")

    def _refresh_consumed(self) -> None:
        """Read the receiver's published consumption cursor (local load)."""
        ring = self._ring
        node = ring.cluster.node(ring.src_node)
        if node.kernel.current is not ring.src_process:
            node.kernel.scheduler.switch_to(ring.src_process)
        raw = node.cpu.read_bytes(ring.feedback_vaddr, _CURSOR.size)
        self._consumed_seen = _CURSOR.unpack(raw)[0]


class RingReceiver:
    """The consuming endpoint of a message ring."""

    def __init__(self, ring: "MessageRing") -> None:
        self._ring = ring
        self._read_cursor = 0
        self.records_received = 0

    def poll(self) -> Optional[bytes]:
        """Consume one record if available (local loads only), else None."""
        ring = self._ring
        node = ring.cluster.node(ring.dst_node)
        if node.kernel.current is not ring.dst_process:
            node.kernel.scheduler.switch_to(ring.dst_process)
        committed = _CURSOR.unpack(
            node.cpu.read_bytes(ring.dst_vaddr + ring.data_bytes, _CURSOR.size)
        )[0]
        if committed == self._read_cursor:
            return None
        offset = self._read_cursor % ring.data_bytes
        header = self._read_wrapped(node, offset, _LENGTH.size)
        length = _LENGTH.unpack(header)[0]
        body = self._read_wrapped(
            node, (offset + _LENGTH.size) % ring.data_bytes, length
        )
        self._read_cursor += _pad4(_LENGTH.size + length)
        self.records_received += 1
        self._publish_consumed()
        return body

    def drain_and_poll(self) -> Optional[bytes]:
        """Let in-flight packets land, then poll."""
        self._ring.cluster.run_until_idle()
        return self.poll()

    # ------------------------------------------------------------ internal
    def _read_wrapped(self, node, offset: int, nbytes: int) -> bytes:
        ring = self._ring
        if offset + nbytes <= ring.data_bytes:
            return node.cpu.read_bytes(ring.dst_vaddr + offset, nbytes)
        # Wrapped record: fill one buffer in place (read_into) instead of
        # concatenating two read_bytes results -- one copy, not three.
        out = bytearray(nbytes)
        first = ring.data_bytes - offset
        view = memoryview(out)
        node.cpu.read_into(ring.dst_vaddr + offset, view[:first])
        node.cpu.read_into(ring.dst_vaddr, view[first:])
        return bytes(out)

    def _publish_consumed(self) -> None:
        """Send the consumption cursor back over the feedback channel."""
        self._ring.feedback_sender.send_bytes(
            _CURSOR.pack(self._read_cursor), wait=True
        )


class MessageRing:
    """Setup object owning both directions' channels."""

    def __init__(
        self,
        cluster: ShrimpCluster,
        src_node: int,
        src_process: Process,
        dst_node: int,
        dst_process: Process,
        data_bytes: int = 8192,
    ) -> None:
        page = cluster.costs.page_size
        if data_bytes <= 0 or data_bytes % page:
            raise ConfigurationError(
                f"ring data size must be a positive page multiple, got {data_bytes}"
            )
        self.cluster = cluster
        self.src_node = src_node
        self.src_process = src_process
        self.dst_node = dst_node
        self.dst_process = dst_process
        self.data_bytes = data_bytes

        # Forward channel: data ring + one control page for the cursor.
        self.dst_vaddr = cluster.node(dst_node).kernel.syscalls.alloc(
            dst_process, data_bytes + page
        )
        forward = cluster.create_channel(
            src_node, dst_node, dst_process, self.dst_vaddr, data_bytes + page
        )
        self.data_sender = Sender(cluster, src_process, forward)
        # Feedback channel: one page carrying the consumption cursor.
        self.feedback_vaddr = cluster.node(src_node).kernel.syscalls.alloc(
            src_process, page
        )
        feedback = cluster.create_channel(
            dst_node, src_node, src_process, self.feedback_vaddr, page
        )
        self.feedback_sender = Sender(cluster, dst_process, feedback)

    def endpoints(self) -> "tuple[RingSender, RingReceiver]":
        """Build the two protocol endpoints."""
        return RingSender(self), RingReceiver(self)
