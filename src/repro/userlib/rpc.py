"""Request/response messaging (RPC) over deliberate-update channels.

Fine-grained request/response traffic is exactly the workload the paper
says traditional DMA cannot serve ("DMA is beneficial only for infrequent
operations which transfer a large amount of data").  This module builds a
minimal RPC layer -- a pair of channels, a wire header, in-order delivery
-- entirely on user-level UDMA, so a request costs two initiations and
zero system calls end to end.

Wire format per message (4-byte aligned)::

    u32 seq | u32 method | u32 body length | body... | pad

The sequence number doubles as the arrival flag: it is written last (the
framing places it first in memory but UDMA delivers a message's pages in
order and the *server polls on seq*, which only becomes visible once the
whole frame's packets landed, because the client sends the frame with a
single transfer whose packets arrive in order and seq sits in the first
bytes -- so the server additionally validates the body length and a
trailing copy of seq).
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Optional, Tuple

from repro.cluster import ShrimpCluster
from repro.errors import ConfigurationError, DmaError
from repro.kernel.process import Process
from repro.userlib.messaging import Receiver, Sender

_HEADER = struct.Struct("<III")  # seq, method, body length
_TRAILER = struct.Struct("<I")   # trailing seq copy (arrival barrier)

#: method handler: body -> reply body
RpcHandler = Callable[[bytes], bytes]


def _frame(seq: int, method: int, body: bytes) -> bytes:
    pad = (-len(body)) % 4
    return (
        _HEADER.pack(seq, method, len(body))
        + body
        + bytes(pad)
        + _TRAILER.pack(seq)
    )


def _parse(raw: bytes, expected_seq: int) -> Tuple[int, bytes]:
    seq, method, length = _HEADER.unpack_from(raw)
    if seq != expected_seq:
        raise DmaError(f"rpc: expected seq {expected_seq}, found {seq}")
    pad = (-length) % 4
    trailer_at = _HEADER.size + length + pad
    (trailer,) = _TRAILER.unpack_from(raw, trailer_at)
    if trailer != seq:
        raise DmaError("rpc: frame incomplete (trailer mismatch)")
    body = raw[_HEADER.size : _HEADER.size + length]
    return method, body


class RpcServer:
    """The serving endpoint: registered handlers, one client channel pair."""

    def __init__(
        self,
        cluster: ShrimpCluster,
        process: Process,
        request_receiver: Receiver,
        reply_sender: Sender,
    ) -> None:
        self.cluster = cluster
        self.process = process
        self._requests = request_receiver
        self._replies = reply_sender
        self._handlers: Dict[int, RpcHandler] = {}
        self.served = 0

    def register(self, method: int, handler: RpcHandler) -> None:
        """Bind a handler to a method number."""
        if method in self._handlers:
            raise ConfigurationError(f"rpc method {method} already registered")
        self._handlers[method] = handler

    def serve_one(self, expected_seq: int, max_body: int) -> None:
        """Process exactly one request (the test/demo-friendly server loop)."""
        self._requests.drain()
        raw = self._requests.recv_bytes(
            _HEADER.size + max_body + 4 + _TRAILER.size
        )
        method, body = _parse(raw, expected_seq)
        handler = self._handlers.get(method)
        if handler is None:
            reply = _frame(expected_seq, 0xFFFF_FFFF, b"no such method")
        else:
            reply = _frame(expected_seq, method, handler(body))
        self._replies.send_bytes(reply)
        self.served += 1


class RpcClient:
    """The calling endpoint."""

    def __init__(
        self,
        cluster: ShrimpCluster,
        process: Process,
        request_sender: Sender,
        reply_receiver: Receiver,
        server: RpcServer,
    ) -> None:
        self.cluster = cluster
        self.process = process
        self._requests = request_sender
        self._replies = reply_receiver
        #: in a single simulation thread the server runs inline; a real
        #: deployment would poll instead
        self._server = server
        self._seq = 0
        self.calls = 0

    def call(self, method: int, body: bytes, max_reply: int = 4096) -> bytes:
        """One remote procedure call; returns the reply body."""
        self._seq += 1
        self._requests.send_bytes(_frame(self._seq, method, body))
        # Server side runs when the request lands (inline in simulation).
        self._server.serve_one(self._seq, max_body=len(body))
        self._replies.drain()
        raw = self._replies.recv_bytes(
            _HEADER.size + max_reply + 4 + _TRAILER.size
        )
        reply_method, reply_body = _parse(raw, self._seq)
        self.calls += 1
        if reply_method == 0xFFFF_FFFF:
            raise DmaError(f"rpc: remote error: {reply_body.decode(errors='replace')}")
        return reply_body


def connect(
    cluster: ShrimpCluster,
    client_node: int,
    client_process: Process,
    server_node: int,
    server_process: Process,
    slot_bytes: int = 16384,
) -> Tuple[RpcClient, RpcServer]:
    """Wire an RPC pair: a request channel and a reply channel.

    All kernel work (buffer export, NIPT installation, grants) happens
    here, once; every subsequent :meth:`RpcClient.call` is pure user-level
    UDMA on both sides.
    """
    page = cluster.costs.page_size
    slot = -(-slot_bytes // page) * page

    req_buf = cluster.node(server_node).kernel.syscalls.alloc(server_process, slot)
    req_channel = cluster.create_channel(
        client_node, server_node, server_process, req_buf, slot
    )
    rep_buf = cluster.node(client_node).kernel.syscalls.alloc(client_process, slot)
    rep_channel = cluster.create_channel(
        server_node, client_node, client_process, rep_buf, slot
    )

    server = RpcServer(
        cluster,
        server_process,
        request_receiver=Receiver(cluster, server_process, req_channel),
        reply_sender=Sender(cluster, server_process, rep_channel),
    )
    client = RpcClient(
        cluster,
        client_process,
        request_sender=Sender(cluster, client_process, req_channel),
        reply_receiver=Receiver(cluster, client_process, rep_channel),
        server=server,
    )
    return client, server
