"""Write-through shared memory over automatic update.

SHRIMP's signature programming model was *memory-mapped communication*:
a process writes ordinary memory, and the write appears in another
process's memory on another node.  The deliberate-update path (this
paper's UDMA) covers explicit transfers; the retained automatic-update
strategy covers the write-through style.  :class:`SharedRegion` packages
the latter as a library object: one writer-side buffer whose stores are
snooped off the memory bus and mirrored into a reader-side buffer.

The mapping is fixed and one-directional ("the automatic update transfer
strategy ... relies upon fixed mappings between source and destination
pages", section 9); build two regions for a bidirectional channel.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster import Channel, ShrimpCluster
from repro.errors import ConfigurationError, DmaError
from repro.kernel.process import Process


class SharedRegion:
    """A one-directional write-through shared buffer.

    Args:
        cluster: the multicomputer.
        writer_node / writer: the owning side; its ordinary stores
            propagate.
        reader_node / reader: the mirrored side; it reads its local copy.
        nbytes: region size (rounded up to pages).

    Construction allocates both buffers, binds the automatic-update
    mapping (pinning both sides -- the fixed-mapping cost the paper
    notes), and returns a live region.
    """

    def __init__(
        self,
        cluster: ShrimpCluster,
        writer_node: int,
        writer: Process,
        reader_node: int,
        reader: Process,
        nbytes: int,
    ) -> None:
        if nbytes <= 0:
            raise ConfigurationError(f"region size must be positive, got {nbytes}")
        page = cluster.costs.page_size
        self.cluster = cluster
        self.writer_node = writer_node
        self.writer = writer
        self.reader_node = reader_node
        self.reader = reader
        self.nbytes = -(-nbytes // page) * page
        self.npages = self.nbytes // page

        w_kernel = cluster.node(writer_node).kernel
        r_kernel = cluster.node(reader_node).kernel
        self.writer_vaddr = w_kernel.syscalls.alloc(writer, self.nbytes)
        self.reader_vaddr = r_kernel.syscalls.alloc(reader, self.nbytes)
        self.channel: Channel = cluster.bind_automatic_update(
            writer_node, writer, self.writer_vaddr,
            reader_node, reader, self.reader_vaddr,
            self.nbytes,
        )
        self._open = True

    # -------------------------------------------------------------- writer
    def write(self, offset: int, data: bytes) -> None:
        """Writer-side store; propagates through the snooper."""
        self._check_open()
        self._check_range(offset, len(data))
        node = self.cluster.node(self.writer_node)
        if node.kernel.current is not self.writer:
            node.kernel.scheduler.switch_to(self.writer)
        node.cpu.write_bytes(self.writer_vaddr + offset, data)

    def write_word(self, offset: int, value: int) -> None:
        """Writer-side single-word store (the fine-grain update case)."""
        self._check_open()
        self._check_range(offset, self.cluster.costs.word_size)
        node = self.cluster.node(self.writer_node)
        if node.kernel.current is not self.writer:
            node.kernel.scheduler.switch_to(self.writer)
        node.cpu.store(self.writer_vaddr + offset, value)

    # -------------------------------------------------------------- reader
    def read(self, offset: int, nbytes: int, settle: bool = True) -> bytes:
        """Reader-side load of the mirrored copy.

        ``settle=True`` first drains in-flight packets (a real reader
        would use a flag-word protocol; the simulation offers quiescence).
        """
        self._check_open()
        self._check_range(offset, nbytes)
        if settle:
            self.cluster.run_until_idle()
        node = self.cluster.node(self.reader_node)
        if node.kernel.current is not self.reader:
            node.kernel.scheduler.switch_to(self.reader)
        return node.cpu.read_bytes(self.reader_vaddr + offset, nbytes)

    def read_into(self, offset: int, buf, settle: bool = True) -> int:
        """Zero-copy variant of :meth:`read`: fill ``buf`` in place."""
        self._check_open()
        self._check_range(offset, len(memoryview(buf)))
        if settle:
            self.cluster.run_until_idle()
        node = self.cluster.node(self.reader_node)
        if node.kernel.current is not self.reader:
            node.kernel.scheduler.switch_to(self.reader)
        return node.cpu.read_into(self.reader_vaddr + offset, buf)

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Unbind the mapping and unpin the writer-side pages."""
        if not self._open:
            return
        self.cluster.unbind_automatic_update(
            self.writer_node, self.writer, self.writer_vaddr, self.npages
        )
        self._open = False

    @property
    def is_open(self) -> bool:
        return self._open

    # ------------------------------------------------------------ internal
    def _check_open(self) -> None:
        if not self._open:
            raise DmaError("shared region is closed")

    def _check_range(self, offset: int, nbytes: int) -> None:
        if offset < 0 or offset + nbytes > self.nbytes:
            raise DmaError(
                f"access [{offset}, {offset + nbytes}) outside the "
                f"{self.nbytes}-byte region"
            )
